// DHT example: a distributed hash table over the D-STM — puts and gets are
// transactions, so multi-key updates are atomic and reads are consistent,
// with no locks in the interface.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dstm/internal/apps/dht"
	"dstm/internal/cluster"
	"dstm/internal/core"
	"dstm/internal/stm"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

func main() {
	const nodes = 4
	net := transport.NewNetwork(transport.MetricLatency{
		Min: time.Millisecond, Max: 10 * time.Millisecond, Scale: 0.05,
	})
	defer net.Close()

	rts := make([]*stm.Runtime, nodes)
	for i := 0; i < nodes; i++ {
		ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), &vclock.Clock{})
		rts[i] = stm.NewRuntime(ep, nodes, core.New(core.Options{}), nil)
	}

	ctx := context.Background()
	d := dht.New(dht.Options{BucketsPerNode: 4})
	if err := d.Setup(ctx, rts); err != nil {
		log.Fatal(err)
	}

	// Writes from one node...
	for i, kv := range map[string]string{
		"go":     "gopher",
		"paper":  "IPDPS'12",
		"system": "HyFlow-style D-STM",
	} {
		if err := d.Put(ctx, rts[len(i)%nodes], i, kv); err != nil {
			log.Fatal(err)
		}
	}

	// ...are visible from every other node.
	for _, key := range []string{"go", "paper", "system", "missing"} {
		for n := 0; n < nodes; n++ {
			v, ok, err := d.Get(ctx, rts[n], key)
			if err != nil {
				log.Fatal(err)
			}
			if n == 0 {
				if ok {
					fmt.Printf("get(%q) = %q\n", key, v)
				} else {
					fmt.Printf("get(%q) = <absent>\n", key)
				}
			}
		}
	}

	n, err := d.Len(ctx, rts[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table holds %d keys across %d buckets on %d nodes\n", n, 4*nodes, nodes)
	if err := d.Check(ctx, rts[1]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bucket-placement invariant holds ✓")
}
