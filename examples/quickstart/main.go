// Quickstart: bring up a small in-memory D-STM cluster with the RTS
// scheduler, create a shared counter, and update it atomically — including
// from a closed-nested inner transaction — from several nodes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dstm/internal/cluster"
	"dstm/internal/core"
	"dstm/internal/object"
	"dstm/internal/stm"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

// Counter is a user-defined shared object: anything with a deep Copy.
type Counter struct {
	N int64
}

// Copy implements object.Value.
func (c *Counter) Copy() object.Value { d := *c; return &d }

func main() {
	// 1. A 3-node cluster over the in-memory network with 1–5 ms links.
	const nodes = 3
	net := transport.NewNetwork(transport.MetricLatency{
		Min: time.Millisecond, Max: 5 * time.Millisecond, Scale: 0.1,
	})
	defer net.Close()

	rts := make([]*stm.Runtime, nodes)
	for i := 0; i < nodes; i++ {
		ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), &vclock.Clock{})
		// Every node runs the paper's RTS scheduler.
		rts[i] = stm.NewRuntime(ep, nodes, core.New(core.Options{CLThreshold: 3}), nil)
	}

	ctx := context.Background()

	// 2. Node 0 seeds a shared counter; its home and ownership are
	// tracked by the cluster's directory.
	if err := rts[0].CreateRoot(ctx, "counter", &Counter{}); err != nil {
		log.Fatal(err)
	}

	// 3. Each node increments it atomically. The object migrates to the
	// committing node (dataflow D-STM).
	for i := 0; i < nodes; i++ {
		err := rts[i].Atomic(ctx, "inc", func(tx *stm.Txn) error {
			return tx.Update(ctx, "counter", func(v object.Value) object.Value {
				v.(*Counter).N++
				return v
			})
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// 4. A closed-nested transaction: the inner action is atomic on its
	// own, and its effects only become permanent when the outer commits.
	err := rts[1].Atomic(ctx, "outer", func(tx *stm.Txn) error {
		if err := tx.Atomic(ctx, "inner", func(c *stm.Txn) error {
			return c.Update(ctx, "counter", func(v object.Value) object.Value {
				v.(*Counter).N += 10
				return v
			})
		}); err != nil {
			return err
		}
		// The parent sees the inner commit immediately.
		v, err := tx.Read(ctx, "counter")
		if err != nil {
			return err
		}
		fmt.Printf("inside outer transaction, counter = %d\n", v.(*Counter).N)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Read the final value from yet another node.
	var final int64
	err = rts[2].Atomic(ctx, "read", func(tx *stm.Txn) error {
		v, err := tx.Read(ctx, "counter")
		if err != nil {
			return err
		}
		final = v.(*Counter).N
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final counter = %d (want 13)\n", final)
}
