// Vacation example: the STAMP-style travel-reservation workload on an
// 8-node simulated cluster. Demonstrates the paper's motivating pattern —
// composing per-resource nested transactions into one atomic reservation —
// and prints the inventory invariant check.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"dstm/internal/apps/vacation"
	"dstm/internal/cluster"
	"dstm/internal/core"
	"dstm/internal/stm"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

func main() {
	const nodes = 8
	net := transport.NewNetwork(transport.MetricLatency{
		Min: time.Millisecond, Max: 50 * time.Millisecond, Scale: 0.005,
	})
	defer net.Close()

	rts := make([]*stm.Runtime, nodes)
	for i := 0; i < nodes; i++ {
		ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), &vclock.Clock{})
		rts[i] = stm.NewRuntime(ep, nodes, core.New(core.Options{CLThreshold: 3}), nil)
	}

	ctx := context.Background()
	v := vacation.New(vacation.Options{
		ResourcesPerKindPerNode: 2,
		CustomersPerNode:        2,
		UnitsPerResource:        30,
	})
	if err := v.Setup(ctx, rts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vacation: %d nodes, %d customers, 3 inventory tables seeded\n", nodes, 2*nodes)

	// Concurrent travel agents on every node book, cancel and query.
	runCtx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(rt *stm.Runtime, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for runCtx.Err() == nil {
				_ = v.Op(runCtx, rt, rng, rng.Float64() < 0.3)
			}
		}(rts[n], int64(n))
	}
	wg.Wait()
	cancel()

	var total stm.MetricsSnapshot
	for _, rt := range rts {
		total.Merge(rt.Metrics().Snapshot())
	}
	fmt.Printf("vacation: %d reservations/cancellations/queries committed, %d aborted attempts\n",
		total.Commits, total.TotalAborts())
	fmt.Printf("vacation: %d nested transactions committed into parents\n", total.NestedCommits)

	if err := v.Check(ctx, rts[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("vacation: inventory ↔ customer-reservation invariant holds ✓")
}
