// Bank example: concurrent batch transfers (parents with closed-nested
// per-transfer inner transactions) across a simulated cluster, comparing
// the RTS scheduler against plain TFA on the same workload, and verifying
// money conservation.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"dstm/internal/apps/bank"
	"dstm/internal/cluster"
	"dstm/internal/core"
	"dstm/internal/sched"
	"dstm/internal/stm"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

func run(policyName string, mk func() sched.Policy) {
	const nodes = 4
	const workers = 8
	const duration = 400 * time.Millisecond

	net := transport.NewNetwork(transport.MetricLatency{
		Min: time.Millisecond, Max: 50 * time.Millisecond, Scale: 0.01,
	})
	defer net.Close()

	rts := make([]*stm.Runtime, nodes)
	for i := 0; i < nodes; i++ {
		ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), &vclock.Clock{})
		rts[i] = stm.NewRuntime(ep, nodes, mk(), nil)
	}

	ctx := context.Background()
	b := bank.New(bank.Options{AccountsPerNode: 6, MaxNested: 4})
	if err := b.Setup(ctx, rts); err != nil {
		log.Fatal(err)
	}

	runCtx, cancel := context.WithTimeout(ctx, duration)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(rt *stm.Runtime, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for runCtx.Err() == nil {
					// 50/50 read-write mix.
					_ = b.Op(runCtx, rt, rng, rng.Intn(2) == 0)
				}
			}(rts[n], int64(n*100+w))
		}
	}
	wg.Wait()
	cancel()

	var total stm.MetricsSnapshot
	for _, rt := range rts {
		total.Merge(rt.Metrics().Snapshot())
	}
	if err := b.Check(ctx, rts[0]); err != nil {
		log.Fatalf("%s: %v", policyName, err)
	}
	fmt.Printf("%-12s  commits=%-6d aborts=%-6d nested-aborts(parent-caused)=%d/%d  throughput=%.0f tx/s  [conserved ✓]\n",
		policyName, total.Commits, total.TotalAborts(),
		total.NestedParent, total.NestedOwn+total.NestedParent,
		float64(total.Commits)/duration.Seconds())
}

func main() {
	fmt.Println("Bank: 4 nodes × 3 workers, batch transfers with nested inner transfers")
	run("RTS", func() sched.Policy { return core.New(core.Options{CLThreshold: 3}) })
	run("TFA", func() sched.Policy { return sched.NewTFA() })
	run("TFA+Backoff", func() sched.Policy { return sched.NewBackoff(nil, 50*time.Millisecond) })
}
