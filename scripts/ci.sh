#!/bin/sh
# Tier-1 verification, split into composable stages so CI systems can run
# them as separate jobs and developers can re-run just the piece they
# broke. `make verify` delegates here.
#
# Usage: scripts/ci.sh [stage]
#   vet    go vet + go build
#   test   go test with the protocol-package coverage floor
#   race   full suite under the race detector
#   perf   perf smokes: commit-pipeline msgs/commit bound, the
#          zero-allocation wire-codec gate, the open-loop stability
#          smoke, the wire experiment (writes results/BENCH_wire.json,
#          gated on 0 allocs/op and >= 2x gob pump throughput), the
#          readscale experiment (writes results/BENCH_read.json, gated
#          on the MVCC snapshot path beating the ownership baseline's
#          read msgs per read-only commit at the 90%-read mix), and a
#          3-process dstmnode open-loop bank smoke over real TCP
#   fuzz   every fuzz target for CI_FUZZTIME each (differential
#          gob <-> binary oracles included)
#   all    all of the above, in that order (default)
#
# Environment knobs:
#   CI_FUZZTIME    per-target fuzz budget (default 3s; "0" skips fuzzing)
#   CI_COV_FLOOR   minimum combined coverage % for internal/stm +
#                  internal/core (default 70). Enforced by default;
#                  set CI_COV_STRICT=0 to downgrade a shortfall to a
#                  warning.
set -eu

cd "$(dirname "$0")/.."

CI_FUZZTIME="${CI_FUZZTIME:-3s}"
CI_COV_FLOOR="${CI_COV_FLOOR:-70}"
CI_COV_STRICT="${CI_COV_STRICT:-1}"

stage_vet() {
    echo "== go vet ./..."
    go vet ./...

    echo "== go build ./..."
    go build ./...
}

stage_test() {
    echo "== go test ./... (with coverage on internal/stm + internal/core)"
    go test -coverprofile=coverage.out -coverpkg=dstm/internal/stm,dstm/internal/core ./...

    cov=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    echo "== coverage (internal/stm + internal/core): ${cov}% (floor ${CI_COV_FLOOR}%)"
    if [ "$(awk -v c="$cov" -v f="$CI_COV_FLOOR" 'BEGIN {print (c < f)}')" = 1 ]; then
        if [ "$CI_COV_STRICT" = 1 ]; then
            echo "coverage ${cov}% is below the ${CI_COV_FLOOR}% floor" >&2
            exit 1
        fi
        echo "WARNING: coverage ${cov}% is below the ${CI_COV_FLOOR}% soft floor" >&2
    fi
}

stage_race() {
    echo "== go test -race ./..."
    go test -race ./...
}

stage_perf() {
    # Commit-pipeline perf smoke: an 8-object transaction spread over 2
    # owners must finish its commit phases within the owner-grouped batch
    # bound (per-owner rounds, not per-object messages).
    echo "== commit-pipeline msgs/commit bound"
    go test ./internal/stm/ -run TestCommitMsgsBoundEightObjectsTwoOwners -count=1

    # Wire-codec allocation gate: encoding and (warm) decoding the hot
    # protocol payloads — Retrieve, AcquireBatch, CommitObjectBatch —
    # must be allocation-free on the binary codec.
    echo "== wire-codec zero-alloc gate"
    go test ./internal/stm/ -run TestWireCodecZeroAlloc -count=1

    # Open-loop stability smoke: one small Zipfian cell per scheduler at a
    # rate calibrated well inside capacity. -faildiverging turns a diverging
    # queue verdict for RTS into a CI failure.
    echo "== open-loop stability smoke (zipf @ 250/s)"
    go run ./cmd/rtsbench -experiment stability -bench bank -skews zipf \
        -arrivals poisson -rates 250 -nodes 3 -workers 2 -duration 100ms \
        -delayscale 0.002 -stabilityjson /tmp/ci_stability.json -faildiverging

    # Wire experiment: codec micro-benchmarks, the gob-vs-binary message
    # pump, and memnet-vs-TCP bank cells. The gate fails the run unless
    # the binary codec is allocation-free and >= 2x gob's pump throughput.
    echo "== wire experiment (results/BENCH_wire.json)"
    go run ./cmd/rtsbench -experiment wire -duration 500ms \
        -wirejson results/BENCH_wire.json -wiregate

    # MVCC read-path gate: at the 90%-read mix the snapshot read path must
    # spend strictly fewer read RPCs per read-only commit than the ownership
    # baseline, for every scheduler (results/BENCH_read.json).
    echo "== readscale experiment (results/BENCH_read.json)"
    go run ./cmd/rtsbench -experiment readscale -nodes 4 -workers 4 \
        -duration 150ms -readjson results/BENCH_read.json -readgate

    # Multi-process smoke: a real 3-process cluster over loopback TCP,
    # driven open-loop, must complete with a clean conservation check.
    echo "== dstmnode 3-process open-loop smoke"
    go run ./cmd/dstmnode -spawn 3 -duration 2s -accounts 8 \
        -openloop -rate 300 -zipf 0.8
}

stage_fuzz() {
    if [ "$CI_FUZZTIME" = 0 ]; then
        echo "== fuzzing skipped (CI_FUZZTIME=0)"
        return
    fi
    echo "== fuzz targets (${CI_FUZZTIME} each)"
    go test ./internal/trace/ -fuzz FuzzReadJSONL -fuzztime "$CI_FUZZTIME"
    go test ./internal/trace/ -fuzz FuzzEventRoundTrip -fuzztime "$CI_FUZZTIME"
    # Transport and protocol round trips are differential oracles: every
    # input is encoded with both gob and the binary codec and the decoded
    # results must agree exactly.
    go test ./internal/transport/ -fuzz FuzzMessageGobRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/transport/ -fuzz FuzzMessageGobDecode -fuzztime "$CI_FUZZTIME"
    go test ./internal/transport/ -fuzz FuzzMessageBinaryDecode -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzRetrieveRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzCommitPushRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzAcquireCheckBatchRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzCommitObjBatchRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzSnapshotReadRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzSnapshotReadBatchRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/cc/ -fuzz FuzzDirectoryBatchRoundTrip -fuzztime "$CI_FUZZTIME"
}

stage="${1:-all}"
case "$stage" in
vet) stage_vet ;;
test) stage_test ;;
race) stage_race ;;
perf) stage_perf ;;
fuzz) stage_fuzz ;;
all)
    stage_vet
    stage_test
    stage_race
    stage_perf
    stage_fuzz
    ;;
*)
    echo "usage: $0 [vet|test|race|perf|fuzz|all]" >&2
    exit 2
    ;;
esac

echo "CI OK ($stage)"
