#!/bin/sh
# Tier-1 verification: vet, build, test, race-test, a short fuzz pass, and
# a coverage soft floor on the core protocol packages.
# Mirrors `make verify`; kept as a script for CI systems without make.
#
# Environment knobs:
#   CI_FUZZTIME    per-target fuzz budget (default 3s; "0" skips fuzzing)
#   CI_COV_FLOOR   minimum combined coverage % for internal/stm +
#                  internal/core (default 70). A shortfall warns by
#                  default; set CI_COV_STRICT=1 to make it fail the run.
set -eu

cd "$(dirname "$0")/.."

CI_FUZZTIME="${CI_FUZZTIME:-3s}"
CI_COV_FLOOR="${CI_COV_FLOOR:-70}"
CI_COV_STRICT="${CI_COV_STRICT:-0}"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./... (with coverage on internal/stm + internal/core)"
go test -coverprofile=coverage.out -coverpkg=dstm/internal/stm,dstm/internal/core ./...

cov=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "== coverage (internal/stm + internal/core): ${cov}% (floor ${CI_COV_FLOOR}%)"
if [ "$(awk -v c="$cov" -v f="$CI_COV_FLOOR" 'BEGIN {print (c < f)}')" = 1 ]; then
    if [ "$CI_COV_STRICT" = 1 ]; then
        echo "coverage ${cov}% is below the ${CI_COV_FLOOR}% floor" >&2
        exit 1
    fi
    echo "WARNING: coverage ${cov}% is below the ${CI_COV_FLOOR}% soft floor" >&2
fi

echo "== go test -race ./..."
go test -race ./...

# Commit-pipeline perf smoke: an 8-object transaction spread over 2 owners
# must finish its commit phases within the owner-grouped batch bound
# (per-owner rounds, not per-object messages).
echo "== commit-pipeline msgs/commit bound"
go test ./internal/stm/ -run TestCommitMsgsBoundEightObjectsTwoOwners -count=1

# Open-loop stability smoke: one small Zipfian cell per scheduler at a
# rate calibrated well inside capacity. -faildiverging turns a diverging
# queue verdict for RTS into a CI failure.
echo "== open-loop stability smoke (zipf @ 250/s)"
go run ./cmd/rtsbench -experiment stability -bench bank -skews zipf \
    -arrivals poisson -rates 250 -nodes 3 -workers 2 -duration 100ms \
    -delayscale 0.002 -stabilityjson /tmp/ci_stability.json -faildiverging

if [ "$CI_FUZZTIME" != 0 ]; then
    echo "== fuzz targets (${CI_FUZZTIME} each)"
    go test ./internal/trace/ -fuzz FuzzReadJSONL -fuzztime "$CI_FUZZTIME"
    go test ./internal/trace/ -fuzz FuzzEventRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/transport/ -fuzz FuzzMessageGobRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/transport/ -fuzz FuzzMessageGobDecode -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzRetrieveRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzCommitPushRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzAcquireCheckBatchRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/stm/ -fuzz FuzzCommitObjBatchRoundTrip -fuzztime "$CI_FUZZTIME"
    go test ./internal/cc/ -fuzz FuzzDirectoryBatchRoundTrip -fuzztime "$CI_FUZZTIME"
fi

echo "CI OK"
