#!/bin/sh
# Tier-1 verification: build, test, and race-test the whole module.
# Mirrors `make verify`; kept as a script for CI systems without make.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "CI OK"
