module dstm

go 1.22
