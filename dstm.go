// Package dstm is a Go implementation of dataflow distributed software
// transactional memory (D-STM) with closed-nested transactions and the
// Reactive Transactional Scheduler (RTS) of Kim & Ravindran,
// "Scheduling Closed-Nested Transactions in Distributed Transactional
// Memory", IPDPS 2012.
//
// The stack, bottom to top:
//
//   - internal/transport — message passing: an in-memory latency-modelled
//     network and a TCP transport (encoding/gob);
//   - internal/cluster — RPC with correlation and TFA clock piggybacking;
//   - internal/cc — the cache-coherence directory (home nodes, single
//     writable copy, ownership migration);
//   - internal/stm — the TFA engine: transactions, closed nesting,
//     transactional forwarding, commit-time validation;
//   - internal/core — RTS, the paper's contribution: contention-level
//     tracking and the enqueue-vs-abort conflict policy;
//   - internal/sched — the TFA and TFA+Backoff baseline policies;
//   - internal/apps — the six benchmarks (Vacation, Bank, Linked-List,
//     BST, RB-Tree, DHT);
//   - internal/harness — experiment driver reproducing the paper's
//     Table I and Figures 4–6.
//
// This package offers a small facade for assembling a local (in-process,
// latency-simulated) cluster; see NewLocalCluster. For full control use
// the internal packages directly, as the examples under examples/ do.
package dstm

import (
	"time"

	"dstm/internal/cluster"
	"dstm/internal/core"
	"dstm/internal/sched"
	"dstm/internal/stm"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

// SchedulerKind selects a node's transactional scheduler.
type SchedulerKind string

// Available schedulers.
const (
	RTS        SchedulerKind = "RTS"
	TFA        SchedulerKind = "TFA"
	TFABackoff SchedulerKind = "TFA+Backoff"
)

// ClusterOptions configures NewLocalCluster.
type ClusterOptions struct {
	// Nodes is the cluster size. 0 means 4.
	Nodes int
	// Scheduler is the per-node conflict policy. Empty means RTS.
	Scheduler SchedulerKind
	// CLThreshold is RTS's contention-level threshold. 0 means the
	// paper's default.
	CLThreshold int
	// LatencyMin/LatencyMax bound the per-link one-way delays (the paper
	// uses 1–50 ms). Zero values mean a zero-latency network.
	LatencyMin, LatencyMax time.Duration
	// LatencyScale rescales the band (e.g. 0.01 turns 1–50 ms into
	// 10–500 µs). 0 means 1.0.
	LatencyScale float64
}

// Cluster is a set of in-process D-STM nodes joined by a simulated
// network.
type Cluster struct {
	net      *transport.Network
	runtimes []*stm.Runtime
}

// NewLocalCluster assembles an in-process cluster.
func NewLocalCluster(opts ClusterOptions) *Cluster {
	if opts.Nodes <= 0 {
		opts.Nodes = 4
	}
	var lat transport.LatencyModel = transport.ZeroLatency{}
	if opts.LatencyMax > 0 {
		lat = transport.MetricLatency{
			Min:   opts.LatencyMin,
			Max:   opts.LatencyMax,
			Scale: opts.LatencyScale,
		}
	}
	net := transport.NewNetwork(lat)
	c := &Cluster{net: net}
	for i := 0; i < opts.Nodes; i++ {
		var pol sched.Policy
		switch opts.Scheduler {
		case TFA:
			pol = sched.NewTFA()
		case TFABackoff:
			pol = sched.NewBackoff(nil, 50*time.Millisecond)
		default:
			pol = core.New(core.Options{CLThreshold: opts.CLThreshold})
		}
		ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), &vclock.Clock{})
		c.runtimes = append(c.runtimes, stm.NewRuntime(ep, opts.Nodes, pol, nil))
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.runtimes) }

// Runtime returns node i's D-STM runtime (start transactions with its
// Atomic method).
func (c *Cluster) Runtime(i int) *stm.Runtime { return c.runtimes[i] }

// Runtimes returns all runtimes, indexed by node ID.
func (c *Cluster) Runtimes() []*stm.Runtime { return c.runtimes }

// Close tears the cluster's network down.
func (c *Cluster) Close() { c.net.Close() }
