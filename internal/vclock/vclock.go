// Package vclock implements the node-local logical clocks used by the
// Transactional Forwarding Algorithm (TFA).
//
// Every node in the D-STM cluster owns one Clock. The clock advances by one
// on every local write-transaction commit (Tick), and is merged with the
// clock value piggybacked on every incoming message (Merge), giving the
// Lamport-style "asynchronous clock synchronisation" that TFA relies on:
// no global clock is required, yet a transaction can compare its recorded
// start time against the commit time of any object version it encounters.
package vclock

import "sync/atomic"

// Clock is a monotonically non-decreasing logical clock. The zero value is
// ready to use and reads as 0.
type Clock struct {
	v atomic.Uint64
}

// Now returns the current clock value.
func (c *Clock) Now() uint64 { return c.v.Load() }

// Tick increments the clock by one and returns the new value. It is called
// at the commit point of every write transaction on this node.
func (c *Clock) Tick() uint64 { return c.v.Add(1) }

// Merge advances the clock to at least remote. It is called with the clock
// value carried by every received message, so that a node's clock is always
// >= every clock value it has ever observed.
func (c *Clock) Merge(remote uint64) {
	for {
		cur := c.v.Load()
		if remote <= cur {
			return
		}
		if c.v.CompareAndSwap(cur, remote) {
			return
		}
	}
}
