package vclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %d, want 0", got)
	}
}

func TestTick(t *testing.T) {
	var c Clock
	for i := uint64(1); i <= 10; i++ {
		if got := c.Tick(); got != i {
			t.Fatalf("Tick %d returned %d", i, got)
		}
	}
	if got := c.Now(); got != 10 {
		t.Fatalf("Now() = %d after 10 ticks", got)
	}
}

func TestMergeAdvances(t *testing.T) {
	var c Clock
	c.Merge(42)
	if got := c.Now(); got != 42 {
		t.Fatalf("Now() = %d after Merge(42)", got)
	}
}

func TestMergeNeverRegresses(t *testing.T) {
	var c Clock
	c.Merge(100)
	c.Merge(5)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %d, merge with smaller value must not regress", got)
	}
}

// Property: after any sequence of merges, the clock equals the maximum value
// merged (starting from 0).
func TestMergeIsMaxProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		var c Clock
		var max uint64
		for _, v := range vals {
			c.Merge(v)
			if v > max {
				max = v
			}
		}
		return c.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ticks and merges from many goroutines leave the clock at least
// as large as the number of ticks and at least as large as every merged
// value; every Tick result is unique.
func TestConcurrentTickMerge(t *testing.T) {
	var c Clock
	const goroutines = 8
	const ticksEach = 200

	seen := make([]map[uint64]bool, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		seen[g] = make(map[uint64]bool, ticksEach)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ticksEach; i++ {
				v := c.Tick()
				seen[g][v] = true
			}
		}(g)
	}
	wg.Wait()

	all := make(map[uint64]bool)
	for g := range seen {
		for v := range seen[g] {
			if all[v] {
				t.Fatalf("Tick value %d observed twice", v)
			}
			all[v] = true
		}
	}
	if got := c.Now(); got != goroutines*ticksEach {
		t.Fatalf("Now() = %d, want %d", got, goroutines*ticksEach)
	}
}
