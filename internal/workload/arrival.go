package workload

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Arrival is an open-loop arrival process: Next returns the gap between
// the previous admission and the next one. Gaps are virtual-time — the
// driver keeps an absolute schedule (start + sum of gaps) and never lets
// sleep jitter or slow service thin the offered load, which is the whole
// point of an open loop. Implementations keep their own phase state and
// must be safe for concurrent use, though drivers normally run one
// arrival clock per cell.
type Arrival interface {
	// Name identifies the process in reports ("constant", "poisson",
	// "burst", "conflict-window").
	Name() string

	// Next returns the inter-arrival gap to the next admission; 0 means
	// simultaneous with the previous one.
	Next(rng *rand.Rand) time.Duration
}

// perSecond converts an arrivals-per-second rate to the mean gap.
func perSecond(rate float64) time.Duration {
	if rate <= 0 {
		return time.Second
	}
	return time.Duration(float64(time.Second) / rate)
}

// Constant admits at a fixed rate with equal spacing — the smoothest
// possible offered load, the baseline the adversarial processes deviate
// from at the same mean rate.
type Constant struct{ Rate float64 }

// NewConstant returns a constant-rate process (arrivals per second).
func NewConstant(rate float64) *Constant { return &Constant{Rate: rate} }

// Name implements Arrival.
func (*Constant) Name() string { return "constant" }

// Next implements Arrival.
func (c *Constant) Next(*rand.Rand) time.Duration { return perSecond(c.Rate) }

// Poisson admits with exponential gaps (a memoryless M/G/k offered load):
// same mean rate as Constant but with natural micro-bursts.
type Poisson struct{ Rate float64 }

// NewPoisson returns a Poisson process (mean arrivals per second).
func NewPoisson(rate float64) *Poisson { return &Poisson{Rate: rate} }

// Name implements Arrival.
func (*Poisson) Name() string { return "poisson" }

// Next implements Arrival.
func (p *Poisson) Next(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(perSecond(p.Rate)))
}

// Burst is an on/off (interrupted) process: arrivals at Rate, equally
// spaced, during each On window, then silence for Off. The windowed
// adversary of Busch et al.: the same mean load as a smooth process at
// Rate·On/(On+Off), but delivered in slabs that must be absorbed by the
// queue. Phase state advances in virtual time, so the duty cycle is exact
// regardless of wall-clock jitter.
type Burst struct {
	Rate    float64 // arrivals per second while "on"
	On, Off time.Duration

	mu sync.Mutex
	t  time.Duration // virtual time of the previous arrival
}

// NewBurst returns an on/off burst process.
func NewBurst(rate float64, on, off time.Duration) *Burst {
	return &Burst{Rate: rate, On: on, Off: off}
}

// Name implements Arrival.
func (*Burst) Name() string { return "burst" }

// Next implements Arrival.
func (b *Burst) Next(*rand.Rand) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	on, off := b.On, b.Off
	if on <= 0 {
		on = 10 * time.Millisecond
	}
	cycle := on + off
	next := b.t + perSecond(b.Rate)
	if phase := next % cycle; phase >= on {
		// Landed in the off window: defer to the start of the next cycle.
		next += cycle - phase
	}
	gap := next - b.t
	b.t = next
	return gap
}

// ConflictWindow is the adversarial pattern: every Period it releases
// BurstSize arrivals simultaneously (zero gap). Period should be set near
// the system's commit cadence — the p50 commit latency from
// BENCH_commit.json is the calibration source — so each burst lands while
// the previous burst's winner still holds its commit locks. Every burst
// member then hits commit-locked objects at once, forcing the scheduler's
// enqueue-vs-abort decision on the whole cohort; this is the arrival
// pattern under which RTS's queueing and TFA's abort-retry separate most.
type ConflictWindow struct {
	Period    time.Duration
	BurstSize int

	mu sync.Mutex
	i  int // arrivals released in the current burst
}

// NewConflictWindow returns the conflict-window adversary. burstSize <= 0
// means 8.
func NewConflictWindow(period time.Duration, burstSize int) *ConflictWindow {
	if burstSize <= 0 {
		burstSize = 8
	}
	if period <= 0 {
		period = 10 * time.Millisecond
	}
	// The first arrival is implicit (drivers only call Next between
	// arrivals), so it occupies the first burst slot.
	return &ConflictWindow{Period: period, BurstSize: burstSize, i: 1}
}

// Name implements Arrival.
func (*ConflictWindow) Name() string { return "conflict-window" }

// Next implements Arrival.
func (w *ConflictWindow) Next(*rand.Rand) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.i < w.BurstSize {
		w.i++
		return 0
	}
	w.i = 1
	return w.Period
}

// Drive runs an open-loop arrival clock against admit: it calls admit(i)
// at each scheduled arrival, sleeping the process's gaps in between,
// until ctx is done, n arrivals have been offered (n <= 0 means
// unbounded), or admit returns false. The schedule is absolute
// (start + cumulative gaps): if execution falls behind — a long admit, a
// coarse sleep — subsequent arrivals fire back-to-back until the clock
// catches up, so the offered load does not silently sag. Returns the
// number of arrivals offered.
func Drive(ctx context.Context, a Arrival, rng *rand.Rand, n int, admit func(i int) bool) int {
	start := time.Now()
	var sched time.Duration // next arrival's offset from start
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for i := 0; ; i++ {
		if n > 0 && i >= n {
			return i
		}
		if i > 0 {
			sched += a.Next(rng)
		}
		if wait := sched - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return i
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			return i
		}
		if !admit(i) {
			return i + 1
		}
	}
}
