package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfSeedDeterminism: the same seed must replay the same key
// sequence — the property every pinned stability cell and CI gate rests
// on.
func TestZipfSeedDeterminism(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.9, 0.99} {
		a, b := NewZipf(theta), NewZipf(theta)
		ra := rand.New(rand.NewSource(7))
		rb := rand.New(rand.NewSource(7))
		for i := 0; i < 10_000; i++ {
			if ka, kb := a.Sample(ra, 128), b.Sample(rb, 128); ka != kb {
				t.Fatalf("theta=%.2f draw %d: %d != %d", theta, i, ka, kb)
			}
		}
	}
}

// TestZipfRankFrequencySlope: the defining property of a Zipfian
// distribution is log(freq) ≈ -theta·log(rank) + c. Fit the slope over
// the head ranks of a large sample and require it within tolerance of
// -theta, so a regression in the generator cannot silently flatten (or
// sharpen) the skew every stability result depends on.
func TestZipfRankFrequencySlope(t *testing.T) {
	cases := []struct {
		theta float64
		tol   float64
	}{
		{theta: 0.5, tol: 0.12},
		{theta: 0.9, tol: 0.12},
		{theta: 0.99, tol: 0.12},
	}
	const n, draws = 100, 400_000
	for _, tc := range cases {
		z := NewZipf(tc.theta)
		rng := rand.New(rand.NewSource(1))
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Sample(rng, n)]++
		}
		// Rank 0 must be the hottest key: the mapping rank→key is identity.
		for r := 1; r < 10; r++ {
			if counts[r] > counts[0] {
				t.Fatalf("theta=%.2f: rank %d (%d draws) hotter than rank 0 (%d)",
					tc.theta, r, counts[r], counts[0])
			}
		}
		// Least-squares fit of log(count) vs log(rank+1) over the head,
		// where the approximation is tightest and counts are large.
		var sx, sy, sxx, sxy float64
		const head = 20
		for r := 0; r < head; r++ {
			if counts[r] == 0 {
				t.Fatalf("theta=%.2f: head rank %d never drawn", tc.theta, r)
			}
			x := math.Log(float64(r + 1))
			y := math.Log(float64(counts[r]))
			sx, sy, sxx, sxy = sx+x, sy+y, sxx+x*x, sxy+x*y
		}
		slope := (float64(head)*sxy - sx*sy) / (float64(head)*sxx - sx*sx)
		if got, want := -slope, tc.theta; math.Abs(got-want) > tc.tol {
			t.Errorf("theta=%.2f: fitted rank-frequency slope %.3f, want within %.2f",
				want, got, tc.tol)
		}
	}
}

// TestZipfThetaEdges: the clamping and degenerate cases must stay total —
// no panics, indices always in range, theta=0 statistically uniform.
func TestZipfThetaEdges(t *testing.T) {
	t.Run("negative-and-ge-one-clamp", func(t *testing.T) {
		for _, theta := range []float64{-1, 1, 1.5, 10} {
			z := NewZipf(theta)
			if z.Theta() < 0 || z.Theta() > maxZipfTheta {
				t.Fatalf("theta %v clamped to %v, outside [0, %v]", theta, z.Theta(), maxZipfTheta)
			}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 5_000; i++ {
				if k := z.Sample(rng, 17); k < 0 || k >= 17 {
					t.Fatalf("theta=%v: sample %d out of range", theta, k)
				}
			}
		}
	})
	t.Run("n-one", func(t *testing.T) {
		z := NewZipf(0.9)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 100; i++ {
			if k := z.Sample(rng, 1); k != 0 {
				t.Fatalf("n=1 sampled %d", k)
			}
		}
	})
	t.Run("theta-zero-uniform", func(t *testing.T) {
		z := NewZipf(0)
		rng := rand.New(rand.NewSource(5))
		const n, draws = 16, 160_000
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Sample(rng, n)]++
		}
		want := float64(draws) / n
		for k, c := range counts {
			if math.Abs(float64(c)-want) > 0.1*want {
				t.Errorf("theta=0 key %d drawn %d times, want ~%.0f ±10%%", k, c, want)
			}
		}
	})
}

// TestHotKeyStorm: the configured fraction of draws must land in the hot
// window, and the window must actually rotate to disjoint positions.
func TestHotKeyStorm(t *testing.T) {
	t.Run("fraction", func(t *testing.T) {
		s := NewHotKeyStorm(4, 0.8, 0) // pinned window [0,4)
		rng := rand.New(rand.NewSource(9))
		const n, draws = 64, 100_000
		hot := 0
		for i := 0; i < draws; i++ {
			if s.Sample(rng, n) < 4 {
				hot++
			}
		}
		// 80% targeted + uniform spillover (4/64 of the remaining 20%).
		want := 0.8 + 0.2*4.0/64
		if got := float64(hot) / draws; math.Abs(got-want) > 0.03 {
			t.Errorf("hot fraction %.3f, want ~%.3f", got, want)
		}
	})
	t.Run("rotation", func(t *testing.T) {
		s := NewHotKeyStorm(4, 1.0, 1000) // every draw hot, window slides by 4
		rng := rand.New(rand.NewSource(9))
		const n = 64
		windows := make(map[int]bool)
		for i := 0; i < 4000; i++ {
			windows[s.Sample(rng, n)/4] = true
		}
		if len(windows) < 3 {
			t.Errorf("saw %d distinct hot windows over 4 rotation periods, want >= 3", len(windows))
		}
	})
	t.Run("zero-value-defaults", func(t *testing.T) {
		var s HotKeyStorm
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 1000; i++ {
			if k := s.Sample(rng, 8); k < 0 || k >= 8 {
				t.Fatalf("sample %d out of range", k)
			}
		}
	})
}

// TestSamplerNames pins the report labels the JSON results key on.
func TestSamplerNames(t *testing.T) {
	for _, tc := range []struct {
		s    KeySampler
		want string
	}{
		{NewUniform(), "uniform"},
		{NewZipf(0.9), "zipf(0.90)"},
		{NewHotKeyStorm(2, 0.9, 0), "storm"},
	} {
		if got := tc.s.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}
