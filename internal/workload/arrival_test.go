package workload

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

// virtualSchedule accumulates gaps into absolute virtual arrival times.
func virtualSchedule(a Arrival, rng *rand.Rand, n int) []time.Duration {
	out := make([]time.Duration, n)
	var t time.Duration
	for i := range out {
		if i > 0 {
			t += a.Next(rng)
		}
		out[i] = t
	}
	return out
}

// TestConstantSpacing: every gap is exactly 1/rate.
func TestConstantSpacing(t *testing.T) {
	c := NewConstant(1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if gap := c.Next(rng); gap != time.Millisecond {
			t.Fatalf("gap %v, want 1ms", gap)
		}
	}
}

// TestPoissonInterArrival: exponential gaps with mean 1/rate — check the
// sample mean and that the gap distribution is genuinely spread (the
// coefficient of variation of an exponential is 1).
func TestPoissonInterArrival(t *testing.T) {
	p := NewPoisson(2000)
	rng := rand.New(rand.NewSource(11))
	const n = 50_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := float64(p.Next(rng))
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	wantMean := float64(500 * time.Microsecond)
	if math.Abs(mean-wantMean) > 0.05*wantMean {
		t.Errorf("mean gap %.0fns, want ~%.0fns ±5%%", mean, wantMean)
	}
	cv := math.Sqrt(sumSq/n-mean*mean) / mean
	if math.Abs(cv-1) > 0.05 {
		t.Errorf("coefficient of variation %.3f, want ~1 (exponential)", cv)
	}
}

// TestBurstDutyCycle: arrivals land only inside the on-windows, at the
// configured in-burst rate, and the mean rate over whole cycles equals
// rate·on/(on+off).
func TestBurstDutyCycle(t *testing.T) {
	const (
		rate     = 1000.0 // in-burst arrivals/sec
		on       = 10 * time.Millisecond
		off      = 30 * time.Millisecond
		cycles   = 25
		perCycle = 10 // rate * on
	)
	b := NewBurst(rate, on, off)
	rng := rand.New(rand.NewSource(3))
	times := virtualSchedule(b, rng, cycles*perCycle)
	cycle := on + off
	counts := make(map[int]int)
	for _, at := range times {
		if phase := at % cycle; phase >= on {
			t.Fatalf("arrival at %v (phase %v) lands in the off window", at, phase)
		}
		counts[int(at/cycle)]++
	}
	for c := 1; c < cycles-1; c++ {
		if counts[c] != perCycle {
			t.Errorf("cycle %d got %d arrivals, want %d", c, counts[c], perCycle)
		}
	}
	// Mean offered rate over the full span: perCycle per 40ms = 250/s.
	span := times[len(times)-1].Seconds()
	got := float64(len(times)-1) / span
	if want := rate * on.Seconds() / cycle.Seconds(); math.Abs(got-want) > 0.1*want {
		t.Errorf("mean rate %.0f/s, want ~%.0f/s", got, want)
	}
}

// TestConflictWindowShape: bursts of exactly BurstSize simultaneous
// arrivals, separated by exactly Period.
func TestConflictWindowShape(t *testing.T) {
	w := NewConflictWindow(5*time.Millisecond, 4)
	rng := rand.New(rand.NewSource(1))
	times := virtualSchedule(w, rng, 12)
	for i, at := range times {
		wantBurst := i / 4
		if want := time.Duration(wantBurst) * 5 * time.Millisecond; at != want {
			t.Fatalf("arrival %d at %v, want %v (burst %d)", i, at, want, wantBurst)
		}
	}
}

// TestArrivalDeterminism: same seed, same schedule, for every process.
func TestArrivalDeterminism(t *testing.T) {
	mk := []func() Arrival{
		func() Arrival { return NewConstant(500) },
		func() Arrival { return NewPoisson(500) },
		func() Arrival { return NewBurst(1000, 5*time.Millisecond, 5*time.Millisecond) },
		func() Arrival { return NewConflictWindow(2*time.Millisecond, 3) },
	}
	for _, f := range mk {
		a, b := f(), f()
		ra, rb := rand.New(rand.NewSource(13)), rand.New(rand.NewSource(13))
		ta := virtualSchedule(a, ra, 500)
		tb := virtualSchedule(b, rb, 500)
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("%s: arrival %d at %v vs %v", a.Name(), i, ta[i], tb[i])
			}
		}
	}
}

// TestDriveOffersExactly: Drive with a bounded n offers exactly n
// arrivals in order, and stops early when admit says so or the context
// dies.
func TestDriveOffersExactly(t *testing.T) {
	t.Run("bounded", func(t *testing.T) {
		var got []int
		n := Drive(context.Background(), NewConstant(1e6), rand.New(rand.NewSource(1)), 50,
			func(i int) bool { got = append(got, i); return true })
		if n != 50 || len(got) != 50 || got[0] != 0 || got[49] != 49 {
			t.Fatalf("offered %d (%d recorded, first %d last %d), want 50 in order",
				n, len(got), got[0], got[len(got)-1])
		}
	})
	t.Run("admit-stops", func(t *testing.T) {
		n := Drive(context.Background(), NewConstant(1e6), rand.New(rand.NewSource(1)), 0,
			func(i int) bool { return i < 9 })
		if n != 10 {
			t.Fatalf("offered %d, want 10 (admit rejected the 10th)", n)
		}
	})
	t.Run("ctx-stops", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		n := Drive(ctx, NewConstant(100), rand.New(rand.NewSource(1)), 0,
			func(int) bool { return true })
		// ~3 arrivals in 30ms at 100/s; anything bounded and nonzero is
		// fine — the point is that it returned.
		if n == 0 || n > 20 {
			t.Fatalf("offered %d arrivals in 30ms at 100/s", n)
		}
	})
}

// TestDriveCatchesUp: when execution stalls, the absolute schedule makes
// Drive release the backlog immediately rather than thinning the offered
// load — the property that distinguishes an open loop from a closed one.
func TestDriveCatchesUp(t *testing.T) {
	start := time.Now()
	stalled := false
	n := Drive(context.Background(), NewConstant(1000), rand.New(rand.NewSource(1)), 40,
		func(i int) bool {
			if i == 0 && !stalled {
				stalled = true
				time.Sleep(35 * time.Millisecond) // swallow ~35 schedule slots
			}
			return true
		})
	elapsed := time.Since(start)
	if n != 40 {
		t.Fatalf("offered %d, want 40", n)
	}
	// 40 arrivals at 1ms spacing with a 35ms stall: an absolute schedule
	// finishes in ~40ms; a relative one would take ~75ms.
	if elapsed > 65*time.Millisecond {
		t.Errorf("took %v; schedule did not catch up after the stall", elapsed)
	}
}
