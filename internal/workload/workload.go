// Package workload generates the adversarial workload shapes the
// scheduler-stability literature evaluates against ("Stable Scheduling in
// Transactional Memory", Busch et al.; "A Competitive Analysis for
// Balanced Transactional Memory Workloads", Sharma & Busch): skewed key
// distributions that concentrate conflicts on a few hot objects, and
// open-loop arrival processes that keep offering transactions regardless
// of how many complete. Every generator is deterministic for a fixed
// seed: samplers draw only from the caller's rand.Rand, and arrival
// processes keep their phase state internally, so the same seed replays
// the same schedule.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// KeySampler draws a key index in [0, n) from rng. Implementations may
// keep internal state (e.g. a rotating hot window) but must be safe for
// concurrent use; all randomness comes from the caller's rng so a
// single-threaded caller with a seeded rng replays the same key sequence.
type KeySampler interface {
	// Name identifies the distribution in reports ("uniform",
	// "zipf(0.90)", "storm", ...).
	Name() string

	// Sample returns a key index in [0, n). n must be >= 1.
	Sample(rng *rand.Rand, n int) int
}

// Uniform is the key-uniform baseline every pre-existing benchmark used.
type Uniform struct{}

// NewUniform returns the uniform sampler.
func NewUniform() Uniform { return Uniform{} }

// Name implements KeySampler.
func (Uniform) Name() string { return "uniform" }

// Sample implements KeySampler.
func (Uniform) Sample(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	return rng.Intn(n)
}

// Zipf samples ranks 0..n-1 with P(rank r) proportional to 1/(r+1)^theta,
// using the constant-time approximation of Gray et al. (the YCSB
// "zipfian generator"). Rank 0 is always the hottest key, so callers can
// reason about which object IDs carry the skew. theta = 0 degenerates to
// uniform; theta is clamped below 1 where the approximation is exact
// enough (theta 0.99 already sends ~35% of draws to the top 3 of 100
// keys). The per-n zeta normalizers are computed once and cached.
type Zipf struct {
	theta float64

	mu   sync.Mutex
	zeta map[int]float64 // zeta(n, theta), cached per key-space size
}

// maxZipfTheta bounds theta: the Gray approximation needs theta < 1.
const maxZipfTheta = 0.999

// NewZipf returns a Zipfian sampler with skew theta (YCSB default 0.99).
// theta <= 0 yields uniform draws; theta >= 1 is clamped to 0.999.
func NewZipf(theta float64) *Zipf {
	if theta < 0 {
		theta = 0
	}
	if theta > maxZipfTheta {
		theta = maxZipfTheta
	}
	return &Zipf{theta: theta, zeta: make(map[int]float64)}
}

// Name implements KeySampler.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(%.2f)", z.theta) }

// Theta returns the configured (clamped) skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// zetaN returns (and caches) zeta(n, theta) = sum_{i=1..n} i^-theta.
func (z *Zipf) zetaN(n int) float64 {
	z.mu.Lock()
	defer z.mu.Unlock()
	if v, ok := z.zeta[n]; ok {
		return v
	}
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), z.theta)
	}
	z.zeta[n] = sum
	return sum
}

// Sample implements KeySampler.
func (z *Zipf) Sample(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	if z.theta == 0 {
		return rng.Intn(n)
	}
	zetan := z.zetaN(n)
	zeta2 := 1 + math.Pow(2, -z.theta)
	alpha := 1 / (1 - z.theta)
	eta := (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - zeta2/zetan)

	u := rng.Float64()
	uz := u * zetan
	switch {
	case uz < 1:
		return 0
	case uz < 1+math.Pow(0.5, z.theta):
		return 1
	}
	r := int(float64(n) * math.Pow(eta*u-eta+1, alpha))
	if r >= n {
		r = n - 1
	}
	if r < 0 {
		r = 0
	}
	return r
}

// HotKeyStorm models a moving hot spot: HotFraction of draws land inside
// a window of HotKeys consecutive keys, and the window slides to a fresh
// position every RotateEvery draws — the "hot-key storm" adversary where
// the contended set itself keeps changing, defeating placement or caching
// that learned the previous hot set. The remaining draws are uniform over
// the whole key space. The rotation counter is shared across workers
// (atomically), so concurrent callers all storm the same window.
type HotKeyStorm struct {
	// HotKeys is the hot-window width. 0 means 2.
	HotKeys int
	// HotFraction of draws hit the hot window. 0 means 0.9.
	HotFraction float64
	// RotateEvery is how many draws a window position lasts. 0 pins the
	// window at the start of the key space for the whole run.
	RotateEvery uint64

	draws atomic.Uint64
}

// NewHotKeyStorm returns a storm sampler with the given window width,
// hot fraction, and rotation period (see the field docs for zero values).
func NewHotKeyStorm(hotKeys int, hotFraction float64, rotateEvery uint64) *HotKeyStorm {
	return &HotKeyStorm{HotKeys: hotKeys, HotFraction: hotFraction, RotateEvery: rotateEvery}
}

// Name implements KeySampler.
func (h *HotKeyStorm) Name() string { return "storm" }

// Sample implements KeySampler.
func (h *HotKeyStorm) Sample(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	hot := h.HotKeys
	if hot <= 0 {
		hot = 2
	}
	if hot > n {
		hot = n
	}
	frac := h.HotFraction
	if frac <= 0 {
		frac = 0.9
	}
	i := h.draws.Add(1) - 1
	if rng.Float64() >= frac {
		return rng.Intn(n)
	}
	var start int
	if h.RotateEvery > 0 {
		// Slide by the window width each period so successive hot sets are
		// disjoint until the space wraps.
		start = int((i / h.RotateEvery * uint64(hot)) % uint64(n))
	}
	return (start + rng.Intn(hot)) % n
}

// Compile-time interface checks.
var (
	_ KeySampler = Uniform{}
	_ KeySampler = (*Zipf)(nil)
	_ KeySampler = (*HotKeyStorm)(nil)
)
