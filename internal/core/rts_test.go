package core

import (
	"testing"
	"time"

	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/transport"
)

func mkReq(oid string, tx uint64, node int32, mode sched.Mode, elapsed, remaining time.Duration, myCL int) sched.Request {
	return sched.Request{
		Oid:               object.ID("obj/" + oid),
		TxID:              tx,
		Node:              transport.NodeID(node),
		Mode:              mode,
		MyCL:              myCL,
		Elapsed:           elapsed,
		ExpectedRemaining: remaining,
	}
}

func TestRTSName(t *testing.T) {
	r := New(Options{})
	if r.Name() != "RTS" {
		t.Fatalf("name %q", r.Name())
	}
	if r.Threshold() != DefaultCLThreshold {
		t.Fatalf("default threshold %d", r.Threshold())
	}
}

// A long-running, low-contention parent is enqueued with a backoff equal to
// the expected remaining time of the queue (its own entry included).
func TestRTSEnqueuesLongRunningLowCL(t *testing.T) {
	r := New(Options{CLThreshold: 3})
	req := mkReq("x", 1, 1, sched.Write, 10*time.Millisecond, 2*time.Millisecond, 0)
	d := r.OnConflict(req)
	if !d.Enqueue {
		t.Fatalf("long-running low-CL parent was aborted: %+v", d)
	}
	if d.Backoff != 2*time.Millisecond {
		t.Fatalf("backoff %v, want 2ms", d.Backoff)
	}
	if r.QueueLen("obj/x") != 1 {
		t.Fatalf("queue length %d", r.QueueLen("obj/x"))
	}
}

// A short-running parent aborts: its elapsed time does not exceed the
// accumulated backoff it would wait (paper: "RTS aborts a parent
// transaction with a short execution time").
func TestRTSAbortsShortRunning(t *testing.T) {
	r := New(Options{CLThreshold: 10})
	// First requester occupies the queue with 5ms expected remaining.
	d1 := r.OnConflict(mkReq("x", 1, 1, sched.Write, 10*time.Millisecond, 5*time.Millisecond, 0))
	if !d1.Enqueue {
		t.Fatal("setup enqueue failed")
	}
	// Second requester has run only 1ms < bk of 5ms: abort.
	d2 := r.OnConflict(mkReq("x", 2, 2, sched.Write, time.Millisecond, time.Millisecond, 0))
	if d2.Enqueue {
		t.Fatalf("short-running parent was enqueued: %+v", d2)
	}
}

// A high-CL parent aborts even when long-running (paper §III-B: T5 aborts
// because CL 4 >= threshold).
func TestRTSAbortsHighContention(t *testing.T) {
	r := New(Options{CLThreshold: 3})
	// myCL 4 alone pushes contention to 1+4 = 5 >= 3.
	d := r.OnConflict(mkReq("x", 1, 1, sched.Write, time.Second, time.Millisecond, 4))
	if d.Enqueue {
		t.Fatalf("high-CL parent was enqueued: %+v", d)
	}
	if r.QueueLen("obj/x") != 0 {
		t.Fatal("aborted requester left in queue")
	}
}

// Backoff accumulates across enqueued requesters (Algorithm 3: bk += ETS.c − ETS.r).
func TestRTSBackoffAccumulates(t *testing.T) {
	r := New(Options{CLThreshold: 10, MaxQueue: 10})
	d1 := r.OnConflict(mkReq("x", 1, 1, sched.Write, time.Second, 3*time.Millisecond, 0))
	d2 := r.OnConflict(mkReq("x", 2, 2, sched.Write, time.Second, 4*time.Millisecond, 0))
	if !d1.Enqueue || !d2.Enqueue {
		t.Fatalf("decisions: %+v %+v", d1, d2)
	}
	if d1.Backoff != 3*time.Millisecond {
		t.Fatalf("first backoff %v", d1.Backoff)
	}
	if d2.Backoff != 7*time.Millisecond {
		t.Fatalf("second backoff %v, want 3+4ms", d2.Backoff)
	}
}

// Example from §III-B, object-based scenario: T4 enqueued (CL 2 < 3), T5
// aborted (CL 4 >= 3).
func TestRTSPaperScenario(t *testing.T) {
	r := New(Options{CLThreshold: 3})
	// T4: has run 30ms (> bk 0), holds objects o2,o3 with total CL 1.
	d4 := r.OnConflict(mkReq("o1", 4, 4, sched.Write, 30*time.Millisecond, 10*time.Millisecond, 1))
	if !d4.Enqueue {
		t.Fatal("T4 should be enqueued (CL 2 < threshold 3)")
	}
	// T5: long-running too, but holds o4 with CL 2 → contention = 2(local incl. T5) + 2 = 4.
	d5 := r.OnConflict(mkReq("o1", 5, 5, sched.Write, 40*time.Millisecond, 10*time.Millisecond, 2))
	if d5.Enqueue {
		t.Fatal("T5 should abort (CL 4 >= threshold 3)")
	}
	// T6: short execution time → abort.
	d6 := r.OnConflict(mkReq("o1", 6, 6, sched.Write, time.Millisecond, 10*time.Millisecond, 0))
	if d6.Enqueue {
		t.Fatal("T6 should abort (short execution time)")
	}
}

func TestRTSQueueCap(t *testing.T) {
	r := New(Options{CLThreshold: 100, MaxQueue: 2})
	for i := uint64(1); i <= 2; i++ {
		if d := r.OnConflict(mkReq("x", i, int32(i), sched.Write, time.Second, time.Millisecond, 0)); !d.Enqueue {
			t.Fatalf("requester %d rejected below cap", i)
		}
	}
	if d := r.OnConflict(mkReq("x", 3, 3, sched.Write, time.Hour, time.Millisecond, 0)); d.Enqueue {
		t.Fatal("queue cap not enforced")
	}
}

func TestRTSDuplicateRemoved(t *testing.T) {
	r := New(Options{CLThreshold: 10})
	req := mkReq("x", 1, 1, sched.Write, time.Second, 2*time.Millisecond, 0)
	if d := r.OnConflict(req); !d.Enqueue {
		t.Fatal("first enqueue failed")
	}
	// Same transaction retries (timed out): must not occupy two slots, and
	// bk must not double-count.
	d := r.OnConflict(req)
	if !d.Enqueue {
		t.Fatal("retry enqueue failed")
	}
	if r.QueueLen("obj/x") != 1 {
		t.Fatalf("duplicate occupies %d slots", r.QueueLen("obj/x"))
	}
	if d.Backoff != 2*time.Millisecond {
		t.Fatalf("backoff %v double-counted", d.Backoff)
	}
}

// On release, a write requester at the head is handed the object alone.
func TestRTSReleaseWriteHead(t *testing.T) {
	r := New(Options{CLThreshold: 10})
	r.OnConflict(mkReq("x", 1, 1, sched.Write, time.Second, time.Millisecond, 0))
	r.OnConflict(mkReq("x", 2, 2, sched.Write, time.Second, time.Millisecond, 0))
	out := r.OnRelease("obj/x")
	if len(out) != 1 || out[0].TxID != 1 {
		t.Fatalf("OnRelease = %+v", out)
	}
	if r.QueueLen("obj/x") != 1 {
		t.Fatalf("queue length %d after pop", r.QueueLen("obj/x"))
	}
}

// When a read heads the queue, every queued read is released at once
// (paper: "o1 … will simultaneously be sent to T4, T5 and T6, increasing
// the concurrency of the read transactions").
func TestRTSReleaseReadBroadcast(t *testing.T) {
	r := New(Options{CLThreshold: 10})
	r.OnConflict(mkReq("x", 1, 1, sched.Read, time.Second, time.Millisecond, 0))
	r.OnConflict(mkReq("x", 2, 2, sched.Write, time.Second, time.Millisecond, 0))
	r.OnConflict(mkReq("x", 3, 3, sched.Read, time.Second, time.Millisecond, 0))
	out := r.OnRelease("obj/x")
	if len(out) != 2 {
		t.Fatalf("OnRelease = %+v, want both reads", out)
	}
	for _, q := range out {
		if q.Mode != sched.Read {
			t.Fatalf("non-read popped: %+v", q)
		}
	}
	// The write stays queued and pops next.
	next := r.OnDecline("obj/x")
	if len(next) != 1 || next[0].TxID != 2 {
		t.Fatalf("next pop = %+v", next)
	}
	if got := r.OnRelease("obj/x"); got != nil {
		t.Fatalf("empty queue popped %+v", got)
	}
}

func TestRTSExtractAdoptQueue(t *testing.T) {
	r := New(Options{CLThreshold: 10})
	r.OnConflict(mkReq("x", 1, 1, sched.Write, time.Second, time.Millisecond, 0))
	r.OnConflict(mkReq("x", 2, 2, sched.Write, time.Second, time.Millisecond, 0))
	q := r.ExtractQueue("obj/x")
	if len(q) != 2 || q[0].TxID != 1 || q[1].TxID != 2 {
		t.Fatalf("extracted %+v", q)
	}
	if r.QueueLen("obj/x") != 0 {
		t.Fatal("queue not removed on extract")
	}
	if got := r.ExtractQueue("obj/x"); got != nil {
		t.Fatalf("second extract = %+v", got)
	}

	// Adopt at the new owner: adopted entries go ahead of local ones.
	r2 := New(Options{CLThreshold: 10})
	r2.OnConflict(mkReq("x", 9, 9, sched.Write, time.Second, time.Millisecond, 0))
	r2.AdoptQueue("obj/x", q)
	if r2.QueueLen("obj/x") != 3 {
		t.Fatalf("adopted queue length %d", r2.QueueLen("obj/x"))
	}
	out := r2.OnRelease("obj/x")
	if len(out) != 1 || out[0].TxID != 1 {
		t.Fatalf("adopted head = %+v, want TxID 1", out)
	}
	r2.AdoptQueue("obj/x", nil) // no-op
}

func TestRTSAdaptiveThresholdWiring(t *testing.T) {
	r := New(Options{CLThreshold: 4, Adaptive: true, MinThreshold: 2, MaxThreshold: 8, AdaptBatch: 2})
	before := r.Threshold()
	r.Feedback(true)
	r.Feedback(true)
	if r.Threshold() == before {
		t.Fatal("adaptive threshold did not move after a full batch")
	}
	// Fixed-threshold RTS ignores feedback.
	rf := New(Options{CLThreshold: 4})
	rf.Feedback(true)
	rf.Feedback(true)
	if rf.Threshold() != 4 {
		t.Fatal("fixed threshold moved")
	}
}

func TestRTSRetryDelay(t *testing.T) {
	r := New(Options{})
	if d := r.RetryDelay(5, "p"); d != 0 {
		t.Fatalf("default retry delay %v", d)
	}
	r2 := New(Options{RetryDelay: time.Millisecond})
	if d := r2.RetryDelay(1, "p"); d != time.Millisecond {
		t.Fatalf("configured retry delay %v", d)
	}
}

func TestRTSObserveRequestCounts(t *testing.T) {
	r := New(Options{CLWindow: time.Hour})
	if cl := r.ObserveRequest("a", 1); cl != 1 {
		t.Fatalf("first observe = %d", cl)
	}
	if cl := r.ObserveRequest("a", 2); cl != 2 {
		t.Fatalf("second observe = %d", cl)
	}
}
