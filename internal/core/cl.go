package core

import (
	"sync"
	"time"

	"dstm/internal/object"
)

// clTracker measures the local contention level (CL) of each object owned
// by this node: how many *distinct transactions* have requested the object
// during the current time window (paper §III-A, "a simple local detection
// scheme determines the local CL of oj by how many transactions have
// requested oj during a given time period"). Retries of the same
// transaction count once.
type clTracker struct {
	window time.Duration
	now    func() time.Time // injectable clock for tests

	mu      sync.Mutex
	entries map[object.ID]*clEntry
}

type clEntry struct {
	txs        map[uint64]struct{}
	windowFrom time.Time
}

// newCLTracker returns a tracker with the given window (0 means 100 ms —
// a few typical transaction lifetimes).
func newCLTracker(window time.Duration) *clTracker {
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	return &clTracker{
		window:  window,
		now:     time.Now,
		entries: make(map[object.ID]*clEntry),
	}
}

// Record counts one request by txid against oid and returns the local CL
// including this requester. Repeat requests from the same transaction
// within a window do not inflate the level.
func (t *clTracker) Record(oid object.ID, txid uint64) int {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[oid]
	if e == nil {
		e = &clEntry{txs: make(map[uint64]struct{})}
		t.entries[oid] = e
	}
	if now.Sub(e.windowFrom) > t.window {
		clear(e.txs)
		e.windowFrom = now
	}
	e.txs[txid] = struct{}{}
	return len(e.txs)
}

// Level returns oid's local CL without recording a request. Expired
// windows read as zero.
func (t *clTracker) Level(oid object.ID) int {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[oid]
	if e == nil || now.Sub(e.windowFrom) > t.window {
		return 0
	}
	return len(e.txs)
}
