package core

import (
	"sync"
)

// adaptiveThreshold tunes the CL threshold at runtime. The paper (§III-B,
// §IV-A): "The threshold of a low or high CL relies on the number of nodes,
// transactions, and shared objects. Thus, the CL's threshold is adaptively
// determined … at a certain point of the CL's threshold, we observe a peak
// point of transactional throughput."
//
// The controller hill-climbs that peak: it watches the commit ratio over
// fixed-size batches of outcomes and keeps moving the threshold in the
// current direction while the ratio improves, reversing direction when it
// degrades.
type adaptiveThreshold struct {
	mu        sync.Mutex
	value     int
	min, max  int
	batch     int
	dir       int // +1 or -1
	commits   int
	total     int
	prevRatio float64
	started   bool
}

// newAdaptiveThreshold starts at initial, clamped to [min, max]; batch is
// the number of outcomes per adjustment step.
func newAdaptiveThreshold(initial, min, max, batch int) *adaptiveThreshold {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if initial < min {
		initial = min
	}
	if initial > max {
		initial = max
	}
	if batch < 1 {
		batch = 64
	}
	return &adaptiveThreshold{value: initial, min: min, max: max, batch: batch, dir: +1}
}

// Value returns the current threshold.
func (a *adaptiveThreshold) Value() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.value
}

// Feedback reports one transaction outcome. Every batch outcomes the
// controller takes a hill-climbing step.
func (a *adaptiveThreshold) Feedback(committed bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total++
	if committed {
		a.commits++
	}
	if a.total < a.batch {
		return
	}
	ratio := float64(a.commits) / float64(a.total)
	a.commits, a.total = 0, 0
	if a.started && ratio < a.prevRatio {
		a.dir = -a.dir
	}
	a.started = true
	a.prevRatio = ratio
	a.value += a.dir
	if a.value < a.min {
		a.value = a.min
		a.dir = +1
	}
	if a.value > a.max {
		a.value = a.max
		a.dir = -1
	}
}
