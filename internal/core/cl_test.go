package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCLRecordCounts(t *testing.T) {
	tr := newCLTracker(time.Second)
	if got := tr.Record("a", 1); got != 1 {
		t.Fatalf("first Record = %d", got)
	}
	if got := tr.Record("a", 2); got != 2 {
		t.Fatalf("second Record = %d", got)
	}
	if got := tr.Record("b", 3); got != 1 {
		t.Fatalf("other object Record = %d", got)
	}
	if got := tr.Level("a"); got != 2 {
		t.Fatalf("Level = %d", got)
	}
}

func TestCLLevelUnknown(t *testing.T) {
	tr := newCLTracker(time.Second)
	if got := tr.Level("ghost"); got != 0 {
		t.Fatalf("Level of unknown = %d", got)
	}
}

func TestCLWindowExpiry(t *testing.T) {
	tr := newCLTracker(10 * time.Millisecond)
	now := time.Unix(0, 0)
	tr.now = func() time.Time { return now }

	tr.Record("a", 1)
	tr.Record("a", 2)
	if got := tr.Level("a"); got != 2 {
		t.Fatalf("Level = %d", got)
	}
	// Advance beyond the window: the count resets.
	now = now.Add(20 * time.Millisecond)
	if got := tr.Level("a"); got != 0 {
		t.Fatalf("Level after window = %d", got)
	}
	if got := tr.Record("a", 1); got != 1 {
		t.Fatalf("Record after window = %d, want fresh count 1", got)
	}
}

func TestCLDeduplicatesRetries(t *testing.T) {
	// Retries of the same transaction must not inflate the contention
	// level: the paper counts "how many transactions have requested".
	tr := newCLTracker(time.Hour)
	for i := 0; i < 50; i++ {
		if got := tr.Record("hot", 7); got != 1 {
			t.Fatalf("retrying tx inflated CL to %d", got)
		}
	}
	if got := tr.Record("hot", 8); got != 2 {
		t.Fatalf("second tx Record = %d", got)
	}
}

func TestCLDefaultWindow(t *testing.T) {
	tr := newCLTracker(0)
	if tr.window <= 0 {
		t.Fatal("default window not applied")
	}
}

// Property: within one window, Level("x") equals the number of Records.
func TestCLCountProperty(t *testing.T) {
	f := func(n uint8) bool {
		tr := newCLTracker(time.Hour)
		for i := 0; i < int(n); i++ {
			tr.Record("x", uint64(i+1))
		}
		return tr.Level("x") == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveThresholdBounds(t *testing.T) {
	a := newAdaptiveThreshold(3, 2, 6, 4)
	for i := 0; i < 1000; i++ {
		a.Feedback(i%3 == 0)
		v := a.Value()
		if v < 2 || v > 6 {
			t.Fatalf("threshold %d escaped [2,6]", v)
		}
	}
}

func TestAdaptiveThresholdMoves(t *testing.T) {
	a := newAdaptiveThreshold(3, 1, 10, 2)
	start := a.Value()
	// Uniform positive feedback: ratio stays 1.0, direction stays +1.
	for i := 0; i < 8; i++ {
		a.Feedback(true)
	}
	if a.Value() <= start {
		t.Fatalf("threshold did not climb: %d -> %d", start, a.Value())
	}
}

func TestAdaptiveThresholdReversesOnDegradation(t *testing.T) {
	a := newAdaptiveThreshold(5, 1, 10, 2)
	// Batch 1: perfect ratio, climbs to 6.
	a.Feedback(true)
	a.Feedback(true)
	if a.Value() != 6 {
		t.Fatalf("after good batch: %d, want 6", a.Value())
	}
	// Batch 2: ratio collapses; direction reverses, drops to 5.
	a.Feedback(false)
	a.Feedback(false)
	if a.Value() != 5 {
		t.Fatalf("after bad batch: %d, want 5", a.Value())
	}
}

func TestAdaptiveThresholdClampsConstruction(t *testing.T) {
	a := newAdaptiveThreshold(100, 2, 6, 0)
	if a.Value() != 6 {
		t.Fatalf("initial not clamped: %d", a.Value())
	}
	a = newAdaptiveThreshold(-1, 2, 6, 0)
	if a.Value() != 2 {
		t.Fatalf("initial not clamped low: %d", a.Value())
	}
	a = newAdaptiveThreshold(1, -5, -7, 0)
	if a.Value() < 1 {
		t.Fatalf("degenerate bounds produced %d", a.Value())
	}
}
