package core

import (
	"testing"
	"time"

	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/trace"
)

// TestRTSDecisionTable pins Algorithm 3's predicate exactly at its three
// boundaries. Enqueue requires ALL of
//
//	bk(queue) <  Elapsed          (strict: equal elapsed aborts)
//	len(queue) <  maxQueue        (a full queue aborts)
//	contention <  threshold       (contention AT the threshold aborts,
//	                               where contention = len+1 + MyCL)
//
// Each case seeds a queue via prior enqueues, then asserts the probe
// request's verdict and backoff.
func TestRTSDecisionTable(t *testing.T) {
	// Each seed entry occupies one queue slot with a known remaining time,
	// so bk(queue) = sum(seedRemain) when the probe arrives.
	type seed struct {
		remain time.Duration
	}
	cases := []struct {
		name      string
		threshold int
		maxQueue  int
		seeds     []seed
		elapsed   time.Duration
		myCL      int
		enqueue   bool
		backoff   time.Duration // checked only when enqueue
	}{
		{
			name:      "empty queue, long elapsed: enqueue",
			threshold: 4,
			elapsed:   time.Millisecond,
			enqueue:   true,
			backoff:   time.Millisecond, // probe's own remaining (below)
		},
		{
			name:      "elapsed equal to bk: strict comparison aborts",
			threshold: 10, maxQueue: 10,
			seeds:   []seed{{5 * time.Millisecond}},
			elapsed: 5 * time.Millisecond,
			enqueue: false,
		},
		{
			name:      "elapsed one tick above bk: enqueue",
			threshold: 10, maxQueue: 10,
			seeds:   []seed{{5 * time.Millisecond}},
			elapsed: 5*time.Millisecond + time.Nanosecond,
			enqueue: true,
			backoff: 5*time.Millisecond + time.Millisecond,
		},
		{
			name:      "queue one below cap: enqueue",
			threshold: 100, maxQueue: 3,
			seeds:   []seed{{time.Microsecond}, {time.Microsecond}},
			elapsed: time.Second,
			enqueue: true,
			backoff: 2*time.Microsecond + time.Millisecond,
		},
		{
			name:      "queue at cap: abort",
			threshold: 100, maxQueue: 3,
			seeds:   []seed{{time.Microsecond}, {time.Microsecond}, {time.Microsecond}},
			elapsed: time.Second,
			enqueue: false,
		},
		{
			name:      "contention one below threshold: enqueue",
			threshold: 3, maxQueue: 100,
			seeds:   []seed{{time.Microsecond}}, // contention = 1+1+0 = 2
			elapsed: time.Second,
			enqueue: true,
			backoff: time.Microsecond + time.Millisecond,
		},
		{
			name:      "contention at threshold: abort",
			threshold: 3, maxQueue: 100,
			seeds:   []seed{{time.Microsecond}, {time.Microsecond}}, // 2+1+0 = 3
			elapsed: time.Second,
			enqueue: false,
		},
		{
			name:      "remote CL pushes contention to threshold: abort",
			threshold: 3, maxQueue: 100,
			seeds:   nil, // contention = 0+1+2 = 3
			myCL:    2,
			elapsed: time.Second,
			enqueue: false,
		},
		{
			name:      "remote CL one below threshold: enqueue",
			threshold: 3, maxQueue: 100,
			myCL:    1, // contention = 0+1+1 = 2
			elapsed: time.Second,
			enqueue: true,
			backoff: time.Millisecond,
		},
		{
			name:      "MaxQueue zero derives cap from threshold",
			threshold: 2, // derived maxQueue = 2, but contention trips first
			seeds:     []seed{{time.Microsecond}},
			elapsed:   time.Second,
			enqueue:   false, // contention = 1+1 = 2 == threshold
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := New(Options{CLThreshold: tc.threshold, MaxQueue: tc.maxQueue})
			for i, s := range tc.seeds {
				// Seeds use a huge Elapsed and a generous threshold-safe
				// MyCL of 0 so they always enqueue.
				d := r.OnConflict(mkReq("x", uint64(100+i), int32(i), sched.Write, time.Hour, s.remain, 0))
				if !d.Enqueue {
					t.Fatalf("seed %d was denied; fix the test setup", i)
				}
			}
			probe := mkReq("x", 1, 99, sched.Write, tc.elapsed, time.Millisecond, tc.myCL)
			d := r.OnConflict(probe)
			if d.Enqueue != tc.enqueue {
				t.Fatalf("enqueue = %v, want %v (decision %+v)", d.Enqueue, tc.enqueue, d)
			}
			if tc.enqueue && d.Backoff != tc.backoff {
				t.Fatalf("backoff = %v, want %v", d.Backoff, tc.backoff)
			}
			wantLen := len(tc.seeds)
			if tc.enqueue {
				wantLen++
			}
			if got := r.QueueLen("obj/x"); got != wantLen {
				t.Fatalf("queue length %d, want %d", got, wantLen)
			}
		})
	}
}

// TestRTSBackoffAccumulationOrder checks Algorithm 3's bk accumulation:
// each enqueued requester's backoff is the sum of the expected remaining
// times of everyone ahead of it plus its own.
func TestRTSBackoffAccumulationOrder(t *testing.T) {
	r := New(Options{CLThreshold: 100, MaxQueue: 100})
	remains := []time.Duration{3 * time.Millisecond, 5 * time.Millisecond, 7 * time.Millisecond}
	var want time.Duration
	for i, rem := range remains {
		want += rem
		d := r.OnConflict(mkReq("x", uint64(i+1), int32(i), sched.Write, time.Hour, rem, 0))
		if !d.Enqueue {
			t.Fatalf("requester %d denied", i)
		}
		if d.Backoff != want {
			t.Fatalf("requester %d backoff %v, want cumulative %v", i, d.Backoff, want)
		}
	}
}

// TestRTSDecisionTraceEvents asserts the scheduler's queue-transition
// events carry the fields the protocol checker keys on: enqueue with mode
// and post-add length, deny with the computed contention, dup-dequeue only
// when an entry was actually removed.
func TestRTSDecisionTraceEvents(t *testing.T) {
	rec := trace.NewRecorder(0, 64, func() uint64 { return 0 })
	r := New(Options{CLThreshold: 3, MaxQueue: 10})
	r.SetTracer(rec)

	// Enqueue, then the same (node, tx) retries: dup-dequeue + re-enqueue.
	r.OnConflict(mkReq("x", 1, 1, sched.Write, time.Hour, time.Millisecond, 0))
	r.OnConflict(mkReq("x", 1, 1, sched.Write, time.Hour, time.Millisecond, 0))
	// High remote CL: denied.
	r.OnConflict(mkReq("x", 2, 2, sched.Read, time.Hour, time.Millisecond, 5))

	evs := rec.Events()
	var types []trace.EventType
	for _, e := range evs {
		types = append(types, e.Type)
	}
	want := []trace.EventType{trace.EvEnqueue, trace.EvDequeue, trace.EvEnqueue, trace.EvDeny}
	if len(types) != len(want) {
		t.Fatalf("event types %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event %d is %v, want %v (all: %v)", i, types[i], want[i], types)
		}
	}
	if evs[0].Detail != "write" || evs[0].A != 1 {
		t.Fatalf("enqueue event fields: %+v", evs[0])
	}
	if evs[1].Detail != "dup" {
		t.Fatalf("dup dequeue detail %q", evs[1].Detail)
	}
	deny := evs[3]
	if deny.Detail != "read" || deny.A != 1+1+5 {
		t.Fatalf("deny event should carry contention 7: %+v", deny)
	}
	if oid := object.ID("obj/x"); deny.Oid != oid {
		t.Fatalf("deny oid %q", deny.Oid)
	}
}

// TestRTSReleaseHeadModeTable pins Algorithm 4's hand-off for each head
// mode: a write head goes out alone; a read head releases every queued
// read at once, leaving the writes queued in order.
func TestRTSReleaseHeadModeTable(t *testing.T) {
	cases := []struct {
		name      string
		modes     []sched.Mode // enqueue order
		wantFirst []uint64     // txids of the first pop
		wantNext  []uint64     // txids of the second pop
	}{
		{
			name:      "write head pops alone",
			modes:     []sched.Mode{sched.Write, sched.Write, sched.Read},
			wantFirst: []uint64{1},
			wantNext:  []uint64{2},
		},
		{
			name:      "read head broadcasts all reads",
			modes:     []sched.Mode{sched.Read, sched.Write, sched.Read},
			wantFirst: []uint64{1, 3},
			wantNext:  []uint64{2},
		},
		{
			name:      "all reads drain in one pop",
			modes:     []sched.Mode{sched.Read, sched.Read},
			wantFirst: []uint64{1, 2},
			wantNext:  nil,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := New(Options{CLThreshold: 100, MaxQueue: 100})
			for i, m := range tc.modes {
				if d := r.OnConflict(mkReq("x", uint64(i+1), int32(i), m, time.Hour, time.Millisecond, 0)); !d.Enqueue {
					t.Fatalf("seed %d denied", i)
				}
			}
			check := func(got []sched.Request, want []uint64) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("popped %d requests, want %d (%v)", len(got), len(want), got)
				}
				for i, w := range want {
					if got[i].TxID != w {
						t.Fatalf("pop[%d] = tx %d, want %d", i, got[i].TxID, w)
					}
				}
			}
			check(r.OnRelease("obj/x"), tc.wantFirst)
			check(r.OnRelease("obj/x"), tc.wantNext)
		})
	}
}
