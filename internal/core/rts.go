// Package core implements the paper's contribution: RTS, the Reactive
// Transactional Scheduler for closed-nested transactions in dataflow D-STM
// (Kim & Ravindran, IPDPS 2012).
//
// RTS hooks the owner-side conflict path of the D-STM runtime. When a
// retrieve request arrives for an object that is commit-locked (its holder
// is validating), RTS decides the requester's fate from two signals:
//
//   - the requester's elapsed execution time (ETS.r − ETS.s): parents that
//     have been running long enough to out-weigh the queueing delay are
//     candidates for enqueueing — aborting them would also roll back their
//     committed closed-nested children and force every object to be
//     re-fetched over the network;
//   - the contention level (CL): the number of transactions wanting the
//     objects involved — local CL of the requested object plus the
//     requester's remote CL. High contention means queueing would likely
//     spiral, so the requester aborts instead.
//
// Enqueued requesters receive a backoff time accumulated from the expected
// remaining execution times of the transactions queued ahead of them
// (Algorithm 3's bk). When the commit lock is released, the owner hands the
// freshly committed object straight to the first queued write requester —
// or to every queued read requester at once — so their inner transactions
// resume without re-requesting objects (Algorithm 4). Queues migrate with
// object ownership at commit time.
package core

import (
	"sync"
	"time"

	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/trace"
	"dstm/internal/transport"
)

// Options configures an RTS instance.
type Options struct {
	// CLThreshold is the contention level at or above which a conflicting
	// parent transaction is aborted rather than enqueued. 0 means
	// DefaultCLThreshold. Ignored when Adaptive is set.
	CLThreshold int

	// Adaptive enables runtime hill-climbing of the CL threshold between
	// MinThreshold and MaxThreshold (paper §IV-A: the threshold "is
	// adaptively determined").
	Adaptive                   bool
	MinThreshold, MaxThreshold int
	AdaptBatch                 int

	// CLWindow is the sliding window over which per-object local CLs are
	// counted. 0 means 100 ms.
	CLWindow time.Duration

	// MaxQueue caps each object's requester queue. 0 derives it from the
	// CL threshold (paper §III-C: "the transactions will be enqueued as
	// many as CL threshold").
	MaxQueue int

	// RetryDelay is the client-side stall after an abort. RTS relies on
	// enqueueing rather than client stalls, so this defaults to zero.
	RetryDelay time.Duration
}

// DefaultCLThreshold matches the order of magnitude the paper's example
// uses (§III-B illustrates a threshold of 3).
const DefaultCLThreshold = 3

// RTS is the reactive transactional scheduler. It implements sched.Policy.
type RTS struct {
	opts    Options
	tracker *clTracker
	adapt   *adaptiveThreshold

	mu    sync.Mutex
	lists map[object.ID]*requesterList

	// tracer records queue transitions; handoffSeq groups the pops of one
	// release so the checker can validate the hand-off head rule. Both are
	// guarded by mu: queue events MUST be emitted under the same critical
	// section that mutates the queue, or the trace would interleave them.
	tracer     *trace.Recorder
	handoffSeq uint64
}

var (
	_ sched.Policy       = (*RTS)(nil)
	_ sched.QueueDepther = (*RTS)(nil)
)

// New returns an RTS policy with the given options.
func New(opts Options) *RTS {
	if opts.CLThreshold <= 0 {
		opts.CLThreshold = DefaultCLThreshold
	}
	r := &RTS{
		opts:    opts,
		tracker: newCLTracker(opts.CLWindow),
		lists:   make(map[object.ID]*requesterList),
	}
	if opts.Adaptive {
		min, max := opts.MinThreshold, opts.MaxThreshold
		if min <= 0 {
			min = 2
		}
		if max <= 0 {
			max = 16
		}
		r.adapt = newAdaptiveThreshold(opts.CLThreshold, min, max, opts.AdaptBatch)
	}
	return r
}

// Name implements sched.Policy.
func (r *RTS) Name() string { return "RTS" }

// SetTracer installs a protocol event recorder for queue transitions (nil
// disables). Call before the scheduler starts taking requests.
func (r *RTS) SetTracer(tr *trace.Recorder) {
	r.mu.Lock()
	r.tracer = tr
	r.mu.Unlock()
}

// Threshold returns the CL threshold currently in force.
func (r *RTS) Threshold() int {
	if r.adapt != nil {
		return r.adapt.Value()
	}
	return r.opts.CLThreshold
}

// Feedback reports a transaction outcome to the adaptive controller. It is
// a no-op for fixed thresholds.
func (r *RTS) Feedback(committed bool) {
	if r.adapt != nil {
		r.adapt.Feedback(committed)
	}
}

// ObserveRequest implements sched.Policy: every retrieve request marks the
// requesting transaction against the object's local CL window, and the
// resulting level (distinct requesters) is reported back to the requester
// (which accumulates it into its myCL).
func (r *RTS) ObserveRequest(oid object.ID, txid uint64) int {
	return r.tracker.Record(oid, txid)
}

// OnConflict implements sched.Policy — Algorithm 3 of the paper.
func (r *RTS) OnConflict(req sched.Request) sched.Decision {
	r.mu.Lock()
	defer r.mu.Unlock()

	lst := r.lists[req.Oid]
	if lst == nil {
		lst = &requesterList{}
		r.lists[req.Oid] = lst
	}
	// A requester that timed out and retried must not occupy two slots.
	if lst.removeDuplicate(req.Node, req.TxID) {
		r.tracer.Emit(trace.Event{Type: trace.EvDequeue, Tx: req.TxID, Oid: req.Oid, Detail: "dup"})
	}

	maxQueue := r.opts.MaxQueue
	threshold := r.Threshold()
	if maxQueue <= 0 {
		maxQueue = threshold
	}

	// contention = local CL of the object (queued requesters plus this
	// one) + the requester's remote CL (objects it already holds).
	contention := lst.len() + 1 + req.MyCL

	// Enqueue only a transaction whose elapsed execution time exceeds the
	// backoff it would have to sit out (otherwise aborting and restarting
	// is cheaper than queueing, §III-A).
	if lst.bk() < req.Elapsed && lst.len() < maxQueue && contention < threshold {
		lst.add(req, contention)
		bk := lst.bk()
		r.tracer.Emit(trace.Event{
			Type: trace.EvEnqueue, Tx: req.TxID, Oid: req.Oid,
			Detail: req.Mode.String(), A: uint64(lst.len()), B: uint64(bk),
		})
		return sched.Decision{Enqueue: true, Backoff: bk}
	}
	r.tracer.Emit(trace.Event{
		Type: trace.EvDeny, Tx: req.TxID, Oid: req.Oid,
		Detail: req.Mode.String(), A: uint64(contention),
	})
	return sched.Decision{}
}

// OnRelease implements sched.Policy — the hand-off of Algorithm 4: on
// commit-lock release the object goes to the first queued write requester,
// or simultaneously to all queued read requesters when a read heads the
// queue, maximising read concurrency.
func (r *RTS) OnRelease(oid object.ID) []sched.Request {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.popLocked(oid)
}

// OnDecline implements sched.Policy: the previously popped requester was
// gone (aborted while parked); try the next.
func (r *RTS) OnDecline(oid object.ID) []sched.Request {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.popLocked(oid)
}

func (r *RTS) popLocked(oid object.ID) []sched.Request {
	lst := r.lists[oid]
	if lst == nil || lst.len() == 0 {
		return nil
	}
	out := lst.pop()
	if lst.len() == 0 {
		delete(r.lists, oid)
	}
	if len(out) > 0 && r.tracer.Enabled() {
		// Pops of one release share a group ID so the checker can validate
		// the head rule over the whole hand-off set.
		r.handoffSeq++
		for _, q := range out {
			r.tracer.Emit(trace.Event{
				Type: trace.EvHandOff, Tx: q.TxID, Oid: oid,
				Detail: q.Mode.String(), A: r.handoffSeq,
			})
		}
	}
	return out
}

// ExtractQueue implements sched.Policy: ownership is migrating; the queue
// travels with the commit reply to the new owner.
func (r *RTS) ExtractQueue(oid object.ID) []sched.Request {
	r.mu.Lock()
	defer r.mu.Unlock()
	lst := r.lists[oid]
	if lst == nil {
		return nil
	}
	delete(r.lists, oid)
	out := make([]sched.Request, len(lst.entries))
	for i, e := range lst.entries {
		out[i] = e.req
		r.tracer.Emit(trace.Event{Type: trace.EvDequeue, Tx: e.req.TxID, Oid: oid, Detail: "extract"})
	}
	return out
}

// AdoptQueue implements sched.Policy: install a queue received with
// ownership. Existing entries (new requesters that raced ahead) stay,
// behind the adopted ones.
func (r *RTS) AdoptQueue(oid object.ID, reqs []sched.Request) {
	if len(reqs) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	lst := r.lists[oid]
	if lst == nil {
		lst = &requesterList{}
		r.lists[oid] = lst
	}
	adopted := make([]listEntry, 0, len(reqs)+len(lst.entries))
	for i, q := range reqs {
		adopted = append(adopted, listEntry{req: q})
		r.tracer.Emit(trace.Event{
			Type: trace.EvAdopt, Tx: q.TxID, Oid: oid,
			Detail: q.Mode.String(), A: uint64(i),
		})
	}
	lst.entries = append(adopted, lst.entries...)
}

// RetryDelay implements sched.Policy.
func (r *RTS) RetryDelay(int, string) time.Duration { return r.opts.RetryDelay }

// QueueDepth implements sched.QueueDepther: the total number of parked
// requesters across every object's list — the scheduler-side component of
// the stability driver's queue-depth time series.
func (r *RTS) QueueDepth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, lst := range r.lists {
		total += lst.len()
	}
	return total
}

// QueueLen reports the current queue length for oid (for tests/metrics).
func (r *RTS) QueueLen(oid object.ID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if lst := r.lists[oid]; lst != nil {
		return lst.len()
	}
	return 0
}

// requesterList is the paper's Requester_List: the queue of enqueued
// requesters for one object plus their recorded contention levels. bk —
// the accumulated backoff (Algorithm 3's static bks) — is derived from the
// expected remaining execution times of the queued entries so that dedup
// and pops keep it consistent.
type requesterList struct {
	entries []listEntry
}

type listEntry struct {
	req        sched.Request
	contention int
}

func (l *requesterList) len() int { return len(l.entries) }

func (l *requesterList) bk() time.Duration {
	var sum time.Duration
	for _, e := range l.entries {
		sum += e.req.ExpectedRemaining
	}
	return sum
}

func (l *requesterList) add(req sched.Request, contention int) {
	l.entries = append(l.entries, listEntry{req: req, contention: contention})
}

// removeDuplicate drops a stale entry from the same node and transaction
// (paper: "the duplicated transaction will be removed from a queue"). It
// reports whether an entry was actually removed.
func (l *requesterList) removeDuplicate(node transport.NodeID, txid uint64) bool {
	for i, e := range l.entries {
		if e.req.Node == node && e.req.TxID == txid {
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			return true
		}
	}
	return false
}

// pop removes and returns the next hand-off group: the head write
// requester alone, or every queued read requester when a read is at the
// head.
func (l *requesterList) pop() []sched.Request {
	if len(l.entries) == 0 {
		return nil
	}
	if l.entries[0].req.Mode == sched.Write {
		head := l.entries[0].req
		l.entries = l.entries[1:]
		return []sched.Request{head}
	}
	// Reads are compatible: release all of them at once.
	var reads []sched.Request
	var rest []listEntry
	for _, e := range l.entries {
		if e.req.Mode == sched.Read {
			reads = append(reads, e.req)
		} else {
			rest = append(rest, e)
		}
	}
	l.entries = rest
	return reads
}
