package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dstm/internal/sched"
)

// Property: under any interleaving of conflicts, releases, declines and
// extractions, (a) the queue length never exceeds the cap, (b) every
// enqueue decision carries a positive backoff, and (c) backoffs reported to
// consecutive enqueuers of one object never decrease between releases
// (bk only accumulates).
func TestRTSQueueInvariantsProperty(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		r := New(Options{CLThreshold: 6, MaxQueue: 4})
		rng := rand.New(rand.NewSource(seed))
		lastBackoff := time.Duration(0)
		for i, op := range opsRaw {
			switch op % 4 {
			case 0, 1: // conflict
				req := mkReq("p", uint64(i+1), int32(rng.Intn(5)), sched.Write,
					time.Duration(1+rng.Intn(1000))*time.Millisecond,
					time.Duration(1+rng.Intn(10))*time.Millisecond,
					rng.Intn(3))
				d := r.OnConflict(req)
				if r.QueueLen("obj/p") > 4 {
					return false
				}
				if d.Enqueue {
					if d.Backoff <= 0 {
						return false
					}
					if d.Backoff < lastBackoff {
						return false
					}
					lastBackoff = d.Backoff
				}
			case 2: // release
				r.OnRelease("obj/p")
				lastBackoff = 0
			case 3: // decline
				r.OnDecline("obj/p")
				lastBackoff = 0
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ExtractQueue + AdoptQueue on a fresh RTS preserves order and
// length exactly.
func TestRTSQueueMigrationProperty(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%8) + 1
		r := New(Options{CLThreshold: 1 << 20, MaxQueue: 64})
		for i := 0; i < count; i++ {
			d := r.OnConflict(mkReq("m", uint64(i+1), int32(i), sched.Write,
				time.Hour, time.Millisecond, 0))
			if !d.Enqueue {
				return false
			}
		}
		q := r.ExtractQueue("obj/m")
		if len(q) != count {
			return false
		}
		r2 := New(Options{CLThreshold: 1 << 20})
		r2.AdoptQueue("obj/m", q)
		if r2.QueueLen("obj/m") != count {
			return false
		}
		for i := 0; i < count; i++ {
			out := r2.OnRelease("obj/m")
			if len(out) != 1 || out[0].TxID != uint64(i+1) {
				return false
			}
		}
		return r2.QueueLen("obj/m") == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a pop with reads at the head returns every queued read and no
// writes; the remaining queue holds only the writes, in order.
func TestRTSReadBroadcastProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		if len(pattern) == 0 || len(pattern) > 32 {
			return true
		}
		r := New(Options{CLThreshold: 1 << 20, MaxQueue: 64})
		reads, writes := 0, 0
		for i, isRead := range pattern {
			mode := sched.Write
			if isRead {
				mode = sched.Read
				reads++
			} else {
				writes++
			}
			if d := r.OnConflict(mkReq("b", uint64(i+1), int32(i), mode,
				time.Hour, time.Millisecond, 0)); !d.Enqueue {
				return false
			}
		}
		out := r.OnRelease("obj/b")
		if pattern[0] {
			// Read at head: all reads pop at once.
			if len(out) != reads {
				return false
			}
			for _, q := range out {
				if q.Mode != sched.Read {
					return false
				}
			}
			return r.QueueLen("obj/b") == writes
		}
		// Write at head: exactly one write pops.
		return len(out) == 1 && out[0].Mode == sched.Write &&
			r.QueueLen("obj/b") == len(pattern)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
