package stm

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dstm/internal/cluster"
	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

func init() {
	// Values crossing the TCP transport must be gob-registered.
	object.Register(&box{})
	object.Register(&pair{})
}

// newTCPCluster builds n runtimes over real TCP on loopback.
func newTCPCluster(t *testing.T, n int) []*Runtime {
	t.Helper()
	nodes := make([]*transport.TCPNode, n)
	peers := make(map[transport.NodeID]string, n)
	for i := 0; i < n; i++ {
		tn, err := transport.NewTCPNode(transport.NodeID(i), "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = tn
		peers[transport.NodeID(i)] = tn.Addr()
	}
	rts := make([]*Runtime, n)
	for i, tn := range nodes {
		tn.SetPeers(peers)
		ep := cluster.NewEndpoint(tn, &vclock.Clock{})
		rts[i] = NewRuntime(ep, n, sched.NewTFA(), nil)
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.Close()
		}
	})
	return rts
}

// TestTCPEndToEnd runs the full stack — directory, retrieval, nesting,
// commit-time migration — over real sockets.
func TestTCPEndToEnd(t *testing.T) {
	rts := newTCPCluster(t, 3)
	ctx := context.Background()

	for i := 0; i < 6; i++ {
		oid := object.ID(fmt.Sprintf("acct/%d", i))
		if err := rts[i%3].CreateRoot(ctx, oid, &box{N: 100}); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent nested transfers from every node.
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(rt *Runtime, n int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				from := object.ID(fmt.Sprintf("acct/%d", (n+j)%6))
				to := object.ID(fmt.Sprintf("acct/%d", (n+j+3)%6))
				err := rt.Atomic(ctx, "xfer", func(tx *Txn) error {
					return tx.Atomic(ctx, "move", func(c *Txn) error {
						if err := c.Update(ctx, from, func(v object.Value) object.Value {
							v.(*box).N -= 3
							return v
						}); err != nil {
							return err
						}
						return c.Update(ctx, to, func(v object.Value) object.Value {
							v.(*box).N += 3
							return v
						})
					})
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(rts[n], n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var total int64
	err := rts[1].Atomic(ctx, "audit", func(tx *Txn) error {
		total = 0
		for i := 0; i < 6; i++ {
			v, err := tx.Read(ctx, object.ID(fmt.Sprintf("acct/%d", i)))
			if err != nil {
				return err
			}
			total += v.(*box).N
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 600 {
		t.Fatalf("total = %d over TCP, want 600", total)
	}
}
