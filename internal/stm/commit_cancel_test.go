package stm

import (
	"context"
	"errors"
	"testing"
	"time"

	"dstm/internal/transport"
)

// TestCancelledCommitReleasesLocks reproduces the orphaned-lock hazard: a
// transaction whose context dies while it is acquiring its write set must
// still release the locks it already took (on a detached context).
// Before the fix, a harness shutdown mid-commit left objects locked
// forever and every later reader was denied indefinitely.
func TestCancelledCommitReleasesLocks(t *testing.T) {
	net := transport.NewNetwork(transport.ZeroLatency{})
	defer net.Close()
	tc := &testCluster{net: net}
	for i := 0; i < 2; i++ {
		tc.rts = append(tc.rts, newRuntimeOn(net, i, 2))
	}

	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "a", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tc.rts[0].CreateRoot(ctx, "b", &box{N: 2}); err != nil {
		t.Fatal(err)
	}

	// Black-hole acquire-batch REPLIES: the owner locks "a" and "b", but
	// the committer never learns it and stalls until its context dies. Its
	// conservative release (issued on a detached context) must then free
	// the whole batch.
	net.SetInterceptor(func(m *transport.Message) bool {
		return !(m.Kind == KindAcquireBatch && m.IsReply)
	})

	txCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	err := tc.rts[1].Atomic(txCtx, "w", func(tx *Txn) error {
		if err := tx.Write(txCtx, "a", &box{N: 10}); err != nil {
			return err
		}
		return tx.Write(txCtx, "b", &box{N: 20})
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	net.SetInterceptor(nil)

	// The locks on "a" and "b" must have been released despite the dead
	// context.
	deadline := time.Now().Add(2 * time.Second)
	for tc.rts[0].Store().Locked("a") || tc.rts[0].Store().Locked("b") {
		if time.Now().After(deadline) {
			t.Fatal("locks orphaned after cancelled commit")
		}
		time.Sleep(time.Millisecond)
	}

	// And the cluster is fully usable again.
	err = tc.rts[0].Atomic(ctx, "w2", func(tx *Txn) error {
		if err := tx.Write(ctx, "a", &box{N: 100}); err != nil {
			return err
		}
		return tx.Write(ctx, "b", &box{N: 200})
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b int64
	err = tc.rts[1].Atomic(ctx, "r", func(tx *Txn) error {
		va, err := tx.Read(ctx, "a")
		if err != nil {
			return err
		}
		vb, err := tx.Read(ctx, "b")
		if err != nil {
			return err
		}
		a, b = va.(*box).N, vb.(*box).N
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != 100 || b != 200 {
		t.Fatalf("a=%d b=%d, want 100/200 (aborted tx leaked: %d/%d)", a, b, a, b)
	}
}
