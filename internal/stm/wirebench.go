// Codec micro-benchmark helpers for `rtsbench -experiment wire`. They live
// in package stm (not a _test file) so the benchmark binary can measure the
// real registered codecs, and avoid importing testing into library code by
// measuring with runtime.ReadMemStats directly.
package stm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime"
	"time"

	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/wire"
)

// benchVal is a minimal object value with a registered codec, used by the
// codec benchmark: the real application values live above stm in the
// import graph and would cycle.
type benchVal struct{ N int64 }

// Copy implements object.Value.
func (v *benchVal) Copy() object.Value { c := *v; return &c }

// wireIDBenchVal sits just below the application-value range.
const wireIDBenchVal wire.ID = 99

func init() {
	object.Register(&benchVal{})
	wire.Register(wireIDBenchVal, &benchVal{},
		func(b []byte, v any) ([]byte, error) {
			return wire.AppendVarint(b, v.(*benchVal).N), nil
		},
		func(r *wire.Reader, prev any) any {
			v, _ := prev.(*benchVal)
			if v == nil {
				v = new(benchVal)
			}
			v.N = r.Varint()
			return v
		})
}

// CodecBenchRow is one payload type's codec measurement.
type CodecBenchRow struct {
	Payload        string  `json:"payload"`
	BinaryBytes    int     `json:"binary_bytes"`
	GobBytes       int     `json:"gob_bytes"` // steady-state stream size
	EncNsPerOp     float64 `json:"enc_ns_per_op"`
	EncAllocsPerOp float64 `json:"enc_allocs_per_op"`
	DecNsPerOp     float64 `json:"dec_ns_per_op"`
	DecAllocsPerOp float64 `json:"dec_allocs_per_op"`
	GobNsPerOp     float64 `json:"gob_ns_per_op"` // encode+decode, persistent stream
}

// measure times iters calls of f and reports ns/op and mallocs/op.
func measure(iters int, f func()) (nsPerOp, allocsPerOp float64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(dur.Nanoseconds()) / float64(iters),
		float64(m1.Mallocs-m0.Mallocs) / float64(iters)
}

// benchOids returns n recurring object IDs shaped like real ones.
func benchOids(n int) []object.ID {
	oids := make([]object.ID, n)
	for i := range oids {
		oids[i] = object.ID(fmt.Sprintf("bank/acct/n3/%d", i))
	}
	return oids
}

// wireBenchCases returns the hot commit-pipeline payloads with encode and
// decode-in-place closures over the registered codec methods.
func wireBenchCases() []struct {
	name string
	val  any
	enc  func(b []byte) ([]byte, error)
	dec  func(r *wire.Reader)
} {
	oids := benchOids(8)
	ver := object.Version{Clock: 41, Node: 3}

	retReq := retrieveReq{Oid: oids[0], TxID: 77, Mode: sched.Write, MyCL: 2,
		Elapsed: 120 * time.Microsecond, Remain: 340 * time.Microsecond}
	retResp := retrieveResp{Status: retrieveOK, Value: &benchVal{N: 1000},
		Version: ver, RemoteCL: 3, OwnerClock: 42}

	acq := acquireBatchReq{TxID: 77}
	chk := checkBatchReq{TxID: 77}
	for _, oid := range oids {
		acq.Entries = append(acq.Entries, verEntry{Oid: oid, Ver: ver})
		chk.Entries = append(chk.Entries, verEntry{Oid: oid, Ver: ver})
	}
	com := commitObjBatchReq{TxID: 77, NewVer: object.Version{Clock: 42, Node: 3}, NewOwner: 3}
	for _, oid := range oids[:4] {
		com.Entries = append(com.Entries, commitObjBatchEntry{Oid: oid, NewValue: &benchVal{N: 900}})
	}
	comResp := commitObjBatchResp{Results: make([]commitObjBatchResult, 4)}
	comResp.Results[1].Queue = []sched.Request{{Oid: oids[1], TxID: 78, Node: 5, Mode: sched.Write,
		MyCL: 1, Elapsed: time.Millisecond, ExpectedRemaining: 2 * time.Millisecond}}

	var decRetReq retrieveReq
	var decRetResp retrieveResp
	var decAcq acquireBatchReq
	var decChk checkBatchReq
	var decCom commitObjBatchReq
	var decComResp commitObjBatchResp

	return []struct {
		name string
		val  any
		enc  func(b []byte) ([]byte, error)
		dec  func(r *wire.Reader)
	}{
		{"retrieveReq", retReq,
			func(b []byte) ([]byte, error) { return retReq.appendWire(b), nil },
			func(r *wire.Reader) { decRetReq.decodeWire(r) }},
		{"retrieveResp", retResp,
			func(b []byte) ([]byte, error) { return retResp.appendWire(b) },
			func(r *wire.Reader) { decRetResp.decodeWire(r) }},
		{"acquireBatchReq8", acq,
			func(b []byte) ([]byte, error) { return acq.appendWire(b), nil },
			func(r *wire.Reader) { decAcq.decodeWire(r) }},
		{"checkBatchReq8", chk,
			func(b []byte) ([]byte, error) { return chk.appendWire(b), nil },
			func(r *wire.Reader) { decChk.decodeWire(r) }},
		{"commitObjBatchReq4", com,
			func(b []byte) ([]byte, error) { return com.appendWire(b) },
			func(r *wire.Reader) { decCom.decodeWire(r) }},
		{"commitObjBatchResp4", comResp,
			func(b []byte) ([]byte, error) { return comResp.appendWire(b), nil },
			func(r *wire.Reader) { decComResp.decodeWire(r) }},
	}
}

// WireCodecBench measures the binary codec against gob for the hot commit
// pipeline payloads. iters <= 0 uses a default suitable for rtsbench.
func WireCodecBench(iters int) []CodecBenchRow {
	if iters <= 0 {
		iters = 20000
	}
	var rows []CodecBenchRow
	for _, c := range wireBenchCases() {
		row := CodecBenchRow{Payload: c.name}

		buf := make([]byte, 0, 1024)
		enc, err := c.enc(buf)
		if err != nil {
			panic(err) // registered codecs cannot fail on registered values
		}
		row.BinaryBytes = len(enc)

		cc := c
		row.EncNsPerOp, row.EncAllocsPerOp = measure(iters, func() {
			if _, err := cc.enc(buf[:0]); err != nil {
				panic(err)
			}
		})

		r := wire.NewReader(nil)
		r.Reset(enc)
		cc.dec(r) // warm: populate reusable slices and the intern table
		if err := r.Err(); err != nil {
			panic(err)
		}
		row.DecNsPerOp, row.DecAllocsPerOp = measure(iters, func() {
			r.Reset(enc)
			cc.dec(r)
		})

		// Gob baseline: persistent stream (type info amortised, as on a
		// long-lived connection).
		var gb bytes.Buffer
		genc := gob.NewEncoder(&gb)
		gdec := gob.NewDecoder(&gb)
		var gout any
		roundTrip := func() {
			v := cc.val
			if err := genc.Encode(&v); err != nil {
				panic(err)
			}
			if err := gdec.Decode(&gout); err != nil {
				panic(err)
			}
		}
		roundTrip() // warm: ships type descriptors
		pre := gb.Len()
		if err := genc.Encode(&cc.val); err != nil {
			panic(err)
		}
		row.GobBytes = gb.Len() - pre
		if err := gdec.Decode(&gout); err != nil {
			panic(err)
		}
		row.GobNsPerOp, _ = measure(iters/4+1, roundTrip)

		rows = append(rows, row)
	}
	return rows
}

// WirePumpPayload returns a representative commit-pipeline payload (an
// 8-entry acquire batch) for transport-level pump benchmarks.
func WirePumpPayload() any {
	oids := benchOids(8)
	q := acquireBatchReq{TxID: 77}
	for _, oid := range oids {
		q.Entries = append(q.Entries, verEntry{Oid: oid, Ver: object.Version{Clock: 41, Node: 3}})
	}
	return q
}
