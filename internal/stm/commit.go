package stm

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"dstm/internal/cluster"
	"dstm/internal/object"
	"dstm/internal/transport"
)

// commit drives the top-level (root) commit protocol:
//
//  1. commit-lock every written object at its owner (version CAS) — from
//     this moment retrieve requests for those objects conflict and flow
//     through the transactional scheduler;
//  2. validate the read-only set (early validation);
//  3. install created objects (locked) and register them with their homes;
//  4. commit point: tick the local TFA clock, producing the new version;
//  5. publish every written object: update in place when this node already
//     owns it, otherwise migrate ownership here (adopting the old owner's
//     requester queue) and update the home directory;
//  6. hand freshly committed objects to queued requesters (RTS hand-off).
//
// Every phase is owner-grouped: the write and read sets are partitioned by
// owner (IDs kept in global sortIDs order within and across groups) and each
// phase sends ONE batch message per owner, fanned out in parallel through
// cluster.Endpoint.Broadcast. A commit touching k objects spread over m
// owners therefore costs O(m) message rounds instead of O(k) — the
// messages and rounds are counted into Metrics (CommitMsgs/CommitRounds).
//
// Like the paper's model we assume reliable message delivery: a transport
// failure between steps 4 and 5 is surfaced but cannot be rolled back.
var debugCommit = os.Getenv("DSTM_DEBUG_COMMIT") != ""

// ownerGroup is one owner's slice of an owner-partitioned ID set, in
// deterministic order: IDs sorted within the group, groups sorted by owner.
type ownerGroup struct {
	owner transport.NodeID
	oids  []object.ID
}

// groupByOwner partitions oids (already in sortIDs order) by their owner,
// returning groups sorted by owner ID so batch fan-outs are deterministic.
func groupByOwner(oids []object.ID, owners map[object.ID]transport.NodeID) []ownerGroup {
	byOwner := make(map[transport.NodeID][]object.ID)
	for _, oid := range oids {
		byOwner[owners[oid]] = append(byOwner[owners[oid]], oid)
	}
	groups := make([]ownerGroup, 0, len(byOwner))
	for o, ids := range byOwner {
		groups = append(groups, ownerGroup{owner: o, oids: ids})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].owner < groups[j].owner })
	return groups
}

// commitMeter tallies the protocol messages and parallel waves one commit
// pipeline run costs; flushed into Metrics only when the commit succeeds.
type commitMeter struct {
	msgs   uint64
	rounds uint64
}

// wave records one parallel fan-out of n messages. A no-op when n is 0
// (fully local phases cost nothing) or on a nil meter (validation reused
// outside the commit pipeline).
func (cm *commitMeter) wave(n int) {
	if cm == nil || n == 0 {
		return
	}
	cm.msgs += uint64(n)
	cm.rounds++
}

func (tx *Txn) commit(ctx context.Context) error {
	if tx.parent != nil {
		panic("stm: commit called on a nested transaction")
	}
	rt := tx.rt

	var writes, reads, creates []object.ID
	for oid, e := range tx.entries {
		switch {
		case e.created:
			creates = append(creates, oid)
		case e.dirty:
			writes = append(writes, oid)
		default:
			reads = append(reads, oid)
		}
	}
	// Read-only transactions commit without further validation: TFA's
	// forwarding kept their snapshot consistent as of tx.start, and an
	// AtomicRO chain that stayed read-only was served consistent at its
	// pinned snapshot clock. Either way the commit costs zero messages;
	// the attempt's data-path read RPCs are charged to the read-path
	// counters the readscale experiment compares.
	if len(writes) == 0 && len(creates) == 0 {
		rt.metrics.readOnlyCommits.Add(1)
		rt.metrics.readMsgs.Add(tx.readRPCs)
		return nil
	}
	sortIDs(writes)
	sortIDs(reads)
	sortIDs(creates)

	var meter commitMeter

	// Phase 1: lock the write set at the owners, one batch per owner.
	//
	// Lock release and post-commit publishing must complete even when the
	// transaction's own context has just been cancelled — otherwise a
	// worker shut down mid-commit leaves orphaned commit locks (or a
	// half-published write set) behind. Run them on a detached context.
	locked := make(map[object.ID]transport.NodeID, len(writes))
	abortUnlock := func() { tx.releaseLocks(detach(ctx), locked) }

	if err := tx.acquireAll(ctx, writes, locked, &meter); err != nil {
		abortUnlock()
		return err
	}

	// Phase 2: early validation of the read set, one batch per owner.
	if err := tx.validateMany(ctx, reads, &meter); err != nil {
		abortUnlock()
		return err
	}

	// Phase 3: install creations locked, then register them, one batch per
	// home. Bail out on a cancelled context before the registrations; then
	// run them detached so cancellation cannot leave a subset registered.
	if len(creates) > 0 {
		if err := ctx.Err(); err != nil {
			abortUnlock()
			return err
		}
		for _, oid := range creates {
			e := tx.entries[oid]
			rt.store.InstallLocked(oid, e.val.Copy(), object.Version{}, tx.lockID)
		}
		msgs, err := rt.locator.RegisterBatchTx(detach(ctx), creates, rt.Self(), tx.lockID)
		meter.wave(msgs)
		if err != nil {
			// ID collision or directory failure: roll the creations back.
			// Registration of the non-colliding entries is harmless — the
			// batch is tagged with tx.lockID, so a retried attempt of the
			// same transaction re-registers them idempotently and a
			// different creator's genuine collision still surfaces.
			for _, oid := range creates {
				_ = rt.store.Remove(oid, tx.lockID)
			}
			abortUnlock()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("stm: create: %w", err)
		}
	}

	// Phase 4: commit point.
	newVer := object.Version{Clock: rt.clock.Tick(), Node: int32(rt.Self())}

	// Phase 5+6: publish writes and serve queued requesters. Past the
	// commit point cancellation must not interrupt publication.
	if err := tx.publishAll(detach(ctx), writes, locked, newVer, &meter); err != nil {
		return err
	}
	for _, oid := range creates {
		e := tx.entries[oid]
		if err := rt.store.UpdateCommitted(oid, e.val.Copy(), newVer, tx.lockID); err != nil {
			return err
		}
		rt.serveQueue(oid, rt.policy.OnRelease(oid))
	}

	rt.metrics.commitMsgs.Add(meter.msgs)
	rt.metrics.commitRounds.Add(meter.rounds)
	rt.stats.RecordCommit(tx.name, time.Since(tx.began))
	return nil
}

// acquireAll commit-locks the write set, one atomic batch per owner, fanned
// out in parallel. Owners apply their batch all-or-nothing, so a batch that
// comes back unapplied left NO locks at that owner; only applied batches
// (and calls whose replies were lost, conservatively) are recorded in
// locked for the abort path to release. Stale owner hints are chased in
// batches too: a "not owner" entry rolls its whole group back, the hint is
// invalidated, and the group's objects re-enter the next wave, hop-bounded.
func (tx *Txn) acquireAll(ctx context.Context, writes []object.ID, locked map[object.ID]transport.NodeID, meter *commitMeter) error {
	if len(writes) == 0 {
		return nil
	}
	rt := tx.rt
	pending := writes
	for hop := 0; hop < maxOwnerHops && len(pending) > 0; hop++ {
		owners, msgs, err := rt.locator.LocateBatch(ctx, pending)
		meter.wave(msgs)
		if err != nil {
			return tx.convertErr(ctx, err, AbortLockFailed)
		}
		groups := groupByOwner(pending, owners)
		calls := make([]cluster.Outcall, len(groups))
		for i, g := range groups {
			req := acquireBatchReq{TxID: tx.lockID, Entries: make([]verEntry, len(g.oids))}
			for j, oid := range g.oids {
				req.Entries[j] = verEntry{Oid: oid, Ver: tx.entries[oid].ver}
			}
			calls[i] = cluster.Outcall{To: g.owner, Kind: KindAcquireBatch, Payload: req}
		}
		results := rt.ep.Broadcast(ctx, calls)
		meter.wave(len(calls))

		var firstErr error
		stale, busy := false, false
		var next []object.ID
		for gi, res := range results {
			g := groups[gi]
			if res.Err != nil {
				// The reply was lost: the batch may still have been applied
				// at the owner, so the abort path must conservatively
				// release the whole group there (the store's refusal
				// markers cover release-before-acquire races).
				for _, oid := range g.oids {
					locked[oid] = g.owner
				}
				if debugCommit {
					fmt.Printf("DBG acquire-batch-err tx=%x owner=%d oids=%v err=%v\n", tx.lockID, g.owner, g.oids, res.Err)
				}
				if firstErr == nil {
					firstErr = res.Err
				}
				continue
			}
			resp, ok := res.Body.(acquireBatchResp)
			if !ok || len(resp.Results) != len(g.oids) {
				if firstErr == nil {
					firstErr = fmt.Errorf("stm: bad acquire batch reply %T", res.Body)
				}
				continue
			}
			if resp.Applied {
				for _, oid := range g.oids {
					locked[oid] = g.owner
				}
				continue
			}
			// Unapplied: no lock was taken at this owner. Classify the
			// per-entry refusals; pure not-owner groups chase the hint.
			notOwnerOnly := true
			for i, r := range resp.Results {
				switch object.LockResult(r) {
				case object.LockOK:
				case object.LockStale:
					stale, notOwnerOnly = true, false
					// A stale write-set version may have come from the replica
					// cache: evict it or every retry re-reads the same stale
					// copy and aborts again.
					rt.replica.invalidate(g.oids[i], rt.metrics)
				case object.LockNotOwner:
					rt.locator.InvalidateHint(g.oids[i])
					rt.replica.invalidate(g.oids[i], rt.metrics)
				default: // LockBusy
					busy, notOwnerOnly = true, false
				}
			}
			if notOwnerOnly {
				// The atomic batch rolled back because of its not-owner
				// entries, so the WHOLE group (including entries that would
				// have locked) must retry against fresh owners.
				next = append(next, g.oids...)
			}
		}
		switch {
		case firstErr != nil:
			return tx.convertErr(ctx, firstErr, AbortLockFailed)
		case stale:
			return &abortError{target: tx, cause: AbortValidation}
		case busy:
			return &abortError{target: tx, cause: AbortLockFailed}
		}
		sortIDs(next)
		pending = next
	}
	if len(pending) > 0 {
		// The objects moved more times than we are willing to chase.
		return &abortError{target: tx, cause: AbortLockFailed}
	}
	return nil
}

// releaseLocks batches unlock requests per owner after a failed commit.
func (tx *Txn) releaseLocks(ctx context.Context, locked map[object.ID]transport.NodeID) {
	byOwner := make(map[transport.NodeID][]object.ID)
	for oid, owner := range locked {
		byOwner[owner] = append(byOwner[owner], oid)
	}
	calls := make([]cluster.Outcall, 0, len(byOwner))
	for owner, oids := range byOwner {
		sortIDs(oids)
		calls = append(calls, cluster.Outcall{To: owner, Kind: KindRelease, Payload: releaseReq{Oids: oids, TxID: tx.lockID}})
	}
	// Best effort; the locks die with the runtime if the peer is gone.
	results := tx.rt.ep.Broadcast(ctx, calls)
	if debugCommit {
		for i, res := range results {
			fmt.Printf("DBG release tx=%x call=%+v err=%v\n", tx.lockID, calls[i], res.Err)
		}
	}
}

// publishAll installs the committed write set at its new home (this node),
// one migration batch per remote owner, and hands the freshly committed
// objects to queued requesters. Locally owned writes update in place and
// cost no messages. A failed entry frees its own commit lock so the object
// is not wedged, but its already-published siblings stay published (the
// paper's model assumes reliable delivery past the commit point).
func (tx *Txn) publishAll(ctx context.Context, writes []object.ID, locked map[object.ID]transport.NodeID, newVer object.Version, meter *commitMeter) error {
	if len(writes) == 0 {
		return nil
	}
	rt := tx.rt

	var pubErr error
	groups := groupByOwner(writes, locked)
	var calls []cluster.Outcall
	var remote []ownerGroup
	var local []object.ID
	for _, g := range groups {
		if g.owner == rt.Self() {
			local = append(local, g.oids...)
			continue
		}
		req := commitObjBatchReq{TxID: tx.lockID, NewVer: newVer, NewOwner: rt.Self(), Entries: make([]commitObjBatchEntry, len(g.oids))}
		for j, oid := range g.oids {
			req.Entries[j] = commitObjBatchEntry{Oid: oid, NewValue: tx.entries[oid].val}
		}
		calls = append(calls, cluster.Outcall{To: g.owner, Kind: KindCommitObjectBatch, Payload: req})
		remote = append(remote, g)
	}

	results := rt.ep.Broadcast(ctx, calls)
	meter.wave(len(calls))

	// migrated collects the objects whose old owner surrendered them; their
	// home directories are updated in one more batched wave below.
	var migrated []object.ID
	for gi, res := range results {
		g := remote[gi]
		if res.Err != nil {
			if debugCommit {
				fmt.Printf("DBG publish-batch-err tx=%x owner=%d err=%v\n", tx.lockID, g.owner, res.Err)
			}
			tx.releaseGroup(ctx, g.owner, g.oids)
			if pubErr == nil {
				pubErr = fmt.Errorf("stm: commit migration at node %d: %w", g.owner, res.Err)
			}
			continue
		}
		resp, ok := res.Body.(commitObjBatchResp)
		if !ok || len(resp.Results) != len(g.oids) {
			tx.releaseGroup(ctx, g.owner, g.oids)
			if pubErr == nil {
				pubErr = fmt.Errorf("stm: bad commit batch reply %T", res.Body)
			}
			continue
		}
		for i, r := range resp.Results {
			oid := g.oids[i]
			if r.Err != "" {
				// This entry's migration failed at the owner; at least free
				// its lock so the object is not wedged.
				tx.releaseGroup(ctx, g.owner, []object.ID{oid})
				if pubErr == nil {
					pubErr = fmt.Errorf("stm: commit migration of %q: %s", oid, r.Err)
				}
				continue
			}
			rt.store.Install(oid, tx.entries[oid].val.Copy(), newVer)
			rt.policy.AdoptQueue(oid, r.Queue)
			migrated = append(migrated, oid)
		}
	}

	if len(migrated) > 0 {
		msgs, err := rt.locator.UpdateOwnerBatch(ctx, migrated, rt.Self())
		meter.wave(msgs)
		if err != nil && pubErr == nil {
			pubErr = fmt.Errorf("stm: ownership update: %w", err)
		}
		if err == nil {
			for _, oid := range migrated {
				rt.serveQueue(oid, rt.policy.OnRelease(oid))
			}
		}
	}

	for _, oid := range local {
		if err := rt.store.UpdateCommitted(oid, tx.entries[oid].val.Copy(), newVer, tx.lockID); err != nil {
			if pubErr == nil {
				pubErr = err
			}
			continue
		}
		rt.serveQueue(oid, rt.policy.OnRelease(oid))
	}
	return pubErr
}

// releaseGroup best-effort frees a slice of one owner's commit locks after
// a publish failure.
func (tx *Txn) releaseGroup(ctx context.Context, owner transport.NodeID, oids []object.ID) {
	m := make(map[object.ID]transport.NodeID, len(oids))
	for _, oid := range oids {
		m[oid] = owner
	}
	tx.releaseLocks(ctx, m)
}

// detach returns a context that survives cancellation of ctx. RPCs issued
// on it still fall under cluster.DefaultCallTimeout, so cleanup cannot hang
// forever.
func detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

func sortIDs(ids []object.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
