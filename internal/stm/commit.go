package stm

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"dstm/internal/object"
	"dstm/internal/transport"
)

// commit drives the top-level (root) commit protocol:
//
//  1. commit-lock every written object at its owner (version CAS) — from
//     this moment retrieve requests for those objects conflict and flow
//     through the transactional scheduler;
//  2. validate the read-only set (early validation);
//  3. install created objects (locked) and register them with their homes;
//  4. commit point: tick the local TFA clock, producing the new version;
//  5. publish every written object: update in place when this node already
//     owns it, otherwise migrate ownership here (adopting the old owner's
//     requester queue) and update the home directory;
//  6. hand freshly committed objects to queued requesters (RTS hand-off).
//
// Like the paper's model we assume reliable message delivery: a transport
// failure between steps 4 and 5 is surfaced but cannot be rolled back.
var debugCommit = os.Getenv("DSTM_DEBUG_COMMIT") != ""

func (tx *Txn) commit(ctx context.Context) error {
	if tx.parent != nil {
		panic("stm: commit called on a nested transaction")
	}
	rt := tx.rt

	var writes, reads, creates []object.ID
	for oid, e := range tx.entries {
		switch {
		case e.created:
			creates = append(creates, oid)
		case e.dirty:
			writes = append(writes, oid)
		default:
			reads = append(reads, oid)
		}
	}
	// Read-only transactions commit without further validation: TFA's
	// forwarding kept their snapshot consistent as of tx.start.
	if len(writes) == 0 && len(creates) == 0 {
		return nil
	}
	sortIDs(writes)
	sortIDs(creates)

	// Phase 1: lock the write set at the owners.
	//
	// Lock release and post-commit publishing must complete even when the
	// transaction's own context has just been cancelled — otherwise a
	// worker shut down mid-commit leaves orphaned commit locks (or a
	// half-published write set) behind. Run them on a detached context.
	locked := make(map[object.ID]transport.NodeID, len(writes))
	abortUnlock := func() { tx.releaseLocks(detach(ctx), locked) }

	// All locks are try-locks, so they can be requested concurrently —
	// this keeps the total validation window (the conflict window the
	// scheduler arbitrates) close to one round trip instead of one per
	// object.
	{
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr error
		stale := false
		busy := false
		for _, oid := range writes {
			wg.Add(1)
			go func(oid object.ID) {
				defer wg.Done()
				e := tx.entries[oid]
				owner, attempted, res, err := tx.acquire(ctx, oid, e.ver)
				mu.Lock()
				defer mu.Unlock()
				if attempted {
					// Track every owner we *attempted* to lock: if the
					// reply was lost (cancellation mid-call), the request
					// may still lock the object at the owner, so the abort
					// path must release it (the store's refusal marker
					// covers release-before-acquire races).
					locked[oid] = owner
				}
				if err != nil {
					if debugCommit {
						fmt.Printf("DBG acquire-err tx=%x oid=%s owner=%d err=%v\n", tx.lockID, oid, owner, err)
					}
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				switch res {
				case object.LockOK:
				case object.LockStale:
					stale = true
				default: // LockBusy, LockNotOwner after hint chasing
					busy = true
				}
			}(oid)
		}
		wg.Wait()
		switch {
		case firstErr != nil:
			abortUnlock()
			return tx.convertErr(ctx, firstErr, AbortLockFailed)
		case stale:
			abortUnlock()
			return &abortError{target: tx, cause: AbortValidation}
		case busy:
			abortUnlock()
			return &abortError{target: tx, cause: AbortLockFailed}
		}
	}

	// Phase 2: early validation of the read set, concurrently.
	if err := tx.validateMany(ctx, reads); err != nil {
		abortUnlock()
		return err
	}

	// Phase 3: install creations locked, then register them. Bail out on a
	// cancelled context before the first registration; afterwards run the
	// registrations detached so cancellation cannot leave a subset of the
	// creations registered.
	if err := ctx.Err(); err != nil {
		abortUnlock()
		return err
	}
	regCtx := detach(ctx)
	for i, oid := range creates {
		e := tx.entries[oid]
		rt.store.InstallLocked(oid, e.val.Copy(), object.Version{}, tx.lockID)
		if err := rt.locator.RegisterTx(regCtx, oid, rt.Self(), tx.lockID); err != nil {
			// ID collision or directory failure: roll the creations back.
			for _, done := range creates[:i+1] {
				_ = rt.store.Remove(done, tx.lockID)
			}
			abortUnlock()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("stm: create %q: %w", oid, err)
		}
	}

	// Phase 4: commit point.
	newVer := object.Version{Clock: rt.clock.Tick(), Node: int32(rt.Self())}

	// Phase 5+6: publish writes and serve queued requesters. Past the
	// commit point cancellation must not interrupt publication.
	pubCtx := detach(ctx)
	{
		var wg sync.WaitGroup
		var mu sync.Mutex
		var pubErr error
		for _, oid := range writes {
			wg.Add(1)
			go func(oid object.ID) {
				defer wg.Done()
				e := tx.entries[oid]
				if err := tx.publish(pubCtx, oid, e.val, newVer, locked[oid]); err != nil {
					if debugCommit {
						fmt.Printf("DBG publish-err tx=%x oid=%s err=%v\n", tx.lockID, oid, err)
					}
					// Already-published objects cannot be unpublished (the
					// paper's model assumes reliable delivery); at least
					// free this object's lock so it is not wedged.
					tx.releaseLocks(pubCtx, map[object.ID]transport.NodeID{oid: locked[oid]})
					mu.Lock()
					if pubErr == nil {
						pubErr = err
					}
					mu.Unlock()
				}
			}(oid)
		}
		wg.Wait()
		if pubErr != nil {
			return pubErr
		}
	}
	for _, oid := range creates {
		e := tx.entries[oid]
		if err := rt.store.UpdateCommitted(oid, e.val.Copy(), newVer, tx.lockID); err != nil {
			return err
		}
		rt.serveQueue(oid, rt.policy.OnRelease(oid))
	}

	rt.stats.RecordCommit(tx.name, time.Since(tx.began))
	return nil
}

// acquire commit-locks one object at its owner, chasing stale hints.
// attempted reports whether a lock request was issued to the returned
// owner — if so, the caller must release it on abort even when err is
// non-nil, because a request whose reply was lost may still have locked
// the object.
func (tx *Txn) acquire(ctx context.Context, oid object.ID, ver object.Version) (owner transport.NodeID, attempted bool, res object.LockResult, err error) {
	rt := tx.rt
	for hop := 0; hop < maxOwnerHops; hop++ {
		owner, err = rt.locator.Locate(ctx, oid)
		if err != nil {
			return owner, attempted, object.LockNotOwner, err
		}
		attempted = true
		body, err := rt.ep.Call(ctx, owner, KindAcquire, acquireReq{Oid: oid, TxID: tx.lockID, Ver: ver})
		if err != nil {
			return owner, attempted, object.LockNotOwner, err
		}
		resp, ok := body.(acquireResp)
		if !ok {
			return owner, attempted, object.LockNotOwner, fmt.Errorf("stm: bad acquire reply %T", body)
		}
		res = object.LockResult(resp.Result)
		if res == object.LockNotOwner {
			// This hop's owner definitively does not hold the object; the
			// next hop's owner is what a conservative release must target.
			attempted = false
			if _, err := rt.locator.Relocate(ctx, oid); err != nil {
				return owner, attempted, res, err
			}
			continue
		}
		return owner, attempted, res, nil
	}
	return owner, false, object.LockNotOwner, nil
}

// releaseLocks batches unlock requests per owner after a failed commit.
func (tx *Txn) releaseLocks(ctx context.Context, locked map[object.ID]transport.NodeID) {
	byOwner := make(map[transport.NodeID][]object.ID)
	for oid, owner := range locked {
		byOwner[owner] = append(byOwner[owner], oid)
	}
	for owner, oids := range byOwner {
		sortIDs(oids)
		// Best effort; the locks die with the runtime if the peer is gone.
		_, err := tx.rt.ep.Call(ctx, owner, KindRelease, releaseReq{Oids: oids, TxID: tx.lockID})
		if debugCommit {
			fmt.Printf("DBG release tx=%x owner=%d oids=%v err=%v\n", tx.lockID, owner, oids, err)
		}
	}
}

// publish installs one committed write at its new home (this node) and
// hands it to queued requesters.
func (tx *Txn) publish(ctx context.Context, oid object.ID, val object.Value, ver object.Version, owner transport.NodeID) error {
	rt := tx.rt
	if owner == rt.Self() {
		if err := rt.store.UpdateCommitted(oid, val.Copy(), ver, tx.lockID); err != nil {
			return err
		}
		rt.serveQueue(oid, rt.policy.OnRelease(oid))
		return nil
	}

	// Ownership migrates: the old owner surrenders the object and its
	// requester queue (paper: "the node invoking the transaction receives
	// Requester_Lists of each committed object").
	body, err := rt.ep.Call(ctx, owner, KindCommitObject, commitObjReq{
		Oid:      oid,
		TxID:     tx.lockID,
		NewVer:   ver,
		NewValue: val,
		NewOwner: rt.Self(),
	})
	if err != nil {
		return fmt.Errorf("stm: commit migration of %q: %w", oid, err)
	}
	resp, ok := body.(commitObjResp)
	if !ok {
		return fmt.Errorf("stm: bad commit reply %T", body)
	}

	rt.store.Install(oid, val.Copy(), ver)
	if err := rt.locator.UpdateOwner(ctx, oid, rt.Self()); err != nil {
		return fmt.Errorf("stm: ownership update of %q: %w", oid, err)
	}
	rt.policy.AdoptQueue(oid, resp.Queue)
	rt.serveQueue(oid, rt.policy.OnRelease(oid))
	return nil
}

// detach returns a context that survives cancellation of ctx. RPCs issued
// on it still fall under cluster.DefaultCallTimeout, so cleanup cannot hang
// forever.
func detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

func sortIDs(ids []object.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
