package stm

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dstm/internal/object"
)

func TestFlatNestingInlinesInnerBlocks(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	rt.SetNesting(FlatNesting)
	if rt.Nesting() != FlatNesting {
		t.Fatal("nesting mode not set")
	}
	ctx := context.Background()
	if err := rt.CreateRoot(ctx, "x", &box{N: 0}); err != nil {
		t.Fatal(err)
	}

	err := rt.Atomic(ctx, "outer", func(tx *Txn) error {
		return tx.Atomic(ctx, "inner", func(c *Txn) error {
			if c != tx {
				return fmt.Errorf("flat nesting must inline: inner txn is a different level")
			}
			return c.Update(ctx, "x", func(v object.Value) object.Value {
				v.(*box).N = 7
				return v
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics().Snapshot()
	if m.NestedCommits != 0 {
		t.Fatalf("flat nesting recorded %d nested commits", m.NestedCommits)
	}
}

// Under flat nesting, an inner conflict aborts and retries the WHOLE
// top-level transaction (the cost closed nesting avoids).
func TestFlatNestingAbortsWholeTransaction(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	rt.SetNesting(FlatNesting)
	ctx := context.Background()

	outerRuns, innerRuns := 0, 0
	err := rt.Atomic(ctx, "outer", func(tx *Txn) error {
		outerRuns++
		return tx.Atomic(ctx, "inner", func(c *Txn) error {
			innerRuns++
			if innerRuns == 1 {
				return &abortError{target: c.root, cause: AbortValidation}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if outerRuns != 2 {
		t.Fatalf("outer ran %d times, want 2 (flat nesting restarts the root)", outerRuns)
	}
}

func TestFlatNestingUserErrorPropagates(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	rt.SetNesting(FlatNesting)
	ctx := context.Background()

	boom := errors.New("boom")
	err := rt.Atomic(ctx, "outer", func(tx *Txn) error {
		return tx.Atomic(ctx, "inner", func(c *Txn) error { return boom })
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestNestingModeString(t *testing.T) {
	if ClosedNesting.String() != "closed" || FlatNesting.String() != "flat" {
		t.Fatalf("mode strings: %q %q", ClosedNesting, FlatNesting)
	}
}
