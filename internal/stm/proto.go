// Package stm implements the TFA (Transactional Forwarding Algorithm)
// D-STM engine with closed nesting, per the HyFlow design the paper builds
// on. See Runtime for the node-side engine and Txn for the transaction API.
package stm

import (
	"time"

	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/transport"
)

// Message kinds 10–29 are reserved for the STM protocol.
const (
	// KindRetrieve is Open_Object's request to an object owner.
	KindRetrieve transport.Kind = 10
	// KindCheckVersion validates one read-set entry at its owner.
	KindCheckVersion transport.Kind = 11
	// KindAcquire commit-locks one write-set object at its owner.
	KindAcquire transport.Kind = 12
	// KindRelease drops commit locks after a failed commit.
	KindRelease transport.Kind = 13
	// KindCommitObject installs the new version and migrates ownership.
	KindCommitObject transport.Kind = 14
	// KindPush hands an object to an enqueued requester (one-way).
	KindPush transport.Kind = 15
	// KindDecline tells an owner the pushed requester is gone (one-way).
	KindDecline transport.Kind = 16
	// KindAcquireBatch commit-locks a whole per-owner slice of the write
	// set in one round trip (owner-grouped commit pipeline).
	KindAcquireBatch transport.Kind = 17
	// KindCheckVersionBatch validates a per-owner slice of read-set
	// entries in one round trip.
	KindCheckVersionBatch transport.Kind = 18
	// KindCommitObjectBatch installs the new versions of a per-owner slice
	// of the write set and migrates their ownership in one round trip.
	KindCommitObjectBatch transport.Kind = 19
	// KindSnapshotRead serves one MVCC snapshot read from an owner's
	// versioned store: a single one-round RPC, no lock, no scheduler
	// entry, no ownership transfer.
	KindSnapshotRead transport.Kind = 20
	// KindSnapshotReadBatch serves a per-owner slice of snapshot reads,
	// all pinned to one snapshot clock, in one round trip.
	KindSnapshotReadBatch transport.Kind = 21
)

// retrieveReq is Open_Object's wire request: object ID, transaction ID, the
// requester's contention level (myCL), and its ETS execution-time stamps
// carried as durations (elapsed = ETS.r−ETS.s, remaining = ETS.c−ETS.r).
type retrieveReq struct {
	Oid     object.ID
	TxID    uint64
	Mode    sched.Mode
	MyCL    int
	Elapsed time.Duration
	Remain  time.Duration
}

// retrieveResp answers a retrieve.
type retrieveResp struct {
	// Status disposition; see retrieve* constants.
	Status retrieveStatus
	// Value and Version are set when Status == retrieveOK.
	Value   object.Value
	Version object.Version
	// RemoteCL is the object's local contention level at the owner; the
	// requester accumulates it into its myCL.
	RemoteCL int
	// Backoff is the enqueue wait budget when Status == retrieveEnqueued.
	Backoff time.Duration
	// OwnerClock is the owner's TFA clock, used for forwarding checks.
	OwnerClock uint64
}

type retrieveStatus uint8

const (
	retrieveOK retrieveStatus = iota
	retrieveDenied
	retrieveEnqueued
	retrieveNotOwner
)

// checkReq validates that oid still has version Ver and is not being
// committed by another transaction (TxID identifies the validator, whose
// own locks do not invalidate it).
type checkReq struct {
	Oid  object.ID
	Ver  object.Version
	TxID uint64
}

// checkResp reports validation outcome.
type checkResp struct {
	OK       bool
	NotOwner bool
}

// acquireReq commit-locks oid for TxID if its version is still Ver.
type acquireReq struct {
	Oid  object.ID
	TxID uint64
	Ver  object.Version
}

// acquireResp reports the lock outcome (object.LockResult semantics).
type acquireResp struct {
	Result uint8
}

// releaseReq unlocks objects after a failed commit.
type releaseReq struct {
	Oids []object.ID
	TxID uint64
}

// commitObjReq installs a new committed version at the old owner and
// migrates ownership to the committer. The old owner responds with its
// requester queue so scheduling state travels with the object.
type commitObjReq struct {
	Oid      object.ID
	TxID     uint64
	NewVer   object.Version
	NewValue object.Value
	NewOwner transport.NodeID
}

// commitObjResp acknowledges the migration and hands over the queue.
type commitObjResp struct {
	Queue []sched.Request
}

// ---------------------------------------------------------------------------
// Owner-grouped batch messages. The commit pipeline partitions a
// transaction's write and read sets by owner and sends ONE message per
// owner per phase, so a commit touching k objects on m owners costs O(m)
// rounds instead of O(k). Every batch reply carries per-object results, so
// one failed entry aborts the commit precisely (innermost attribution is
// preserved on the requester side) while its sibling entries roll back.

// verEntry is one (object, expected version) pair of a batch.
type verEntry struct {
	Oid object.ID
	Ver object.Version
}

// acquireBatchReq commit-locks every entry at one owner for TxID. The
// owner applies the batch atomically (all-or-nothing against its store):
// either every entry is locked, or none is.
type acquireBatchReq struct {
	TxID    uint64
	Entries []verEntry
}

// acquireBatchResp reports per-entry lock outcomes, parallel to the
// request entries (object.LockResult values). Applied reports whether the
// locks were actually taken; when false, no entry is locked at the owner —
// the results identify which entries failed and how.
type acquireBatchResp struct {
	Results []uint8
	Applied bool
}

// checkBatchReq validates every entry's version at one owner for the
// committing transaction TxID (whose own locks do not invalidate it).
type checkBatchReq struct {
	TxID    uint64
	Entries []verEntry
}

// checkBatchResult is one entry's validation outcome.
type checkBatchResult struct {
	OK       bool
	NotOwner bool
}

// checkBatchResp carries per-entry outcomes, parallel to the request.
type checkBatchResp struct {
	Results []checkBatchResult
}

// commitObjBatchEntry is one object of a commit-migration batch.
type commitObjBatchEntry struct {
	Oid      object.ID
	NewValue object.Value
}

// commitObjBatchReq installs the new committed versions at the old owner
// and migrates ownership of every entry to NewOwner. All entries share the
// commit-point version NewVer (one commit = one clock tick).
type commitObjBatchReq struct {
	TxID     uint64
	NewVer   object.Version
	NewOwner transport.NodeID
	Entries  []commitObjBatchEntry
}

// commitObjBatchResult is one entry's migration outcome: the requester
// queue surrendered with the object, or a per-entry error (empty = ok) so
// one failed entry does not poison its siblings.
type commitObjBatchResult struct {
	Queue []sched.Request
	Err   string
}

// commitObjBatchResp carries per-entry outcomes, parallel to the request.
type commitObjBatchResp struct {
	Results []commitObjBatchResult
}

// snapReadReq asks oid's owner for the newest version at or below the
// reader's pinned snapshot clock At. AdvanceOK marks a read-only
// transaction's first read: the owner may then serve the current version
// even when its clock exceeds At, and the reader re-pins to it.
type snapReadReq struct {
	Oid       object.ID
	TxID      uint64
	At        uint64
	AdvanceOK bool
}

// Snapshot-read wire statuses (object.SnapStatus semantics).
const (
	snapReadOK uint8 = iota
	snapReadNotOwner
	snapReadRetry
	snapReadTooOld
)

// snapReadResp answers a snapshot read. Value and Version are set when
// Status == snapReadOK; OwnerClock lets the requester's next attempt pin a
// snapshot the owner can serve.
type snapReadResp struct {
	Status     uint8
	Value      object.Value
	Version    object.Version
	OwnerClock uint64
}

// snapReadBatchReq asks one owner for a slice of snapshot reads, all
// pinned to the same snapshot clock At.
type snapReadBatchReq struct {
	TxID uint64
	At   uint64
	Oids []object.ID
}

// snapReadResult is one entry's outcome, parallel to the request Oids.
type snapReadResult struct {
	Status  uint8
	Value   object.Value
	Version object.Version
}

// snapReadBatchResp carries per-entry outcomes, parallel to the request.
type snapReadBatchResp struct {
	Results    []snapReadResult
	OwnerClock uint64
}

// pushMsg hands a committed object to an enqueued requester. Owner is the
// node now owning the object (where its commit lock will be taken next).
type pushMsg struct {
	Oid     object.ID
	TxID    uint64 // destination transaction
	Value   object.Value
	Version object.Version
	Owner   transport.NodeID
	// OwnerClock for forwarding at the receiver.
	OwnerClock uint64
	RemoteCL   int
}

// declineMsg tells the owner that the pushed transaction no longer exists;
// the owner forwards the object to the next queued requester.
type declineMsg struct {
	Oid object.ID
}

func init() {
	transport.RegisterPayload(retrieveReq{})
	transport.RegisterPayload(retrieveResp{})
	transport.RegisterPayload(checkReq{})
	transport.RegisterPayload(checkResp{})
	transport.RegisterPayload(acquireReq{})
	transport.RegisterPayload(acquireResp{})
	transport.RegisterPayload(releaseReq{})
	transport.RegisterPayload(commitObjReq{})
	transport.RegisterPayload(commitObjResp{})
	transport.RegisterPayload(pushMsg{})
	transport.RegisterPayload(declineMsg{})
	transport.RegisterPayload(acquireBatchReq{})
	transport.RegisterPayload(acquireBatchResp{})
	transport.RegisterPayload(checkBatchReq{})
	transport.RegisterPayload(checkBatchResp{})
	transport.RegisterPayload(commitObjBatchReq{})
	transport.RegisterPayload(commitObjBatchResp{})
	transport.RegisterPayload(snapReadReq{})
	transport.RegisterPayload(snapReadResp{})
	transport.RegisterPayload(snapReadBatchReq{})
	transport.RegisterPayload(snapReadBatchResp{})
}
