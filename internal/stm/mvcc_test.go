package stm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/transport"
)

// countingPolicy wraps a scheduler policy and counts the entry points a
// read-only transaction must never reach.
type countingPolicy struct {
	sched.Policy
	observes  atomic.Uint64
	conflicts atomic.Uint64
}

func (p *countingPolicy) ObserveRequest(oid object.ID, txid uint64) int {
	p.observes.Add(1)
	return p.Policy.ObserveRequest(oid, txid)
}

func (p *countingPolicy) OnConflict(req sched.Request) sched.Decision {
	p.conflicts.Add(1)
	return p.Policy.OnConflict(req)
}

func TestAtomicROServesRemoteSnapshot(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "ro/x", &box{N: 5}); err != nil {
		t.Fatal(err)
	}
	var got int64
	err := tc.rts[1].AtomicRO(ctx, "snap", func(tx *Txn) error {
		v, err := tx.Read(ctx, "ro/x")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("read %d, want 5", got)
	}
	// The snapshot read must not migrate ownership.
	if !tc.rts[0].Store().Owns("ro/x") {
		t.Fatal("snapshot read moved ownership")
	}
	m := tc.rts[1].Metrics().Snapshot()
	if m.Commits != 1 || m.ReadOnlyCommits != 1 {
		t.Fatalf("commits=%d roCommits=%d, want 1/1", m.Commits, m.ReadOnlyCommits)
	}
	if m.ReadMsgs != 1 {
		t.Fatalf("remote snapshot read cost %d RPCs, want exactly 1", m.ReadMsgs)
	}
	if own := tc.rts[0].Metrics().Snapshot(); own.SnapReads != 1 {
		t.Fatalf("owner served %d snapshot reads, want 1", own.SnapReads)
	}
}

func TestAtomicROLocalReadCostsNoMessages(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()
	if err := rt.CreateRoot(ctx, "ro/l", &box{N: 3}); err != nil {
		t.Fatal(err)
	}
	err := rt.AtomicRO(ctx, "snap", func(tx *Txn) error {
		_, err := tx.Read(ctx, "ro/l")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics().Snapshot()
	if m.ReadMsgs != 0 {
		t.Fatalf("local snapshot read cost %d RPCs, want 0", m.ReadMsgs)
	}
	if m.ReadOnlyCommits != 1 {
		t.Fatalf("roCommits=%d, want 1", m.ReadOnlyCommits)
	}
}

// TestPureROPhaseTakesNoLocksNoSchedulerEntries is the PR's acceptance
// check: once the write phase quiesces, a burst of read-only transactions
// (local, remote, and batched) completes with ZERO commit-lock
// acquisitions and ZERO scheduler entries anywhere in the cluster.
func TestPureROPhaseTakesNoLocksNoSchedulerEntries(t *testing.T) {
	const nodes = 3
	policies := make([]*countingPolicy, 0, nodes)
	mk := func() sched.Policy {
		p := &countingPolicy{Policy: sched.NewBiInterval(nil, 0)}
		policies = append(policies, p)
		return p
	}
	tc := newTestCluster(t, nodes, nil, mk)
	ctx := context.Background()

	var oids []object.ID
	for i := 0; i < 6; i++ {
		oid := object.ID(fmt.Sprintf("ro/obj%d", i))
		oids = append(oids, oid)
		if err := tc.rts[i%nodes].CreateRoot(ctx, oid, &box{N: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Write phase: build up version history on every object.
	for round := 0; round < 3; round++ {
		for i, oid := range oids {
			err := tc.rts[(i+round)%nodes].Atomic(ctx, "w", func(tx *Txn) error {
				return tx.Update(ctx, oid, func(v object.Value) object.Value {
					v.(*box).N++
					return v
				})
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	// Baseline the counters after the write phase, then hook every store to
	// count lock grants during the read-only phase.
	var lockOps atomic.Uint64
	for _, rt := range tc.rts {
		rt.Store().SetTrace(func(op string, id object.ID, tx, a, b uint64) {
			if op == "lock-ok" {
				lockOps.Add(1)
			}
		})
	}
	var baseObserves, baseConflicts, baseEnqueues uint64
	for i, p := range policies {
		baseObserves += p.observes.Load()
		baseConflicts += p.conflicts.Load()
		baseEnqueues += tc.rts[i].Metrics().Snapshot().Enqueues
	}

	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(rt *Runtime) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				err := rt.AtomicRO(ctx, "ro", func(tx *Txn) error {
					if j%2 == 0 {
						_, err := tx.ReadMany(ctx, oids)
						return err
					}
					for _, oid := range oids {
						if _, err := tx.Read(ctx, oid); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(tc.rts[n])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := lockOps.Load(); got != 0 {
		t.Fatalf("read-only phase acquired %d commit locks, want 0", got)
	}
	var observes, conflicts, enqueues uint64
	for i, p := range policies {
		observes += p.observes.Load()
		conflicts += p.conflicts.Load()
		enqueues += tc.rts[i].Metrics().Snapshot().Enqueues
	}
	if observes != baseObserves || conflicts != baseConflicts || enqueues != baseEnqueues {
		t.Fatalf("read-only phase entered the scheduler: observes %d->%d conflicts %d->%d enqueues %d->%d",
			baseObserves, observes, baseConflicts, conflicts, baseEnqueues, enqueues)
	}
	var roCommits uint64
	for _, rt := range tc.rts {
		roCommits += rt.Metrics().Snapshot().ReadOnlyCommits
	}
	if roCommits < nodes*20 {
		t.Fatalf("roCommits = %d, want >= %d", roCommits, nodes*20)
	}
}

func TestROUpgradeOnWrite(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "up/x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	// A read-only attempt that writes transparently joins the ownership
	// protocol: the snapshot read is validated by version at commit.
	err := tc.rts[1].AtomicRO(ctx, "upgrade", func(tx *Txn) error {
		v, err := tx.Read(ctx, "up/x")
		if err != nil {
			return err
		}
		return tx.Write(ctx, "up/x", &box{N: v.(*box).N + 10})
	})
	if err != nil {
		t.Fatal(err)
	}
	m := tc.rts[1].Metrics().Snapshot()
	if m.ROUpgrades == 0 {
		t.Fatal("upgrade not counted")
	}
	if !tc.rts[1].Store().Owns("up/x") {
		t.Fatal("upgraded write did not migrate ownership")
	}
	var got int64
	if err := tc.rts[1].AtomicRO(ctx, "check", func(tx *Txn) error {
		v, err := tx.Read(ctx, "up/x")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("read %d, want 11", got)
	}
}

// TestROUpgradeStaleSnapshotAborts pins the validation story: a snapshot
// read served from the version chain (old version) must fail commit-time
// validation after the upgrade, and the retry must converge.
func TestROUpgradeStaleSnapshotAborts(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "up/s", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	err := tc.rts[1].AtomicRO(ctx, "race", func(tx *Txn) error {
		attempts++
		v, err := tx.Read(ctx, "up/s")
		if err != nil {
			return err
		}
		if attempts == 1 {
			// Concurrent writer commits AFTER our snapshot read: our read is
			// now stale relative to the ownership protocol we are about to
			// upgrade into.
			if werr := tc.rts[0].Atomic(ctx, "w", func(wtx *Txn) error {
				return wtx.Update(ctx, "up/s", func(v object.Value) object.Value {
					v.(*box).N += 100
					return v
				})
			}); werr != nil {
				return werr
			}
		}
		return tx.Write(ctx, "up/s", &box{N: v.(*box).N + 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Fatalf("stale upgraded snapshot committed on attempt %d, want a validation retry", attempts)
	}
	m := tc.rts[1].Metrics().Snapshot()
	if m.TotalAborts() == 0 {
		t.Fatal("no abort recorded for the stale upgrade")
	}
	var got int64
	if err := tc.rts[0].AtomicRO(ctx, "check", func(tx *Txn) error {
		v, err := tx.Read(ctx, "up/s")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 102 {
		t.Fatalf("final value %d, want 102 (1 + 100 + 1)", got)
	}
}

// TestROSnapshotConsistencyUnderWriters hammers the snapshot guarantee end
// to end: writers keep moving value between two objects (conserving the
// sum) while read-only transactions assert every snapshot they see is
// internally consistent.
func TestROSnapshotConsistencyUnderWriters(t *testing.T) {
	const total = 100
	tc := newTestCluster(t, 3, transport.UniformLatency(50*time.Microsecond), nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "sc/a", &box{N: total}); err != nil {
		t.Fatal(err)
	}
	if err := tc.rts[0].CreateRoot(ctx, "sc/b", &box{N: 0}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var werr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := tc.rts[1].Atomic(ctx, "move", func(tx *Txn) error {
				if err := tx.Update(ctx, "sc/a", func(v object.Value) object.Value {
					v.(*box).N--
					return v
				}); err != nil {
					return err
				}
				return tx.Update(ctx, "sc/b", func(v object.Value) object.Value {
					v.(*box).N++
					return v
				})
			})
			if err != nil {
				werr = err
				return
			}
		}
	}()

	for i := 0; i < 60; i++ {
		var a, b int64
		err := tc.rts[2].AtomicRO(ctx, "audit", func(tx *Txn) error {
			vals, err := tx.ReadMany(ctx, []object.ID{"sc/a", "sc/b"})
			if err != nil {
				return err
			}
			a, b = vals[0].(*box).N, vals[1].(*box).N
			return nil
		})
		if err != nil {
			t.Fatalf("audit %d: %v", i, err)
		}
		if a+b != total {
			t.Fatalf("audit %d saw torn snapshot: a=%d b=%d sum=%d, want %d", i, a, b, a+b, total)
		}
	}
	close(stop)
	wg.Wait()
	if werr != nil {
		t.Fatalf("writer: %v", werr)
	}
}

func TestAtomicReadDispatchesOnRuntimeKnob(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "knob/x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	read := func() {
		t.Helper()
		if err := tc.rts[1].AtomicRead(ctx, "r", func(tx *Txn) error {
			_, err := tx.Read(ctx, "knob/x")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	read() // knob off: ownership path
	if m := tc.rts[0].Metrics().Snapshot(); m.SnapReads != 0 {
		t.Fatalf("knob off but %d snapshot reads served", m.SnapReads)
	}
	tc.rts[1].SetReadOnlyReads(true)
	read() // knob on: MVCC path
	if m := tc.rts[0].Metrics().Snapshot(); m.SnapReads != 1 {
		t.Fatalf("knob on but %d snapshot reads served, want 1", m.SnapReads)
	}
}
