package stm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"dstm/internal/cc"
	"dstm/internal/cluster"
	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/trace"
	"dstm/internal/transport"
)

// abortError unwinds an aborting transaction to the level that must retry.
// Closed nesting: a failure attributed to an inner transaction aborts only
// that inner transaction; a failure attributed to an ancestor aborts the
// ancestor and every (committed or running) transaction nested inside it.
type abortError struct {
	target *Txn
	cause  AbortCause
}

func (e *abortError) Error() string {
	return fmt.Sprintf("stm: transaction aborted (%s)", e.cause)
}

// maxOwnerHops bounds stale-owner-hint chases during a fetch.
const maxOwnerHops = 8

// Txn is a (possibly closed-nested) transaction. Obtain a root transaction
// from Runtime.Atomic and children from Txn.Atomic. A Txn is confined to
// the goroutine executing its atomic block.
type Txn struct {
	rt     *Runtime
	id     uint64 // root transaction ID, shared by all nested levels
	lockID uint64 // per-ATTEMPT identity used for commit locks (root only)
	name   string
	parent *Txn
	root   *Txn

	// Root-only fields (TFA state).
	began    time.Time
	expected time.Duration
	start    uint64 // TFA start clock; advanced by forwarding

	// Root-only MVCC state. ro marks a read-only (snapshot) attempt: reads
	// are served at the pinned snapshot clock snap, no locks or scheduler
	// entries are taken, and commit is a no-op. The first Write flips the
	// chain back to the ownership protocol (see upgrade). roObserved
	// counts adopted snapshot reads (the advance escape hatch is only
	// legal before the first); readRPCs counts the attempt's data-path
	// read messages for the read-path cost metric.
	ro         bool
	snap       uint64
	roObserved int
	readRPCs   uint64

	entries        map[object.ID]*objEntry
	clSum          int // Σ remote CLs of objects fetched at this level
	mergedChildren int // inner commits merged into this level (transitive)
}

// objEntry is one object's transaction-local state: the working copy, the
// version observed at fetch, and write/create flags. inherited marks a
// copy-on-write entry whose version was observed by an ANCESTOR — if it
// turns out stale, the ancestor's snapshot is broken and the ancestor must
// abort, not this level.
type objEntry struct {
	val       object.Value
	ver       object.Version
	dirty     bool
	created   bool
	inherited bool
}

// Atomic runs fn as a top-level transaction, retrying on conflicts until it
// commits, the context is cancelled, or fn returns a non-transactional
// error (which aborts the transaction and is returned as-is).
func (rt *Runtime) Atomic(ctx context.Context, name string, fn func(tx *Txn) error) error {
	return rt.runRoot(ctx, name, fn, false)
}

// AtomicRO runs fn as a read-only top-level transaction on the MVCC
// snapshot path: every read is served at one pinned snapshot clock via a
// single one-round RPC to the owner (or directly from the local store),
// taking no locks, entering no scheduler queue, and committing without a
// validation round. If fn writes, the attempt transparently upgrades to
// the ordinary ownership protocol: the snapshot reads become ordinary
// read-set entries validated by version at commit.
func (rt *Runtime) AtomicRO(ctx context.Context, name string, fn func(tx *Txn) error) error {
	return rt.runRoot(ctx, name, fn, true)
}

// AtomicRead dispatches to AtomicRO when the runtime's read-only-reads
// switch is on (SetReadOnlyReads) and to Atomic otherwise. Benchmarks call
// it for their pure-read operations so one knob flips a workload between
// the ownership and MVCC read paths.
func (rt *Runtime) AtomicRead(ctx context.Context, name string, fn func(tx *Txn) error) error {
	return rt.runRoot(ctx, name, fn, rt.roReads.Load())
}

// runRoot is the shared retry driver behind Atomic and AtomicRO.
func (rt *Runtime) runRoot(ctx context.Context, name string, fn func(tx *Txn) error, ro bool) error {
	id := rt.nextTxID()
	// ETS.s is the transaction's original start time: it persists across
	// retry attempts, so the "execution time" the scheduler weighs keeps
	// growing while the transaction keeps losing (paper Fig. 3: T4's
	// execution time is |t4 − t1|, measured from its first start).
	began := time.Now()
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		attemptBegan := time.Now()
		tx := &Txn{
			rt:   rt,
			id:   id,
			name: name,
			// Each attempt locks under a fresh identity so a stale lock
			// request from a cancelled attempt can never be confused with
			// (or resurrect over) a newer attempt's locks.
			lockID:   rt.nextTxID(),
			began:    began,
			expected: rt.stats.Expect(name),
			start:    rt.clock.Now(),
			entries:  make(map[object.ID]*objEntry),
			ro:       ro,
		}
		tx.root = tx
		if ro {
			// The snapshot is pinned per attempt; a snapshot abort retries
			// with a fresh (necessarily newer) clock.
			tx.snap = tx.start
			rt.tracer.Emit(trace.Event{Type: trace.EvTxBeginRO, Tx: id, A: uint64(attempt), B: tx.snap})
		} else {
			// B carries the attempt's lock identity so trace checkers can match
			// owner-side lock events (keyed by lockID) to this attempt's fate.
			rt.tracer.Emit(trace.Event{Type: trace.EvTxBegin, Tx: id, A: uint64(attempt), B: tx.lockID})
		}

		err := fn(tx)
		if err == nil {
			err = tx.commit(ctx)
		}
		if err == nil {
			rt.metrics.commits.Add(1)
			rt.metrics.observeOutcome(true, 0, time.Since(attemptBegan))
			rt.tracer.Emit(trace.Event{Type: trace.EvTxCommit, Tx: id})
			rt.feedback(true)
			return nil
		}

		var ae *abortError
		if !errors.As(err, &ae) {
			// Application error: the transaction's effects are discarded
			// and the error surfaces to the caller without retry.
			return err
		}
		rt.metrics.aborts[ae.cause].Add(1)
		rt.metrics.observeOutcome(false, ae.cause, time.Since(attemptBegan))
		rt.tracer.Emit(trace.Event{Type: trace.EvTxAbort, Tx: id, Detail: ae.cause.String()})
		// Every inner transaction that had committed into this root is
		// rolled back with it (Table I's "aborts due to parent abort").
		rt.metrics.nestedParent.Add(uint64(tx.mergedChildren))
		rt.feedback(false)

		if err := ctx.Err(); err != nil {
			return err
		}
		d := rt.policy.RetryDelay(attempt, name)
		if d == 0 && ae.cause == AbortSnapshot {
			// Snapshot aborts sit outside the scheduler (RO transactions
			// never enter its queues, so policies that pace retries by
			// conflict state leave them at zero delay) — and a locked tip on
			// a LOCAL object costs no RPC, so an unpaced retry loop spins
			// hot for the whole lock hold. Pace it ourselves: exponential
			// from 50µs, capped near one commit round.
			d = 50 * time.Microsecond << uint(min(attempt-1, 6))
		}
		if d > 0 {
			if !sleepCtx(ctx, d) {
				return ctx.Err()
			}
		}
	}
}

// Atomic runs fn as a closed-nested inner transaction. The inner
// transaction's effects become part of the parent only when fn returns nil
// and its early validation passes; an inner abort retries just the inner
// transaction. If an enclosing transaction must abort, the error
// propagates (do not swallow errors from Read/Write/Atomic).
//
// fn may run several times: any state it writes outside the transaction
// must be overwrite-style (reset at the top of fn), never accumulative.
func (tx *Txn) Atomic(ctx context.Context, name string, fn func(child *Txn) error) error {
	rt := tx.rt
	if rt.nesting == FlatNesting {
		// Flat nesting: the inner block is inlined into the enclosing
		// transaction — no private sets, no partial abort; any conflict
		// unwinds and restarts the whole top-level transaction.
		return fn(tx)
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		child := &Txn{
			rt:      rt,
			id:      tx.id,
			name:    name,
			parent:  tx,
			root:    tx.root,
			entries: make(map[object.ID]*objEntry),
		}
		rt.tracer.Emit(trace.Event{Type: trace.EvNestBegin, Tx: tx.id, A: uint64(attempt)})
		err := fn(child)
		if err == nil && !child.readOnly() {
			// Early validation (N-TFA): an inner commit validates the
			// inner transaction's own read set immediately, so a stale
			// inner read aborts (and retries) just the inner transaction
			// now instead of killing the whole parent at top-level commit.
			// A still-read-only chain skips it: every entry was served
			// consistent at one snapshot clock by construction, and a
			// validation round is exactly what the MVCC path removes.
			err = child.validateOwn(ctx)
		}
		if err == nil {
			child.mergeIntoParent()
			rt.metrics.nestedCommits.Add(1)
			rt.tracer.Emit(trace.Event{Type: trace.EvNestMerge, Tx: tx.id})
			return nil
		}

		var ae *abortError
		if !errors.As(err, &ae) {
			return err // application error: inner effects discarded
		}
		if ae.target == child {
			// Closed nesting: only the inner transaction aborts; its own
			// committed children are rolled back with it.
			rt.metrics.nestedOwn.Add(1)
			rt.metrics.nestedParent.Add(uint64(child.mergedChildren))
			rt.tracer.Emit(trace.Event{Type: trace.EvNestAbort, Tx: tx.id, Detail: "own"})
			if d := rt.policy.RetryDelay(attempt, name); d > 0 {
				if !sleepCtx(ctx, d) {
					return ctx.Err()
				}
			}
			continue
		}
		// An enclosing transaction aborts: this running child dies with it.
		rt.metrics.nestedParent.Add(uint64(1 + child.mergedChildren))
		rt.tracer.Emit(trace.Event{Type: trace.EvNestAbort, Tx: tx.id, Detail: "parent"})
		return err
	}
}

func (child *Txn) mergeIntoParent() {
	p := child.parent
	for oid, e := range child.entries {
		p.entries[oid] = e
	}
	p.clSum += child.clSum
	p.mergedChildren += 1 + child.mergedChildren
}

// lookup finds oid's entry in this transaction or any ancestor
// (read-your-writes through the nesting chain).
func (tx *Txn) lookup(oid object.ID) (*objEntry, *Txn) {
	for t := tx; t != nil; t = t.parent {
		if e, ok := t.entries[oid]; ok {
			return e, t
		}
	}
	return nil, nil
}

// myCL is the transaction's remote contention level: the sum of the local
// CLs (reported by owners) of every object the transaction chain holds.
func (tx *Txn) myCL() int {
	sum := 0
	for t := tx; t != nil; t = t.parent {
		sum += t.clSum
	}
	return sum
}

// readOnly reports whether the nesting chain is (still) on the MVCC
// snapshot path. The flag lives on the root: an upgrade anywhere in the
// chain flips every level at once.
func (tx *Txn) readOnly() bool { return tx.root.ro }

// upgrade flips a read-only chain onto the ownership protocol after its
// first write. The snapshot reads already adopted stay in the read set
// with their observed versions — commit validates them by version exactly
// like ordinary reads — and the TFA start clock catches up to the pinned
// snapshot so forwarding semantics hold.
func (tx *Txn) upgrade() {
	root := tx.root
	if !root.ro {
		return
	}
	root.ro = false
	if root.snap > root.start {
		root.start = root.snap
	}
	tx.rt.metrics.roUpgrades.Add(1)
	// Announce the attempt's lock identity (EvTxBeginRO carried the snapshot
	// clock instead): the trace checker's batch-atomicity invariant keys
	// owner-side lock events by EvTxBegin.B, and an upgraded attempt is about
	// to take commit locks under root.lockID.
	tx.rt.tracer.Emit(trace.Event{Type: trace.EvTxBegin, Tx: root.id, B: root.lockID, Detail: "upgrade"})
}

// Read returns the transaction's view of oid, fetching it from its owner
// on first access. The returned value is the transaction's working copy:
// do not mutate it — use Write or Update to change the object.
func (tx *Txn) Read(ctx context.Context, oid object.ID) (object.Value, error) {
	if e, _ := tx.lookup(oid); e != nil {
		return e.val, nil
	}
	if tx.readOnly() {
		e, err := tx.snapFetch(ctx, oid)
		if err != nil {
			return nil, err
		}
		return e.val, nil
	}
	if e := tx.replicaProbe(oid); e != nil {
		return e.val, nil
	}
	e, err := tx.fetch(ctx, oid, sched.Read)
	if err != nil {
		return nil, err
	}
	return e.val, nil
}

// replicaProbe serves a read-write transaction's read from the runtime's
// replica cache when enabled and fresh. The cached version is speculative:
// it joins the read set like an ordinary fetch and is validated by version
// at commit (checkVersions), which also evicts it if proven stale.
func (tx *Txn) replicaProbe(oid object.ID) *objEntry {
	rc := tx.rt.replica
	if rc == nil {
		return nil
	}
	val, ver, ok := rc.get(oid, tx.rt.metrics)
	if !ok {
		return nil
	}
	tx.rt.metrics.replicaHits.Add(1)
	e := &objEntry{val: val, ver: ver}
	tx.entries[oid] = e
	return e
}

// ReadMany returns the transaction's view of every oid, resolving cache
// misses in bulk: on the MVCC snapshot path all misses are grouped by
// owner and fetched with one KindSnapshotReadBatch round trip per owner.
// On the ownership path it degrades to sequential Reads. Results are
// parallel to oids.
func (tx *Txn) ReadMany(ctx context.Context, oids []object.ID) ([]object.Value, error) {
	out := make([]object.Value, len(oids))
	if !tx.readOnly() {
		for i, oid := range oids {
			v, err := tx.Read(ctx, oid)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	rt := tx.rt
	root := tx.root
	// Serve what the chain and the local store already have.
	var missIdx []int
	for i, oid := range oids {
		if e, _ := tx.lookup(oid); e != nil {
			out[i] = e.val
			continue
		}
		if rt.store.Owns(oid) {
			val, ver, st := rt.store.SnapshotAt(oid, root.snap, tx.id)
			switch st {
			case object.SnapOK:
				out[i] = tx.adoptSnapshot(oid, val, ver).val
				continue
			case object.SnapRetry, object.SnapTooOld:
				return nil, &abortError{target: root, cause: AbortSnapshot}
			}
			// SnapNotOwner: ownership raced away; fall through to the RPC.
		}
		missIdx = append(missIdx, i)
	}
	for hop := 0; hop < maxOwnerHops && len(missIdx) > 0; hop++ {
		missOids := make([]object.ID, len(missIdx))
		for i, idx := range missIdx {
			missOids[i] = oids[idx]
		}
		owners, _, err := rt.locator.LocateBatch(ctx, missOids)
		if err != nil {
			if errors.Is(err, cc.ErrUnknownObject) {
				return nil, err
			}
			return nil, tx.convertErr(ctx, err, AbortSnapshot)
		}
		byOwner := make(map[transport.NodeID][]int)
		for _, idx := range missIdx {
			byOwner[owners[oids[idx]]] = append(byOwner[owners[oids[idx]]], idx)
		}
		ownerList := make([]transport.NodeID, 0, len(byOwner))
		for o := range byOwner {
			ownerList = append(ownerList, o)
		}
		sort.Slice(ownerList, func(i, j int) bool { return ownerList[i] < ownerList[j] })
		calls := make([]cluster.Outcall, len(ownerList))
		for i, o := range ownerList {
			req := snapReadBatchReq{TxID: tx.id, At: root.snap, Oids: make([]object.ID, len(byOwner[o]))}
			for j, idx := range byOwner[o] {
				req.Oids[j] = oids[idx]
			}
			calls[i] = cluster.Outcall{To: o, Kind: KindSnapshotReadBatch, Payload: req}
		}
		root.readRPCs += uint64(len(calls))
		results := rt.ep.Broadcast(ctx, calls)

		var next []int
		for gi, res := range results {
			group := byOwner[ownerList[gi]]
			if res.Err != nil {
				return nil, tx.convertErr(ctx, res.Err, AbortSnapshot)
			}
			resp, ok := res.Body.(snapReadBatchResp)
			if !ok || len(resp.Results) != len(group) {
				return nil, fmt.Errorf("stm: bad snapshot read batch reply %T", res.Body)
			}
			for i, r := range resp.Results {
				idx := group[i]
				switch r.Status {
				case snapReadOK:
					out[idx] = tx.adoptSnapshot(oids[idx], r.Value, r.Version).val
				case snapReadNotOwner:
					rt.locator.InvalidateHint(oids[idx])
					next = append(next, idx)
				default: // retry / too-old: re-pin on the next attempt
					return nil, &abortError{target: root, cause: AbortSnapshot}
				}
			}
		}
		sort.Ints(next)
		missIdx = next
	}
	if len(missIdx) > 0 {
		return nil, &abortError{target: root, cause: AbortSnapshot}
	}
	return out, nil
}

// Write buffers a new value for oid, fetching the object first if this
// transaction chain has not accessed it yet (the dataflow model moves the
// object to the writer). On a read-only chain the first Write upgrades the
// whole chain to the ownership protocol (see upgrade).
func (tx *Txn) Write(ctx context.Context, oid object.ID, val object.Value) error {
	tx.upgrade()
	if e, holder := tx.lookup(oid); e != nil {
		if holder == tx {
			e.val = val
			e.dirty = true
			return nil
		}
		// Copy-on-write into this nesting level so an abort of this inner
		// transaction leaves the ancestor's view intact.
		tx.entries[oid] = &objEntry{val: val, ver: e.ver, dirty: true, created: e.created, inherited: true}
		return nil
	}
	e, err := tx.fetch(ctx, oid, sched.Write)
	if err != nil {
		return err
	}
	e.val = val
	e.dirty = true
	return nil
}

// Update applies fn to a private copy of the object's current value and
// writes the result back. fn must return the value to store.
func (tx *Txn) Update(ctx context.Context, oid object.ID, fn func(object.Value) object.Value) error {
	cur, err := tx.Read(ctx, oid)
	if err != nil {
		return err
	}
	return tx.Write(ctx, oid, fn(cur.Copy()))
}

// Create buffers a brand-new object. It becomes visible to other
// transactions when the top-level transaction commits. Object IDs must be
// unique cluster-wide; colliding creates surface as a commit error.
func (tx *Txn) Create(oid object.ID, val object.Value) error {
	tx.upgrade()
	if e, _ := tx.lookup(oid); e != nil {
		return fmt.Errorf("stm: create %q: already accessed in this transaction", oid)
	}
	tx.entries[oid] = &objEntry{val: val, dirty: true, created: true}
	return nil
}

// ID returns the root transaction ID shared by the nesting chain.
func (tx *Txn) ID() uint64 { return tx.id }

// convertErr maps infrastructure errors on the hot path to transaction
// aborts (retried), while letting cancellation and shutdown surface as-is.
func (tx *Txn) convertErr(ctx context.Context, err error, cause AbortCause) error {
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	var ae *abortError
	if errors.As(err, &ae) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &abortError{target: tx.root, cause: cause}
}

// fetch implements Open_Object (Algorithm 2): locate the owner, request
// the object with myCL and ETS attached, and either receive it, abort, or
// park for the scheduler-assigned backoff waiting for a hand-off push.
func (tx *Txn) fetch(ctx context.Context, oid object.ID, mode sched.Mode) (*objEntry, error) {
	rt := tx.rt
	root := tx.root
	rt.metrics.retrieves.Add(1)
	rt.tracer.Emit(trace.Event{Type: trace.EvRetrieve, Tx: tx.id, Oid: oid, Detail: mode.String()})

	for hop := 0; hop < maxOwnerHops; hop++ {
		owner, err := rt.locator.Locate(ctx, oid)
		if err != nil {
			if errors.Is(err, cc.ErrUnknownObject) {
				return nil, err // application-level error, not retryable
			}
			// A lookup lost to the network is transient: abort and retry
			// rather than failing the whole Atomic call.
			return nil, tx.convertErr(ctx, err, AbortDenied)
		}

		elapsed := time.Since(root.began)
		remain := root.expected - elapsed
		if remain <= 0 {
			remain = root.expected / 4
			if remain <= 0 {
				remain = 50 * time.Microsecond
			}
		}

		// Register the waiter before the request so a hand-off push can
		// never race past us.
		if mode == sched.Read {
			root.readRPCs++
		}
		ch := rt.registerWaiter(tx.id, oid)
		body, err := rt.ep.Call(ctx, owner, KindRetrieve, retrieveReq{
			Oid:     oid,
			TxID:    tx.id,
			Mode:    mode,
			MyCL:    tx.myCL(),
			Elapsed: elapsed,
			Remain:  remain,
		})
		if err != nil {
			rt.deregisterWaiter(tx.id, oid)
			return nil, tx.convertErr(ctx, err, AbortDenied)
		}
		resp, ok := body.(retrieveResp)
		if !ok {
			rt.deregisterWaiter(tx.id, oid)
			return nil, fmt.Errorf("stm: bad retrieve reply %T", body)
		}

		switch resp.Status {
		case retrieveOK:
			rt.deregisterWaiter(tx.id, oid)
			return tx.adoptFetched(ctx, oid, resp.Value, resp.Version, resp.RemoteCL, resp.OwnerClock, owner)

		case retrieveNotOwner:
			rt.deregisterWaiter(tx.id, oid)
			if _, err := rt.locator.Relocate(ctx, oid); err != nil {
				return nil, tx.convertErr(ctx, err, AbortDenied)
			}
			continue

		case retrieveDenied:
			rt.deregisterWaiter(tx.id, oid)
			return nil, &abortError{target: root, cause: AbortDenied}

		case retrieveEnqueued:
			if resp.Backoff <= 0 {
				rt.deregisterWaiter(tx.id, oid)
				return nil, &abortError{target: root, cause: AbortDenied}
			}
			// Park events are emitted here, at consumption, so they are
			// strictly ordered within the transaction's goroutine (a push
			// can never appear to resolve a park that has not begun).
			rt.tracer.Emit(trace.Event{Type: trace.EvPark, Tx: tx.id, Oid: oid, A: uint64(resp.Backoff)})
			timer := time.NewTimer(resp.Backoff)
			select {
			case msg := <-ch:
				timer.Stop()
				rt.deregisterWaiter(tx.id, oid)
				rt.tracer.Emit(trace.Event{Type: trace.EvPushRecv, Tx: tx.id, Oid: oid})
				rt.locator.NoteOwner(oid, msg.Owner)
				return tx.adoptFetched(ctx, oid, msg.Value, msg.Version, msg.RemoteCL, msg.OwnerClock, msg.Owner)
			case <-timer.C:
				// Backoff expired before the object arrived: the parent
				// aborts, losing its committed children (paper §IV-B).
				rt.deregisterWaiter(tx.id, oid)
				rt.tracer.Emit(trace.Event{Type: trace.EvParkTimeout, Tx: tx.id, Oid: oid})
				return nil, &abortError{target: root, cause: AbortQueueTimeout}
			case <-ctx.Done():
				timer.Stop()
				rt.deregisterWaiter(tx.id, oid)
				rt.tracer.Emit(trace.Event{Type: trace.EvParkCancel, Tx: tx.id, Oid: oid})
				return nil, ctx.Err()
			}

		default:
			rt.deregisterWaiter(tx.id, oid)
			return nil, fmt.Errorf("stm: unknown retrieve status %d", resp.Status)
		}
	}
	return nil, &abortError{target: root, cause: AbortDenied}
}

// adoptFetched records a received object copy at this nesting level after
// the transactional-forwarding check.
func (tx *Txn) adoptFetched(ctx context.Context, oid object.ID, val object.Value, ver object.Version,
	remoteCL int, ownerClock uint64, _ any) (*objEntry, error) {
	if err := tx.forward(ctx, ownerClock); err != nil {
		return nil, err
	}
	tx.rt.tracer.Emit(trace.Event{Type: trace.EvRetrieveOK, Tx: tx.id, Oid: oid, A: ver.Clock})
	if rc := tx.rt.replica; rc != nil {
		rc.put(oid, val.Copy(), ver)
	}
	e := &objEntry{val: val, ver: ver}
	tx.entries[oid] = e
	tx.clSum += remoteCL
	return e, nil
}

// snapFetch serves a read-only transaction's read at the chain's pinned
// snapshot clock: directly from the local store when this node owns the
// object, else with one KindSnapshotRead round trip to the owner. No lock
// is taken, no scheduler queue is entered, and an unservable snapshot
// (chain too short, or a commit racing the tip) aborts the attempt with
// AbortSnapshot so the retry pins a fresh clock.
func (tx *Txn) snapFetch(ctx context.Context, oid object.ID) (*objEntry, error) {
	rt := tx.rt
	root := tx.root
	for hop := 0; hop < maxOwnerHops; hop++ {
		// advanceOK: before anything is observed, the snapshot may still
		// slide forward to whatever version the owner serves first.
		advanceOK := root.roObserved == 0
		if rt.store.Owns(oid) {
			var (
				val object.Value
				ver object.Version
				st  object.SnapStatus
			)
			if advanceOK {
				val, ver, st = rt.store.ReadAtOrLatest(oid, root.snap, tx.id)
			} else {
				val, ver, st = rt.store.SnapshotAt(oid, root.snap, tx.id)
			}
			switch st {
			case object.SnapOK:
				if ver.Clock > root.snap {
					root.snap = ver.Clock
				}
				return tx.adoptSnapshot(oid, val, ver), nil
			case object.SnapRetry, object.SnapTooOld:
				return nil, &abortError{target: root, cause: AbortSnapshot}
			}
			// SnapNotOwner: ownership raced away; ask the directory.
		}
		owner, err := rt.locator.Locate(ctx, oid)
		if err != nil {
			if errors.Is(err, cc.ErrUnknownObject) {
				return nil, err
			}
			return nil, tx.convertErr(ctx, err, AbortSnapshot)
		}
		root.readRPCs++
		body, err := rt.ep.Call(ctx, owner, KindSnapshotRead, snapReadReq{
			Oid:       oid,
			TxID:      tx.id,
			At:        root.snap,
			AdvanceOK: advanceOK,
		})
		if err != nil {
			return nil, tx.convertErr(ctx, err, AbortSnapshot)
		}
		resp, ok := body.(snapReadResp)
		if !ok {
			return nil, fmt.Errorf("stm: bad snapshot read reply %T", body)
		}
		switch resp.Status {
		case snapReadOK:
			if resp.Version.Clock > root.snap {
				root.snap = resp.Version.Clock
			}
			return tx.adoptSnapshot(oid, resp.Value, resp.Version), nil
		case snapReadNotOwner:
			if _, err := rt.locator.Relocate(ctx, oid); err != nil {
				return nil, tx.convertErr(ctx, err, AbortSnapshot)
			}
			continue
		case snapReadRetry, snapReadTooOld:
			return nil, &abortError{target: root, cause: AbortSnapshot}
		default:
			return nil, fmt.Errorf("stm: unknown snapshot read status %d", resp.Status)
		}
	}
	return nil, &abortError{target: root, cause: AbortSnapshot}
}

// adoptSnapshot records a snapshot-served copy at this nesting level. The
// entry carries its served version so a later upgrade can validate it
// through the ordinary commit machinery.
func (tx *Txn) adoptSnapshot(oid object.ID, val object.Value, ver object.Version) *objEntry {
	tx.root.roObserved++
	e := &objEntry{val: val, ver: ver}
	tx.entries[oid] = e
	return e
}

// forward implements TFA's transactional forwarding: when the transaction
// observes an owner clock ahead of its start time, it revalidates its read
// set and, if intact, advances its start time; a stale entry aborts the
// innermost level holding it.
func (tx *Txn) forward(ctx context.Context, ownerClock uint64) error {
	root := tx.root
	if ownerClock <= root.start {
		return nil
	}
	if err := tx.validateChain(ctx); err != nil {
		return err
	}
	tx.rt.tracer.Emit(trace.Event{Type: trace.EvForward, Tx: tx.id, A: root.start, B: ownerClock})
	root.start = ownerClock
	return nil
}

// validateChain re-checks every fetched entry along the nesting chain
// against its owner's current version, one batch message per owner. A stale
// entry aborts the innermost transaction holding it (closed nesting partial
// abort) — when several entries are stale, the outermost affected level
// wins, since its abort subsumes the others.
func (tx *Txn) validateChain(ctx context.Context) error {
	type item struct {
		level *Txn
		depth int
	}
	var items []item
	var entries []verEntry
	depth := 0
	for t := tx; t != nil; t = t.parent {
		for oid, e := range t.entries {
			if e.created {
				continue
			}
			level, d := t, depth
			if e.inherited {
				// The version was observed by an ancestor; retrying this
				// level alone would re-read the same doomed snapshot.
				level, d = tx.root, 1<<30
			}
			items = append(items, item{level: level, depth: d})
			entries = append(entries, verEntry{Oid: oid, Ver: e.ver})
		}
		depth++
	}
	if len(items) == 0 {
		return nil
	}

	oks, err := tx.checkVersions(ctx, entries, nil)
	if err != nil {
		return tx.convertErr(ctx, err, AbortValidation)
	}
	var staleTarget *Txn
	staleDepth := -1
	for i, ok := range oks {
		if !ok && items[i].depth > staleDepth {
			staleDepth = items[i].depth
			staleTarget = items[i].level
		}
	}
	if staleTarget != nil {
		return &abortError{target: staleTarget, cause: AbortValidation}
	}
	return nil
}

// validateOwn re-checks every non-created entry fetched at this nesting
// level (one batch message per owner), aborting this level if any is stale
// (inner-commit early validation).
func (tx *Txn) validateOwn(ctx context.Context) error {
	var entries []verEntry
	var inherited []bool
	for oid, e := range tx.entries {
		if e.created {
			continue
		}
		entries = append(entries, verEntry{Oid: oid, Ver: e.ver})
		inherited = append(inherited, e.inherited)
	}
	if len(entries) == 0 {
		return nil
	}
	oks, err := tx.checkVersions(ctx, entries, nil)
	if err != nil {
		return tx.convertErr(ctx, err, AbortValidation)
	}
	staleOwn, staleInherited := false, false
	for i, ok := range oks {
		if ok {
			continue
		}
		if inherited[i] {
			staleInherited = true
		} else {
			staleOwn = true
		}
	}
	if staleInherited {
		// The stale version was observed by an ancestor: retrying this
		// inner transaction would re-read the same doomed snapshot forever
		// (the classic partial-abort livelock). The enclosing snapshot is
		// broken, so the whole top-level transaction restarts.
		return &abortError{target: tx.root, cause: AbortValidation}
	}
	if staleOwn {
		return &abortError{target: tx, cause: AbortValidation}
	}
	return nil
}

// validateMany checks a set of this transaction's read entries (one batch
// message per owner), aborting the root if any is stale. The commit
// pipeline's message meter accounts the batches (nil to skip accounting).
func (tx *Txn) validateMany(ctx context.Context, oids []object.ID, meter *commitMeter) error {
	if len(oids) == 0 {
		return nil
	}
	entries := make([]verEntry, len(oids))
	for i, oid := range oids {
		entries[i] = verEntry{Oid: oid, Ver: tx.entries[oid].ver}
	}
	oks, err := tx.checkVersions(ctx, entries, meter)
	if err != nil {
		return tx.convertErr(ctx, err, AbortValidation)
	}
	for _, ok := range oks {
		if !ok {
			return &abortError{target: tx.root, cause: AbortValidation}
		}
	}
	return nil
}

// checkVersions asks the owners of every entry whether its version is still
// current, one batch message per owner per wave, chasing stale owner hints
// in batches (hop-bounded). The result slice is parallel to entries; an
// entry whose owner could not be pinned within maxOwnerHops reads as stale
// (the movers committed new versions anyway). meter, when non-nil, accounts
// the messages and waves into the commit pipeline's tally.
func (tx *Txn) checkVersions(ctx context.Context, entries []verEntry, meter *commitMeter) ([]bool, error) {
	rt := tx.rt
	oks := make([]bool, len(entries))
	pending := make([]int, len(entries))
	for i := range pending {
		pending[i] = i
	}
	for hop := 0; hop < maxOwnerHops && len(pending) > 0; hop++ {
		oids := make([]object.ID, len(pending))
		for i, idx := range pending {
			oids[i] = entries[idx].Oid
		}
		owners, msgs, err := rt.locator.LocateBatch(ctx, oids)
		meter.wave(msgs)
		if err != nil {
			return nil, err
		}

		// Group the pending indices by owner, deterministically ordered.
		byOwner := make(map[transport.NodeID][]int)
		for _, idx := range pending {
			o := owners[entries[idx].Oid]
			byOwner[o] = append(byOwner[o], idx)
		}
		ownerList := make([]transport.NodeID, 0, len(byOwner))
		for o := range byOwner {
			ownerList = append(ownerList, o)
		}
		sort.Slice(ownerList, func(i, j int) bool { return ownerList[i] < ownerList[j] })
		calls := make([]cluster.Outcall, len(ownerList))
		for i, o := range ownerList {
			req := checkBatchReq{TxID: tx.root.lockID, Entries: make([]verEntry, len(byOwner[o]))}
			for j, idx := range byOwner[o] {
				req.Entries[j] = entries[idx]
			}
			calls[i] = cluster.Outcall{To: o, Kind: KindCheckVersionBatch, Payload: req}
		}
		results := rt.ep.Broadcast(ctx, calls)
		meter.wave(len(calls))

		var next []int
		for gi, res := range results {
			group := byOwner[ownerList[gi]]
			if res.Err != nil {
				return nil, res.Err
			}
			resp, ok := res.Body.(checkBatchResp)
			if !ok || len(resp.Results) != len(group) {
				return nil, fmt.Errorf("stm: bad check batch reply %T", res.Body)
			}
			for i, r := range resp.Results {
				idx := group[i]
				if r.NotOwner {
					// Ownership moved: the directory hint and any cached
					// replica of this object are both stale.
					rt.locator.InvalidateHint(entries[idx].Oid)
					rt.replica.invalidate(entries[idx].Oid, rt.metrics)
					next = append(next, idx)
					continue
				}
				oks[idx] = r.OK
				if !r.OK {
					rt.replica.invalidate(entries[idx].Oid, rt.metrics)
				}
			}
		}
		sort.Ints(next)
		pending = next
	}
	return oks, nil
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
