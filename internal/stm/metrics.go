package stm

import (
	"sync/atomic"
	"time"

	"dstm/internal/stats"
)

// AbortCause classifies why a transaction attempt aborted, feeding the
// paper's Table I (nested-abort attribution) and the throughput analyses.
type AbortCause uint8

// Abort causes.
const (
	// AbortDenied: a retrieve hit a commit-locked object and the scheduler
	// denied the request (TFA's "losing transactions abort while T2
	// validates").
	AbortDenied AbortCause = iota
	// AbortQueueTimeout: the transaction was enqueued by RTS but its
	// backoff expired before the object arrived.
	AbortQueueTimeout
	// AbortValidation: commit-time or forwarding validation found a stale
	// read (TFA's "early validation" abort).
	AbortValidation
	// AbortLockFailed: commit could not lock its write set.
	AbortLockFailed
	// AbortParent: a closed-nested transaction was rolled back because an
	// enclosing transaction aborted after the child had committed into it.
	AbortParent
	// AbortSnapshot: a read-only (MVCC) attempt could not be served at its
	// pinned snapshot clock — the owner's retained version chain no longer
	// reaches that far back, or a commit-locked tip forced a refusal. The
	// retry pins a fresh snapshot.
	AbortSnapshot
	numAbortCauses
)

func (c AbortCause) String() string {
	switch c {
	case AbortDenied:
		return "denied"
	case AbortQueueTimeout:
		return "queue-timeout"
	case AbortValidation:
		return "validation"
	case AbortLockFailed:
		return "lock-failed"
	case AbortParent:
		return "parent-abort"
	case AbortSnapshot:
		return "snapshot"
	default:
		return "unknown"
	}
}

// AbortCauses lists every cause in declaration order, for stable reports.
func AbortCauses() []AbortCause {
	out := make([]AbortCause, 0, int(numAbortCauses))
	for c := AbortCause(0); c < numAbortCauses; c++ {
		out = append(out, c)
	}
	return out
}

// Metrics aggregates one node's transaction outcomes. All fields are
// updated atomically; read them with Snapshot.
type Metrics struct {
	commits       atomic.Uint64 // top-level commits
	aborts        [numAbortCauses]atomic.Uint64
	nestedCommits atomic.Uint64 // inner-transaction commits (merged into parents)
	nestedOwn     atomic.Uint64 // inner aborts during the inner's own run
	nestedParent  atomic.Uint64 // inner rollbacks caused by a parent abort
	enqueues      atomic.Uint64 // requests parked by the scheduler
	pushes        atomic.Uint64 // objects handed to parked requesters
	retrieves     atomic.Uint64 // object fetch RPCs issued
	leaseExpiries atomic.Uint64 // commit locks force-released by the lease reaper
	commitMsgs    atomic.Uint64 // messages sent by successful commit pipelines
	commitRounds  atomic.Uint64 // parallel batch rounds those messages formed

	// MVCC read path.
	readOnlyCommits atomic.Uint64 // commits that wrote nothing (incl. AtomicRO)
	readMsgs        atomic.Uint64 // data-path read RPCs charged to those commits
	snapReads       atomic.Uint64 // owner-side snapshot-read requests served
	replicaHits     atomic.Uint64 // reads served from the requester replica cache
	replicaInvals   atomic.Uint64 // replica entries dropped (expiry or proven stale)
	roUpgrades      atomic.Uint64 // read-only attempts upgraded to read-write

	// Per-outcome attempt latency: how long one top-level attempt ran
	// before committing, or before aborting with each cause. The split
	// shows WHERE time is lost — e.g. queue-timeout aborts each burn a full
	// backoff, so their latency dwarfs denied aborts.
	commitLatency stats.LatencyHist
	abortLatency  [numAbortCauses]stats.LatencyHist
}

// observeOutcome records one attempt's latency under its outcome.
func (m *Metrics) observeOutcome(committed bool, cause AbortCause, d time.Duration) {
	if committed {
		m.commitLatency.Observe(d)
		return
	}
	m.abortLatency[cause].Observe(d)
}

// LatencyCommitKey is the Latency map key for committed attempts; aborted
// attempts are keyed by their AbortCause string.
const LatencyCommitKey = "commit"

// MetricsSnapshot is a consistent-enough copy of Metrics counters.
type MetricsSnapshot struct {
	Commits       uint64
	Aborts        map[AbortCause]uint64
	NestedCommits uint64
	NestedOwn     uint64
	NestedParent  uint64
	Enqueues      uint64
	Pushes        uint64
	Retrieves     uint64
	LeaseExpiries uint64
	// CommitMsgs counts the protocol messages issued by commit pipelines
	// that reached the commit point; CommitRounds counts the parallel batch
	// waves they formed. Their ratios to Commits are the paper-facing
	// "msgs/commit" and "rounds/commit" of the owner-grouped pipeline.
	CommitMsgs   uint64
	CommitRounds uint64

	// ReadOnlyCommits counts commits whose transaction wrote nothing —
	// plain Atomic roots with empty write sets and AtomicRO roots that
	// stayed read-only. ReadMsgs counts the data-path read RPCs those
	// commits issued (retrieves on the ownership path, snapshot reads on
	// the MVCC path); ReadMsgs/ReadOnlyCommits is the read-path cost the
	// readscale experiment gates on. SnapReads counts owner-side
	// snapshot-read requests served; ReplicaHits / ReplicaInvals count
	// requester replica-cache activity; ROUpgrades counts read-only
	// attempts that hit a write and fell back to the ownership protocol.
	ReadOnlyCommits uint64
	ReadMsgs        uint64
	SnapReads       uint64
	ReplicaHits     uint64
	ReplicaInvals   uint64
	ROUpgrades      uint64

	// Latency maps outcome (LatencyCommitKey or an AbortCause string) to
	// that outcome's attempt-latency histogram.
	Latency map[string]stats.HistSnapshot
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Commits:       m.commits.Load(),
		Aborts:        make(map[AbortCause]uint64, int(numAbortCauses)),
		NestedCommits: m.nestedCommits.Load(),
		NestedOwn:     m.nestedOwn.Load(),
		NestedParent:  m.nestedParent.Load(),
		Enqueues:      m.enqueues.Load(),
		Pushes:        m.pushes.Load(),
		Retrieves:     m.retrieves.Load(),
		LeaseExpiries: m.leaseExpiries.Load(),
		CommitMsgs:    m.commitMsgs.Load(),
		CommitRounds:  m.commitRounds.Load(),

		ReadOnlyCommits: m.readOnlyCommits.Load(),
		ReadMsgs:        m.readMsgs.Load(),
		SnapReads:       m.snapReads.Load(),
		ReplicaHits:     m.replicaHits.Load(),
		ReplicaInvals:   m.replicaInvals.Load(),
		ROUpgrades:      m.roUpgrades.Load(),
	}
	s.Latency = make(map[string]stats.HistSnapshot, int(numAbortCauses)+1)
	s.Latency[LatencyCommitKey] = m.commitLatency.Snapshot()
	for c := AbortCause(0); c < numAbortCauses; c++ {
		s.Aborts[c] = m.aborts[c].Load()
		s.Latency[c.String()] = m.abortLatency[c].Snapshot()
	}
	return s
}

// TotalAborts sums the per-cause top-level abort counters.
func (s MetricsSnapshot) TotalAborts() uint64 {
	var t uint64
	for _, v := range s.Aborts {
		t += v
	}
	return t
}

// MsgsPerCommit is the average number of commit-pipeline messages per
// successful commit — the O(k) → O(m) headline of owner-grouped batching.
// Returns 0 when nothing committed.
func (s MetricsSnapshot) MsgsPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.CommitMsgs) / float64(s.Commits)
}

// RoundsPerCommit is the average number of parallel batch waves per
// successful commit (each wave costs one round-trip to its slowest owner).
func (s MetricsSnapshot) RoundsPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.CommitRounds) / float64(s.Commits)
}

// ReadMsgsPerROCommit is the average number of data-path read RPCs per
// read-only commit — the readscale experiment's gate metric. Comparable
// across the ownership and MVCC read paths because both charge their read
// RPCs (retrieves vs snapshot reads) to the same counter. Returns 0 when
// nothing committed read-only.
func (s MetricsSnapshot) ReadMsgsPerROCommit() float64 {
	if s.ReadOnlyCommits == 0 {
		return 0
	}
	return float64(s.ReadMsgs) / float64(s.ReadOnlyCommits)
}

// NestedAbortRate is Table I's metric: the fraction of nested-transaction
// aborts caused by a parent's abort. Returns 0 when no nested aborts
// occurred.
func (s MetricsSnapshot) NestedAbortRate() float64 {
	total := s.NestedOwn + s.NestedParent
	if total == 0 {
		return 0
	}
	return float64(s.NestedParent) / float64(total)
}

// Merge adds other's counters into s (for cluster-wide aggregation).
func (s *MetricsSnapshot) Merge(other MetricsSnapshot) {
	s.Commits += other.Commits
	s.NestedCommits += other.NestedCommits
	s.NestedOwn += other.NestedOwn
	s.NestedParent += other.NestedParent
	s.Enqueues += other.Enqueues
	s.Pushes += other.Pushes
	s.Retrieves += other.Retrieves
	s.LeaseExpiries += other.LeaseExpiries
	s.CommitMsgs += other.CommitMsgs
	s.CommitRounds += other.CommitRounds
	s.ReadOnlyCommits += other.ReadOnlyCommits
	s.ReadMsgs += other.ReadMsgs
	s.SnapReads += other.SnapReads
	s.ReplicaHits += other.ReplicaHits
	s.ReplicaInvals += other.ReplicaInvals
	s.ROUpgrades += other.ROUpgrades
	if s.Aborts == nil {
		s.Aborts = make(map[AbortCause]uint64, int(numAbortCauses))
	}
	for c, v := range other.Aborts {
		s.Aborts[c] += v
	}
	if s.Latency == nil && len(other.Latency) > 0 {
		s.Latency = make(map[string]stats.HistSnapshot, len(other.Latency))
	}
	for k, h := range other.Latency {
		cur := s.Latency[k]
		cur.Merge(h)
		s.Latency[k] = cur
	}
}

// Sub removes a baseline snapshot's counters from s (saturation-free for
// the plain counters — callers subtract a baseline taken earlier on the
// same nodes, so the counters are monotone; histograms saturate at zero).
func (s *MetricsSnapshot) Sub(base MetricsSnapshot) {
	s.Commits -= base.Commits
	s.NestedCommits -= base.NestedCommits
	s.NestedOwn -= base.NestedOwn
	s.NestedParent -= base.NestedParent
	s.Enqueues -= base.Enqueues
	s.Pushes -= base.Pushes
	s.Retrieves -= base.Retrieves
	s.LeaseExpiries -= base.LeaseExpiries
	s.CommitMsgs -= base.CommitMsgs
	s.CommitRounds -= base.CommitRounds
	s.ReadOnlyCommits -= base.ReadOnlyCommits
	s.ReadMsgs -= base.ReadMsgs
	s.SnapReads -= base.SnapReads
	s.ReplicaHits -= base.ReplicaHits
	s.ReplicaInvals -= base.ReplicaInvals
	s.ROUpgrades -= base.ROUpgrades
	for c, v := range base.Aborts {
		if s.Aborts != nil {
			s.Aborts[c] -= v
		}
	}
	for k, h := range base.Latency {
		if s.Latency == nil {
			break
		}
		cur := s.Latency[k]
		cur.Sub(h)
		s.Latency[k] = cur
	}
}
