package stm

import "sync/atomic"

// AbortCause classifies why a transaction attempt aborted, feeding the
// paper's Table I (nested-abort attribution) and the throughput analyses.
type AbortCause uint8

// Abort causes.
const (
	// AbortDenied: a retrieve hit a commit-locked object and the scheduler
	// denied the request (TFA's "losing transactions abort while T2
	// validates").
	AbortDenied AbortCause = iota
	// AbortQueueTimeout: the transaction was enqueued by RTS but its
	// backoff expired before the object arrived.
	AbortQueueTimeout
	// AbortValidation: commit-time or forwarding validation found a stale
	// read (TFA's "early validation" abort).
	AbortValidation
	// AbortLockFailed: commit could not lock its write set.
	AbortLockFailed
	// AbortParent: a closed-nested transaction was rolled back because an
	// enclosing transaction aborted after the child had committed into it.
	AbortParent
	numAbortCauses
)

func (c AbortCause) String() string {
	switch c {
	case AbortDenied:
		return "denied"
	case AbortQueueTimeout:
		return "queue-timeout"
	case AbortValidation:
		return "validation"
	case AbortLockFailed:
		return "lock-failed"
	case AbortParent:
		return "parent-abort"
	default:
		return "unknown"
	}
}

// Metrics aggregates one node's transaction outcomes. All fields are
// updated atomically; read them with Snapshot.
type Metrics struct {
	commits       atomic.Uint64 // top-level commits
	aborts        [numAbortCauses]atomic.Uint64
	nestedCommits atomic.Uint64 // inner-transaction commits (merged into parents)
	nestedOwn     atomic.Uint64 // inner aborts during the inner's own run
	nestedParent  atomic.Uint64 // inner rollbacks caused by a parent abort
	enqueues      atomic.Uint64 // requests parked by the scheduler
	pushes        atomic.Uint64 // objects handed to parked requesters
	retrieves     atomic.Uint64 // object fetch RPCs issued
	leaseExpiries atomic.Uint64 // commit locks force-released by the lease reaper
}

// MetricsSnapshot is a consistent-enough copy of Metrics counters.
type MetricsSnapshot struct {
	Commits       uint64
	Aborts        map[AbortCause]uint64
	NestedCommits uint64
	NestedOwn     uint64
	NestedParent  uint64
	Enqueues      uint64
	Pushes        uint64
	Retrieves     uint64
	LeaseExpiries uint64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Commits:       m.commits.Load(),
		Aborts:        make(map[AbortCause]uint64, int(numAbortCauses)),
		NestedCommits: m.nestedCommits.Load(),
		NestedOwn:     m.nestedOwn.Load(),
		NestedParent:  m.nestedParent.Load(),
		Enqueues:      m.enqueues.Load(),
		Pushes:        m.pushes.Load(),
		Retrieves:     m.retrieves.Load(),
		LeaseExpiries: m.leaseExpiries.Load(),
	}
	for c := AbortCause(0); c < numAbortCauses; c++ {
		s.Aborts[c] = m.aborts[c].Load()
	}
	return s
}

// TotalAborts sums the per-cause top-level abort counters.
func (s MetricsSnapshot) TotalAborts() uint64 {
	var t uint64
	for _, v := range s.Aborts {
		t += v
	}
	return t
}

// NestedAbortRate is Table I's metric: the fraction of nested-transaction
// aborts caused by a parent's abort. Returns 0 when no nested aborts
// occurred.
func (s MetricsSnapshot) NestedAbortRate() float64 {
	total := s.NestedOwn + s.NestedParent
	if total == 0 {
		return 0
	}
	return float64(s.NestedParent) / float64(total)
}

// Merge adds other's counters into s (for cluster-wide aggregation).
func (s *MetricsSnapshot) Merge(other MetricsSnapshot) {
	s.Commits += other.Commits
	s.NestedCommits += other.NestedCommits
	s.NestedOwn += other.NestedOwn
	s.NestedParent += other.NestedParent
	s.Enqueues += other.Enqueues
	s.Pushes += other.Pushes
	s.Retrieves += other.Retrieves
	s.LeaseExpiries += other.LeaseExpiries
	if s.Aborts == nil {
		s.Aborts = make(map[AbortCause]uint64, int(numAbortCauses))
	}
	for c, v := range other.Aborts {
		s.Aborts[c] += v
	}
}
