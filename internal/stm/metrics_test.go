package stm

import (
	"reflect"
	"testing"
	"time"
)

func TestAbortCauseStrings(t *testing.T) {
	want := map[AbortCause]string{
		AbortDenied:       "denied",
		AbortQueueTimeout: "queue-timeout",
		AbortValidation:   "validation",
		AbortLockFailed:   "lock-failed",
		AbortParent:       "parent-abort",
		AbortCause(200):   "unknown",
	}
	for c, w := range want {
		if got := c.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", c, got, w)
		}
	}
}

func TestMetricsSnapshotAndMerge(t *testing.T) {
	var m Metrics
	m.commits.Add(3)
	m.aborts[AbortDenied].Add(2)
	m.aborts[AbortValidation].Add(1)
	m.nestedCommits.Add(5)
	m.nestedOwn.Add(4)
	m.nestedParent.Add(6)
	m.enqueues.Add(7)
	m.pushes.Add(8)
	m.retrieves.Add(9)

	s := m.Snapshot()
	if s.Commits != 3 || s.NestedCommits != 5 || s.NestedOwn != 4 ||
		s.NestedParent != 6 || s.Enqueues != 7 || s.Pushes != 8 || s.Retrieves != 9 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.TotalAborts() != 3 {
		t.Fatalf("TotalAborts = %d", s.TotalAborts())
	}
	if got := s.NestedAbortRate(); got != 0.6 {
		t.Fatalf("NestedAbortRate = %v, want 0.6", got)
	}

	var sum MetricsSnapshot
	sum.Merge(s)
	sum.Merge(s)
	if sum.Commits != 6 || sum.Aborts[AbortDenied] != 4 || sum.NestedParent != 12 {
		t.Fatalf("merged %+v", sum)
	}
}

// fullyPopulated returns a snapshot in which every field — including every
// abort cause and every latency histogram — is non-zero.
func fullyPopulated() MetricsSnapshot {
	var m Metrics
	m.commits.Add(3)
	m.nestedCommits.Add(5)
	m.nestedOwn.Add(4)
	m.nestedParent.Add(6)
	m.enqueues.Add(7)
	m.pushes.Add(8)
	m.retrieves.Add(9)
	m.leaseExpiries.Add(2)
	m.commitMsgs.Add(15)
	m.commitRounds.Add(12)
	m.readOnlyCommits.Add(11)
	m.readMsgs.Add(13)
	m.snapReads.Add(14)
	m.replicaHits.Add(16)
	m.replicaInvals.Add(17)
	m.roUpgrades.Add(18)
	m.observeOutcome(true, 0, 3*time.Millisecond)
	for c := AbortCause(0); c < numAbortCauses; c++ {
		m.aborts[c].Add(uint64(c) + 1)
		m.observeOutcome(false, c, time.Duration(c+1)*time.Millisecond)
	}
	return m.Snapshot()
}

// TestMergePreservesEveryField is a reflection guard: if a counter is ever
// added to MetricsSnapshot but forgotten in Merge (or Sub), this test fails
// without needing to know the field's name.
func TestMergePreservesEveryField(t *testing.T) {
	a := fullyPopulated()

	// The guard only works if the populated snapshot really has no zero
	// field — a newly added field shows up here first.
	v := reflect.ValueOf(a)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Fatalf("field %s of the populated snapshot is zero — teach fullyPopulated about it",
				v.Type().Field(i).Name)
		}
	}
	for k, h := range a.Latency {
		if h.Count() == 0 {
			t.Fatalf("latency histogram %q is empty in the populated snapshot", k)
		}
	}

	// Merge into a zero snapshot must reproduce a exactly: any field Merge
	// forgets stays zero and breaks the comparison.
	var b MetricsSnapshot
	b.Merge(a)
	if !reflect.DeepEqual(b, a) {
		t.Fatalf("merge into zero lost fields:\n got %+v\nwant %+v", b, a)
	}

	// Doubling then subtracting must round-trip (guards Sub the same way).
	b.Merge(a)
	b.Sub(a)
	if !reflect.DeepEqual(b, a) {
		t.Fatalf("merge+sub did not round-trip:\n got %+v\nwant %+v", b, a)
	}
}

func TestNestedAbortRateZeroWhenNoAborts(t *testing.T) {
	var m Metrics
	if got := m.Snapshot().NestedAbortRate(); got != 0 {
		t.Fatalf("rate = %v on empty metrics", got)
	}
}
