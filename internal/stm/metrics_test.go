package stm

import (
	"testing"
)

func TestAbortCauseStrings(t *testing.T) {
	want := map[AbortCause]string{
		AbortDenied:       "denied",
		AbortQueueTimeout: "queue-timeout",
		AbortValidation:   "validation",
		AbortLockFailed:   "lock-failed",
		AbortParent:       "parent-abort",
		AbortCause(200):   "unknown",
	}
	for c, w := range want {
		if got := c.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", c, got, w)
		}
	}
}

func TestMetricsSnapshotAndMerge(t *testing.T) {
	var m Metrics
	m.commits.Add(3)
	m.aborts[AbortDenied].Add(2)
	m.aborts[AbortValidation].Add(1)
	m.nestedCommits.Add(5)
	m.nestedOwn.Add(4)
	m.nestedParent.Add(6)
	m.enqueues.Add(7)
	m.pushes.Add(8)
	m.retrieves.Add(9)

	s := m.Snapshot()
	if s.Commits != 3 || s.NestedCommits != 5 || s.NestedOwn != 4 ||
		s.NestedParent != 6 || s.Enqueues != 7 || s.Pushes != 8 || s.Retrieves != 9 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.TotalAborts() != 3 {
		t.Fatalf("TotalAborts = %d", s.TotalAborts())
	}
	if got := s.NestedAbortRate(); got != 0.6 {
		t.Fatalf("NestedAbortRate = %v, want 0.6", got)
	}

	var sum MetricsSnapshot
	sum.Merge(s)
	sum.Merge(s)
	if sum.Commits != 6 || sum.Aborts[AbortDenied] != 4 || sum.NestedParent != 12 {
		t.Fatalf("merged %+v", sum)
	}
}

func TestNestedAbortRateZeroWhenNoAborts(t *testing.T) {
	var m Metrics
	if got := m.Snapshot().NestedAbortRate(); got != 0 {
		t.Fatalf("rate = %v on empty metrics", got)
	}
}
