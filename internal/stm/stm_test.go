package stm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dstm/internal/cluster"
	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

// box is a simple shared counter object.
type box struct{ N int64 }

func (b *box) Copy() object.Value { c := *b; return &c }

// pair is a two-field object for read-your-writes tests.
type pair struct{ A, B int64 }

func (p *pair) Copy() object.Value { c := *p; return &c }

type testCluster struct {
	net *transport.Network
	rts []*Runtime
}

// newTestCluster builds n runtimes over an in-memory network. mkPolicy is
// called once per node; nil means plain TFA.
func newTestCluster(t testing.TB, n int, lat transport.LatencyModel, mkPolicy func() sched.Policy) *testCluster {
	t.Helper()
	if mkPolicy == nil {
		mkPolicy = func() sched.Policy { return sched.NewTFA() }
	}
	net := transport.NewNetwork(lat)
	tc := &testCluster{net: net}
	for i := 0; i < n; i++ {
		ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), &vclock.Clock{})
		tc.rts = append(tc.rts, NewRuntime(ep, n, mkPolicy(), nil))
	}
	t.Cleanup(func() { net.Close() })
	return tc
}

// newRuntimeOn attaches one plain-TFA runtime to an existing network (for
// tests that need direct access to the network, e.g. fault injection).
func newRuntimeOn(net *transport.Network, id, size int) *Runtime {
	ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(id)), &vclock.Clock{})
	return NewRuntime(ep, size, sched.NewTFA(), nil)
}

func TestSingleNodeReadWrite(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()
	if err := rt.CreateRoot(ctx, "x", &box{N: 5}); err != nil {
		t.Fatal(err)
	}

	err := rt.Atomic(ctx, "inc", func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		n := v.(*box).N
		return tx.Write(ctx, "x", &box{N: n + 1})
	})
	if err != nil {
		t.Fatal(err)
	}

	var got int64
	err = rt.Atomic(ctx, "read", func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("x = %d, want 6", got)
	}
	m := rt.Metrics().Snapshot()
	if m.Commits != 2 {
		t.Fatalf("commits = %d", m.Commits)
	}
}

func TestCrossNodeFetchAndMigration(t *testing.T) {
	tc := newTestCluster(t, 3, nil, nil)
	ctx := context.Background()
	// Node 0 owns the object initially.
	if err := tc.rts[0].CreateRoot(ctx, "m", &box{N: 1}); err != nil {
		t.Fatal(err)
	}

	// Node 2 writes it: ownership must migrate to node 2.
	err := tc.rts[2].Atomic(ctx, "w", func(tx *Txn) error {
		return tx.Update(ctx, "m", func(v object.Value) object.Value {
			v.(*box).N = 42
			return v
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if tc.rts[0].Store().Owns("m") {
		t.Fatal("node 0 still owns the object after remote commit")
	}
	if !tc.rts[2].Store().Owns("m") {
		t.Fatal("node 2 does not own the object after its commit")
	}

	// Node 1 reads through the directory (hint chasing from scratch).
	var got int64
	err = tc.rts[1].Atomic(ctx, "r", func(tx *Txn) error {
		v, err := tx.Read(ctx, "m")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("read %d, want 42", got)
	}
}

func TestStaleOwnerHintChased(t *testing.T) {
	tc := newTestCluster(t, 3, nil, nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "h", &box{N: 0}); err != nil {
		t.Fatal(err)
	}
	// Node 1 reads, caching owner=node0.
	if err := tc.rts[1].Atomic(ctx, "r", func(tx *Txn) error {
		_, err := tx.Read(ctx, "h")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Node 2 takes ownership.
	if err := tc.rts[2].Atomic(ctx, "w", func(tx *Txn) error {
		return tx.Write(ctx, "h", &box{N: 9})
	}); err != nil {
		t.Fatal(err)
	}
	// Node 1's stale hint (node 0) must be chased to node 2.
	var got int64
	if err := tc.rts[1].Atomic(ctx, "r2", func(tx *Txn) error {
		v, err := tx.Read(ctx, "h")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("read %d, want 9", got)
	}
}

func TestReadYourWrites(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()
	if err := rt.CreateRoot(ctx, "p", &pair{A: 1, B: 2}); err != nil {
		t.Fatal(err)
	}
	err := rt.Atomic(ctx, "ryw", func(tx *Txn) error {
		if err := tx.Write(ctx, "p", &pair{A: 10, B: 20}); err != nil {
			return err
		}
		v, err := tx.Read(ctx, "p")
		if err != nil {
			return err
		}
		if p := v.(*pair); p.A != 10 || p.B != 20 {
			return fmt.Errorf("read-your-writes failed: %+v", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateVisibleAfterCommitOnly(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()

	err := tc.rts[0].Atomic(ctx, "create", func(tx *Txn) error {
		if err := tx.Create("fresh", &box{N: 7}); err != nil {
			return err
		}
		// Read-your-writes on the created object.
		v, err := tx.Read(ctx, "fresh")
		if err != nil {
			return err
		}
		if v.(*box).N != 7 {
			return fmt.Errorf("created object reads %+v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	err = tc.rts[1].Atomic(ctx, "read", func(tx *Txn) error {
		v, err := tx.Read(ctx, "fresh")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("read %d, want 7", got)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()
	if err := rt.CreateRoot(ctx, "dup", &box{}); err != nil {
		t.Fatal(err)
	}
	err := rt.Atomic(ctx, "create", func(tx *Txn) error {
		return tx.Create("dup", &box{N: 1})
	})
	if err == nil {
		t.Fatal("creating an existing object committed")
	}
	// Double-create within one transaction is caught immediately.
	err = rt.Atomic(ctx, "create2", func(tx *Txn) error {
		if err := tx.Create("dup2", &box{}); err != nil {
			return err
		}
		if err := tx.Create("dup2", &box{}); err == nil {
			return errors.New("second Create of same id succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCountersAtomicity(t *testing.T) {
	const nodes = 4
	const perNode = 25
	tc := newTestCluster(t, nodes, nil, nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "cnt", &box{N: 0}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(rt *Runtime) {
			defer wg.Done()
			for j := 0; j < perNode; j++ {
				err := rt.Atomic(ctx, "inc", func(tx *Txn) error {
					return tx.Update(ctx, "cnt", func(v object.Value) object.Value {
						v.(*box).N++
						return v
					})
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(tc.rts[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var got int64
	if err := tc.rts[1].Atomic(ctx, "read", func(tx *Txn) error {
		v, err := tx.Read(ctx, "cnt")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != nodes*perNode {
		t.Fatalf("counter = %d, want %d (lost updates)", got, nodes*perNode)
	}
}

func TestTransferInvariant(t *testing.T) {
	const nodes = 3
	tc := newTestCluster(t, nodes, transport.UniformLatency(100*time.Microsecond), nil)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		owner := tc.rts[i%nodes]
		if err := owner.CreateRoot(ctx, object.ID(fmt.Sprintf("acct/%d", i)), &box{N: 100}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(rt *Runtime, seed int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				from := object.ID(fmt.Sprintf("acct/%d", (seed+j)%6))
				to := object.ID(fmt.Sprintf("acct/%d", (seed+j+1)%6))
				_ = rt.Atomic(ctx, "xfer", func(tx *Txn) error {
					if err := tx.Update(ctx, from, func(v object.Value) object.Value {
						v.(*box).N -= 5
						return v
					}); err != nil {
						return err
					}
					return tx.Update(ctx, to, func(v object.Value) object.Value {
						v.(*box).N += 5
						return v
					})
				})
			}
		}(tc.rts[n], n*2)
	}
	wg.Wait()

	var total int64
	err := tc.rts[0].Atomic(ctx, "audit", func(tx *Txn) error {
		total = 0
		for i := 0; i < 6; i++ {
			v, err := tx.Read(ctx, object.ID(fmt.Sprintf("acct/%d", i)))
			if err != nil {
				return err
			}
			total += v.(*box).N
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 600 {
		t.Fatalf("total = %d, want 600 (atomicity violated)", total)
	}
}

func TestUserErrorAbortsWithoutRetry(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()
	if err := rt.CreateRoot(ctx, "u", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	calls := 0
	err := rt.Atomic(ctx, "fail", func(tx *Txn) error {
		calls++
		if err := tx.Write(ctx, "u", &box{N: 99}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (no retry on user error)", calls)
	}
	// The write must not have taken effect.
	var got int64
	if err := rt.Atomic(ctx, "read", func(tx *Txn) error {
		v, err := tx.Read(ctx, "u")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("aborted write leaked: %d", got)
	}
}

func TestContextCancellation(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := rt.Atomic(ctx, "c", func(tx *Txn) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}
