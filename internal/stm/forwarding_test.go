package stm

import (
	"context"
	"testing"

	"dstm/internal/object"
)

// TestForwardingAbortsStaleRead reproduces TFA's early validation: a
// transaction that read x, and later receives an object from a node whose
// clock advanced past its start time, must revalidate x; if x changed, the
// transaction aborts and retries with a consistent snapshot.
func TestForwardingAbortsStaleRead(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tc.rts[0].CreateRoot(ctx, "y", &box{N: 10}); err != nil {
		t.Fatal(err)
	}

	attempts := 0
	var sawX, sawY int64
	err := tc.rts[1].Atomic(ctx, "reader", func(tx *Txn) error {
		attempts++
		vx, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		sawX = vx.(*box).N

		if attempts == 1 {
			// Node 0 commits a new version of x while the reader is between
			// its two reads; node 0's clock ticks past the reader's start.
			if err := tc.rts[0].Atomic(ctx, "writer", func(w *Txn) error {
				return w.Update(ctx, "x", func(v object.Value) object.Value {
					v.(*box).N = 2
					return v
				})
			}); err != nil {
				return err
			}
		}

		vy, err := tx.Read(ctx, "y")
		if err != nil {
			return err
		}
		sawY = vy.(*box).N
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (forwarding must abort the stale snapshot)", attempts)
	}
	if sawX != 2 || sawY != 10 {
		t.Fatalf("final snapshot x=%d y=%d, want x=2 y=10", sawX, sawY)
	}
	m := tc.rts[1].Metrics().Snapshot()
	if m.Aborts[AbortValidation] != 1 {
		t.Fatalf("validation aborts = %d, want 1", m.Aborts[AbortValidation])
	}
}

// TestForwardingAdvancesWhenReadSetIntact: the same clock-skew situation,
// but the transaction's read set is untouched — forwarding must succeed
// without an abort.
func TestForwardingAdvancesWhenReadSetIntact(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()
	for _, oid := range []object.ID{"x", "y", "z"} {
		if err := tc.rts[0].CreateRoot(ctx, oid, &box{N: 1}); err != nil {
			t.Fatal(err)
		}
	}

	attempts := 0
	err := tc.rts[1].Atomic(ctx, "reader", func(tx *Txn) error {
		attempts++
		if _, err := tx.Read(ctx, "x"); err != nil {
			return err
		}
		if attempts == 1 {
			// Node 0 commits an UNRELATED object; its clock still ticks.
			if err := tc.rts[0].Atomic(ctx, "writer", func(w *Txn) error {
				return w.Update(ctx, "z", func(v object.Value) object.Value {
					v.(*box).N = 99
					return v
				})
			}); err != nil {
				return err
			}
		}
		_, err := tx.Read(ctx, "y")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (intact read set must forward, not abort)", attempts)
	}
	if m := tc.rts[1].Metrics().Snapshot(); m.TotalAborts() != 0 {
		t.Fatalf("aborts = %d, want 0", m.TotalAborts())
	}
}

// TestWriteSkewPrevented: two transactions each read both objects and write
// one of them; serializability requires one to abort and retry, so the
// invariant x+y >= 0 with guard "only withdraw if x+y >= 10" holds.
func TestWriteSkewPrevented(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "wa", &box{N: 5}); err != nil {
		t.Fatal(err)
	}
	if err := tc.rts[1].CreateRoot(ctx, "wb", &box{N: 5}); err != nil {
		t.Fatal(err)
	}

	withdraw := func(rt *Runtime, target object.ID) error {
		return rt.Atomic(ctx, "skew", func(tx *Txn) error {
			va, err := tx.Read(ctx, "wa")
			if err != nil {
				return err
			}
			vb, err := tx.Read(ctx, "wb")
			if err != nil {
				return err
			}
			if va.(*box).N+vb.(*box).N < 10 {
				return nil // guard fails, no withdrawal
			}
			return tx.Update(ctx, target, func(v object.Value) object.Value {
				v.(*box).N -= 10
				return v
			})
		})
	}

	done := make(chan error, 2)
	go func() { done <- withdraw(tc.rts[0], "wa") }()
	go func() { done <- withdraw(tc.rts[1], "wb") }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	var sum int64
	if err := tc.rts[0].Atomic(ctx, "audit", func(tx *Txn) error {
		sum = 0
		for _, oid := range []object.ID{"wa", "wb"} {
			v, err := tx.Read(ctx, oid)
			if err != nil {
				return err
			}
			sum += v.(*box).N
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Every serializable execution ends at 0: the first withdrawal drains
	// the combined balance to 0, so the second's guard fails. A sum of -10
	// means both withdrew — write skew.
	if sum != 0 {
		t.Fatalf("sum = %d, want 0 (write skew admitted)", sum)
	}
}
