package stm

import (
	"context"
	"testing"
	"time"

	"dstm/internal/core"
	"dstm/internal/object"
	"dstm/internal/sched"
)

// TestLeaseExpiryFreesWedgedLock simulates a committer that crashed after
// commit-locking an object: the lock is taken directly in the owner's store
// by a transaction ID that will never unlock. Without the lease reaper every
// writer would abort on LockBusy / retrieveDenied forever; with it, the lock
// expires, the dead holder is tombstoned, and the writer commits.
func TestLeaseExpiryFreesWedgedLock(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	rt0 := tc.rts[0]
	ctx := context.Background()

	if err := rt0.CreateRoot(ctx, "wedged", &box{N: 1}); err != nil {
		t.Fatal(err)
	}

	// Wedge: a "crashed" committer holds the commit lock and will never
	// release it.
	const deadTx = 0xdead
	ver, _, ok := rt0.Store().State("wedged")
	if !ok {
		t.Fatal("object not owned by creator")
	}
	if got := rt0.Store().Lock("wedged", deadTx, ver); got != object.LockOK {
		t.Fatalf("setup lock: %v", got)
	}

	stop := rt0.StartLeaseExpiry(50 * time.Millisecond)
	defer stop()

	// A writer from another node must eventually get through. Give it a
	// deadline well past the lease so only a true wedge fails the test.
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	err := tc.rts[1].Atomic(wctx, "writer", func(tx *Txn) error {
		v, err := tx.Read(wctx, "wedged")
		if err != nil {
			return err
		}
		return tx.Write(wctx, "wedged", &box{N: v.(*box).N + 1})
	})
	if err != nil {
		t.Fatalf("writer never got past the wedged lock: %v", err)
	}

	if n := rt0.Metrics().Snapshot().LeaseExpiries; n == 0 {
		t.Fatal("no lease expiries recorded despite the reaper freeing the lock")
	}
	// The dead holder must not be able to resurrect its lock afterwards.
	if rt0.Store().Owns("wedged") {
		if got := rt0.Store().Lock("wedged", deadTx, ver); got == object.LockOK {
			t.Fatal("expired holder re-acquired the lock")
		}
	}
}

// TestLeaseExpiryServesQueuedRequesters wedges an object under the RTS
// scheduler so an incoming writer is *enqueued* (not aborted): the reaper
// must both free the lock and push the object to the parked requester, or
// the queue would stall until its backoff timeout.
func TestLeaseExpiryServesQueuedRequesters(t *testing.T) {
	tc := newTestCluster(t, 2, nil, func() sched.Policy { return core.New(core.Options{CLThreshold: 5}) })
	rt0 := tc.rts[0]
	ctx := context.Background()

	if err := rt0.CreateRoot(ctx, "queued", &box{N: 10}); err != nil {
		t.Fatal(err)
	}
	const deadTx = 0xdead
	ver, _, _ := rt0.Store().State("queued")
	if got := rt0.Store().Lock("queued", deadTx, ver); got != object.LockOK {
		t.Fatalf("setup lock: %v", got)
	}

	stop := rt0.StartLeaseExpiry(50 * time.Millisecond)
	defer stop()

	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := tc.rts[1].Atomic(wctx, "writer", func(tx *Txn) error {
		v, err := tx.Read(wctx, "queued")
		if err != nil {
			return err
		}
		return tx.Write(wctx, "queued", &box{N: v.(*box).N + 1})
	}); err != nil {
		t.Fatalf("queued writer never served after lease expiry: %v", err)
	}
}

// TestLeaseExpiryStopIdempotent checks the reaper's stop function tolerates
// repeated calls and that a stopped reaper expires nothing further.
func TestLeaseExpiryStopIdempotent(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	stop := rt.StartLeaseExpiry(time.Millisecond)
	stop()
	stop() // must not panic

	if err := rt.CreateRoot(context.Background(), "x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	ver, _, _ := rt.Store().State("x")
	if got := rt.Store().Lock("x", 99, ver); got != object.LockOK {
		t.Fatalf("lock: %v", got)
	}
	time.Sleep(20 * time.Millisecond)
	if !rt.Store().Locked("x") {
		t.Fatal("stopped reaper still expired a lock")
	}
}

// TestCommitMigrationIdempotent covers the at-least-once window of the
// commit-migration RPC: when a retransmission outlives the endpoint's dedup
// cache, the old owner re-executes the handler and must report the
// already-completed migration as success — not "not owned".
func TestCommitMigrationIdempotent(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	rt0, rt1 := tc.rts[0], tc.rts[1]
	ctx := context.Background()

	if err := rt0.CreateRoot(ctx, "mig", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	const txid = 77
	ver, _, _ := rt0.Store().State("mig")
	if got := rt0.Store().Lock("mig", txid, ver); got != object.LockOK {
		t.Fatalf("lock: %v", got)
	}

	req := commitObjReq{
		Oid:      "mig",
		TxID:     txid,
		NewVer:   object.Version{Clock: 9, Node: 1},
		NewValue: &box{N: 2},
		NewOwner: 1,
	}
	// First migration removes the object from node 0.
	if _, err := rt1.ep.Call(ctx, 0, KindCommitObject, req); err != nil {
		t.Fatalf("migration: %v", err)
	}
	if rt0.Store().Owns("mig") {
		t.Fatal("object still owned by old owner after migration")
	}
	// A re-executed retransmission (fresh correlation ID, so the RPC dedup
	// cannot absorb it) must succeed idempotently.
	if _, err := rt1.ep.Call(ctx, 0, KindCommitObject, req); err != nil {
		t.Fatalf("retransmitted migration not idempotent: %v", err)
	}
	// A different transaction claiming the same migration is still an error.
	bad := req
	bad.TxID = 78
	if _, err := rt1.ep.Call(ctx, 0, KindCommitObject, bad); err == nil {
		t.Fatal("foreign-tx migration of a gone object succeeded")
	}
}
