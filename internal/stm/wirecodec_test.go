package stm

import (
	"strings"
	"testing"

	"dstm/internal/wire"
)

// TestWireCodecZeroAlloc is the codec perf gate run by scripts/ci.sh: the
// binary encode AND the decode-in-place of every hot commit-pipeline
// payload must not allocate in steady state (after the intern table and
// reusable slices are warm). A regression here silently reintroduces
// per-message garbage on the TCP path.
func TestWireCodecZeroAlloc(t *testing.T) {
	for _, c := range wireBenchCases() {
		c := c
		t.Run("encode/"+c.name, func(t *testing.T) {
			buf := make([]byte, 0, 1024)
			allocs := testing.AllocsPerRun(200, func() {
				b, err := c.enc(buf[:0])
				if err != nil || len(b) == 0 {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("encode %s allocates %.1f/op; want 0", c.name, allocs)
			}
		})
		t.Run("decode/"+c.name, func(t *testing.T) {
			enc, err := c.enc(nil)
			if err != nil {
				t.Fatal(err)
			}
			r := wire.NewReader(nil)
			// Warm: populate the intern table and the reused slices/values.
			r.Reset(enc)
			c.dec(r)
			if err := r.Err(); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				r.Reset(enc)
				c.dec(r)
			})
			if err := r.Err(); err != nil {
				t.Fatal(err)
			}
			if allocs != 0 {
				t.Errorf("decode %s allocates %.1f/op; want 0", c.name, allocs)
			}
		})
	}
}

// TestWireCodecBenchRuns sanity-checks the rtsbench helper: every row must
// measure a non-empty encoding and the binary format must not be larger
// than gob's steady-state stream for these payloads.
func TestWireCodecBenchRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("bench helper loop is slow under -short")
	}
	rows := WireCodecBench(2000)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		if row.BinaryBytes <= 0 || row.GobBytes <= 0 {
			t.Errorf("%s: sizes binary=%d gob=%d", row.Payload, row.BinaryBytes, row.GobBytes)
		}
		if row.BinaryBytes > row.GobBytes {
			t.Errorf("%s: binary (%dB) larger than gob (%dB)", row.Payload, row.BinaryBytes, row.GobBytes)
		}
		// ReadMemStats-based counting picks up stray runtime allocations, so
		// allow a small residue here; TestWireCodecZeroAlloc is the strict
		// gate (AllocsPerRun isolates the measured function).
		if row.DecAllocsPerOp > 0.01 || row.EncAllocsPerOp > 0.01 {
			t.Errorf("%s: allocs enc=%.4f dec=%.4f; want ~0", row.Payload, row.EncAllocsPerOp, row.DecAllocsPerOp)
		}
	}
}

// TestWireDecodeReuse verifies the decode-into path reuses prior state
// without leaking values across messages: decoding a shorter batch after a
// longer one must not resurrect stale entries.
func TestWireDecodeReuse(t *testing.T) {
	long := acquireBatchReq{TxID: 1}
	for _, oid := range benchOids(8) {
		long.Entries = append(long.Entries, verEntry{Oid: oid})
	}
	short := acquireBatchReq{TxID: 2, Entries: long.Entries[:2:2]}

	var dst acquireBatchReq
	r := wire.NewReader(nil)
	r.Reset(long.appendWire(nil))
	dst.decodeWire(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(dst.Entries) != 8 {
		t.Fatalf("long decode: %d entries", len(dst.Entries))
	}
	r.Reset(short.appendWire(nil))
	dst.decodeWire(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if dst.TxID != 2 || len(dst.Entries) != 2 {
		t.Fatalf("short decode after long: tx=%d entries=%d", dst.TxID, len(dst.Entries))
	}
	if !strings.HasSuffix(string(dst.Entries[1].Oid), "/1") {
		t.Fatalf("entry 1 oid %q", dst.Entries[1].Oid)
	}
}

func BenchmarkWireEncode(b *testing.B) {
	for _, c := range wireBenchCases() {
		c := c
		b.Run(c.name, func(b *testing.B) {
			buf := make([]byte, 0, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if buf, err = c.enc(buf[:0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireDecode(b *testing.B) {
	for _, c := range wireBenchCases() {
		c := c
		b.Run(c.name, func(b *testing.B) {
			enc, err := c.enc(nil)
			if err != nil {
				b.Fatal(err)
			}
			r := wire.NewReader(nil)
			r.Reset(enc)
			c.dec(r)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(enc)
				c.dec(r)
			}
			if err := r.Err(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
