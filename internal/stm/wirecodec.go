// Binary wire codecs for the STM protocol payloads (see DESIGN.md "Wire
// format" for the type-ID map). Encoders are append-style and alloc-free;
// decoders write into the payload struct in place, reusing its slices and
// embedded object values, so a connection decoding into a reused payload
// reaches zero steady-state allocations.
package stm

import (
	"fmt"
	"time"

	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/transport"
	"dstm/internal/wire"
)

// Wire type IDs 10–39 are reserved for STM payloads (the band was 10–29
// until the snapshot-read payloads consumed its tail). They are a static
// protocol: never renumber, only append.
const (
	wireIDRetrieveReq        wire.ID = 10
	wireIDRetrieveResp       wire.ID = 11
	wireIDCheckReq           wire.ID = 12
	wireIDCheckResp          wire.ID = 13
	wireIDAcquireReq         wire.ID = 14
	wireIDAcquireResp        wire.ID = 15
	wireIDReleaseReq         wire.ID = 16
	wireIDCommitObjReq       wire.ID = 17
	wireIDCommitObjResp      wire.ID = 18
	wireIDPushMsg            wire.ID = 19
	wireIDDeclineMsg         wire.ID = 20
	wireIDAcquireBatchReq    wire.ID = 21
	wireIDAcquireBatchResp   wire.ID = 22
	wireIDCheckBatchReq      wire.ID = 23
	wireIDCheckBatchResp     wire.ID = 24
	wireIDCommitObjBatchReq  wire.ID = 25
	wireIDCommitObjBatchResp wire.ID = 26
	wireIDSnapReadReq        wire.ID = 27
	wireIDSnapReadResp       wire.ID = 28
	wireIDSnapReadBatchReq   wire.ID = 29
	wireIDSnapReadBatchResp  wire.ID = 30
)

// grow returns s resized to n elements, reusing its backing array when
// capacity allows (retained elements feed value-reuse on decode).
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

func appendVersion(b []byte, v object.Version) []byte {
	b = wire.AppendUvarint(b, v.Clock)
	return wire.AppendVarint(b, int64(v.Node))
}

func readVersion(r *wire.Reader) object.Version {
	return object.Version{Clock: r.Uvarint(), Node: int32(r.Varint())}
}

// readValue decodes an object value, reusing prev when the concrete type
// matches, and enforces that the decoded payload implements object.Value.
func readValue(r *wire.Reader, prev object.Value) object.Value {
	av := r.Any(prev)
	if av == nil {
		return nil
	}
	v, ok := av.(object.Value)
	if !ok {
		r.Fail(fmt.Errorf("%w: %T is not an object value", wire.ErrMalformed, av))
		return nil
	}
	return v
}

func appendSchedRequest(b []byte, q *sched.Request) []byte {
	b = wire.AppendString(b, string(q.Oid))
	b = wire.AppendUvarint(b, q.TxID)
	b = wire.AppendVarint(b, int64(q.Node))
	b = wire.AppendUvarint(b, uint64(q.Mode))
	b = wire.AppendVarint(b, int64(q.MyCL))
	b = wire.AppendVarint(b, int64(q.Elapsed))
	return wire.AppendVarint(b, int64(q.ExpectedRemaining))
}

func readSchedRequest(r *wire.Reader, q *sched.Request) {
	q.Oid = object.ID(r.String())
	q.TxID = r.Uvarint()
	q.Node = transport.NodeID(r.Varint())
	q.Mode = sched.Mode(r.Uvarint())
	q.MyCL = int(r.Varint())
	q.Elapsed = time.Duration(r.Varint())
	q.ExpectedRemaining = time.Duration(r.Varint())
}

func appendSchedQueue(b []byte, qs []sched.Request) []byte {
	b = wire.AppendUvarint(b, uint64(len(qs)))
	for i := range qs {
		b = appendSchedRequest(b, &qs[i])
	}
	return b
}

func readSchedQueue(r *wire.Reader, prev []sched.Request) []sched.Request {
	n := r.SliceLen(7)
	if n == 0 {
		return prev[:0]
	}
	qs := grow(prev, n)
	for i := range qs {
		readSchedRequest(r, &qs[i])
	}
	return qs
}

// ---------------------------------------------------------------------------
// Per-payload codecs. Encoders are value-receiver methods (no escape);
// decoders are pointer-receiver and overwrite in place.

func (q retrieveReq) appendWire(b []byte) []byte {
	b = wire.AppendString(b, string(q.Oid))
	b = wire.AppendUvarint(b, q.TxID)
	b = wire.AppendUvarint(b, uint64(q.Mode))
	b = wire.AppendVarint(b, int64(q.MyCL))
	b = wire.AppendVarint(b, int64(q.Elapsed))
	return wire.AppendVarint(b, int64(q.Remain))
}

func (q *retrieveReq) decodeWire(r *wire.Reader) {
	q.Oid = object.ID(r.String())
	q.TxID = r.Uvarint()
	q.Mode = sched.Mode(r.Uvarint())
	q.MyCL = int(r.Varint())
	q.Elapsed = time.Duration(r.Varint())
	q.Remain = time.Duration(r.Varint())
}

func (q retrieveResp) appendWire(b []byte) ([]byte, error) {
	b = wire.AppendUvarint(b, uint64(q.Status))
	b, err := wire.AppendAny(b, q.Value)
	if err != nil {
		return b, err
	}
	b = appendVersion(b, q.Version)
	b = wire.AppendVarint(b, int64(q.RemoteCL))
	b = wire.AppendVarint(b, int64(q.Backoff))
	return wire.AppendUvarint(b, q.OwnerClock), nil
}

func (q *retrieveResp) decodeWire(r *wire.Reader) {
	q.Status = retrieveStatus(r.Uvarint())
	q.Value = readValue(r, q.Value)
	q.Version = readVersion(r)
	q.RemoteCL = int(r.Varint())
	q.Backoff = time.Duration(r.Varint())
	q.OwnerClock = r.Uvarint()
}

func (q checkReq) appendWire(b []byte) []byte {
	b = wire.AppendString(b, string(q.Oid))
	b = appendVersion(b, q.Ver)
	return wire.AppendUvarint(b, q.TxID)
}

func (q *checkReq) decodeWire(r *wire.Reader) {
	q.Oid = object.ID(r.String())
	q.Ver = readVersion(r)
	q.TxID = r.Uvarint()
}

func (q checkResp) appendWire(b []byte) []byte {
	b = wire.AppendBool(b, q.OK)
	return wire.AppendBool(b, q.NotOwner)
}

func (q *checkResp) decodeWire(r *wire.Reader) {
	q.OK = r.Bool()
	q.NotOwner = r.Bool()
}

func (q acquireReq) appendWire(b []byte) []byte {
	b = wire.AppendString(b, string(q.Oid))
	b = wire.AppendUvarint(b, q.TxID)
	return appendVersion(b, q.Ver)
}

func (q *acquireReq) decodeWire(r *wire.Reader) {
	q.Oid = object.ID(r.String())
	q.TxID = r.Uvarint()
	q.Ver = readVersion(r)
}

func (q acquireResp) appendWire(b []byte) []byte {
	return wire.AppendUvarint(b, uint64(q.Result))
}

func (q *acquireResp) decodeWire(r *wire.Reader) {
	q.Result = uint8(r.Uvarint())
}

func (q releaseReq) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(q.Oids)))
	for _, oid := range q.Oids {
		b = wire.AppendString(b, string(oid))
	}
	return wire.AppendUvarint(b, q.TxID)
}

func (q *releaseReq) decodeWire(r *wire.Reader) {
	n := r.SliceLen(1)
	q.Oids = grow(q.Oids, n)
	for i := range q.Oids {
		q.Oids[i] = object.ID(r.String())
	}
	q.TxID = r.Uvarint()
}

func (q commitObjReq) appendWire(b []byte) ([]byte, error) {
	b = wire.AppendString(b, string(q.Oid))
	b = wire.AppendUvarint(b, q.TxID)
	b = appendVersion(b, q.NewVer)
	b, err := wire.AppendAny(b, q.NewValue)
	if err != nil {
		return b, err
	}
	return wire.AppendVarint(b, int64(q.NewOwner)), nil
}

func (q *commitObjReq) decodeWire(r *wire.Reader) {
	q.Oid = object.ID(r.String())
	q.TxID = r.Uvarint()
	q.NewVer = readVersion(r)
	q.NewValue = readValue(r, q.NewValue)
	q.NewOwner = transport.NodeID(r.Varint())
}

func (q commitObjResp) appendWire(b []byte) []byte {
	return appendSchedQueue(b, q.Queue)
}

func (q *commitObjResp) decodeWire(r *wire.Reader) {
	q.Queue = readSchedQueue(r, q.Queue)
}

func (q pushMsg) appendWire(b []byte) ([]byte, error) {
	b = wire.AppendString(b, string(q.Oid))
	b = wire.AppendUvarint(b, q.TxID)
	b, err := wire.AppendAny(b, q.Value)
	if err != nil {
		return b, err
	}
	b = appendVersion(b, q.Version)
	b = wire.AppendVarint(b, int64(q.Owner))
	b = wire.AppendUvarint(b, q.OwnerClock)
	return wire.AppendVarint(b, int64(q.RemoteCL)), nil
}

func (q *pushMsg) decodeWire(r *wire.Reader) {
	q.Oid = object.ID(r.String())
	q.TxID = r.Uvarint()
	q.Value = readValue(r, q.Value)
	q.Version = readVersion(r)
	q.Owner = transport.NodeID(r.Varint())
	q.OwnerClock = r.Uvarint()
	q.RemoteCL = int(r.Varint())
}

func (q declineMsg) appendWire(b []byte) []byte {
	return wire.AppendString(b, string(q.Oid))
}

func (q *declineMsg) decodeWire(r *wire.Reader) {
	q.Oid = object.ID(r.String())
}

func appendVerEntries(b []byte, es []verEntry) []byte {
	b = wire.AppendUvarint(b, uint64(len(es)))
	for i := range es {
		b = wire.AppendString(b, string(es[i].Oid))
		b = appendVersion(b, es[i].Ver)
	}
	return b
}

func readVerEntries(r *wire.Reader, prev []verEntry) []verEntry {
	n := r.SliceLen(3)
	es := grow(prev, n)
	for i := range es {
		es[i].Oid = object.ID(r.String())
		es[i].Ver = readVersion(r)
	}
	return es
}

func (q acquireBatchReq) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, q.TxID)
	return appendVerEntries(b, q.Entries)
}

func (q *acquireBatchReq) decodeWire(r *wire.Reader) {
	q.TxID = r.Uvarint()
	q.Entries = readVerEntries(r, q.Entries)
}

func (q acquireBatchResp) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(q.Results)))
	for _, res := range q.Results {
		b = wire.AppendUvarint(b, uint64(res))
	}
	return wire.AppendBool(b, q.Applied)
}

func (q *acquireBatchResp) decodeWire(r *wire.Reader) {
	n := r.SliceLen(1)
	q.Results = grow(q.Results, n)
	for i := range q.Results {
		q.Results[i] = uint8(r.Uvarint())
	}
	q.Applied = r.Bool()
}

func (q checkBatchReq) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, q.TxID)
	return appendVerEntries(b, q.Entries)
}

func (q *checkBatchReq) decodeWire(r *wire.Reader) {
	q.TxID = r.Uvarint()
	q.Entries = readVerEntries(r, q.Entries)
}

func (q checkBatchResp) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(q.Results)))
	for i := range q.Results {
		b = wire.AppendBool(b, q.Results[i].OK)
		b = wire.AppendBool(b, q.Results[i].NotOwner)
	}
	return b
}

func (q *checkBatchResp) decodeWire(r *wire.Reader) {
	n := r.SliceLen(2)
	q.Results = grow(q.Results, n)
	for i := range q.Results {
		q.Results[i].OK = r.Bool()
		q.Results[i].NotOwner = r.Bool()
	}
}

func (q commitObjBatchReq) appendWire(b []byte) ([]byte, error) {
	b = wire.AppendUvarint(b, q.TxID)
	b = appendVersion(b, q.NewVer)
	b = wire.AppendVarint(b, int64(q.NewOwner))
	b = wire.AppendUvarint(b, uint64(len(q.Entries)))
	for i := range q.Entries {
		b = wire.AppendString(b, string(q.Entries[i].Oid))
		var err error
		b, err = wire.AppendAny(b, q.Entries[i].NewValue)
		if err != nil {
			return b, err
		}
	}
	return b, nil
}

func (q *commitObjBatchReq) decodeWire(r *wire.Reader) {
	q.TxID = r.Uvarint()
	q.NewVer = readVersion(r)
	q.NewOwner = transport.NodeID(r.Varint())
	n := r.SliceLen(2)
	q.Entries = grow(q.Entries, n)
	for i := range q.Entries {
		e := &q.Entries[i]
		e.Oid = object.ID(r.String())
		e.NewValue = readValue(r, e.NewValue)
	}
}

func (q commitObjBatchResp) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(q.Results)))
	for i := range q.Results {
		b = appendSchedQueue(b, q.Results[i].Queue)
		b = wire.AppendString(b, q.Results[i].Err)
	}
	return b
}

func (q *commitObjBatchResp) decodeWire(r *wire.Reader) {
	n := r.SliceLen(2)
	q.Results = grow(q.Results, n)
	for i := range q.Results {
		q.Results[i].Queue = readSchedQueue(r, q.Results[i].Queue)
		q.Results[i].Err = r.String()
	}
}

func (q snapReadReq) appendWire(b []byte) []byte {
	b = wire.AppendString(b, string(q.Oid))
	b = wire.AppendUvarint(b, q.TxID)
	b = wire.AppendUvarint(b, q.At)
	return wire.AppendBool(b, q.AdvanceOK)
}

func (q *snapReadReq) decodeWire(r *wire.Reader) {
	q.Oid = object.ID(r.String())
	q.TxID = r.Uvarint()
	q.At = r.Uvarint()
	q.AdvanceOK = r.Bool()
}

func (q snapReadResp) appendWire(b []byte) ([]byte, error) {
	b = wire.AppendUvarint(b, uint64(q.Status))
	b, err := wire.AppendAny(b, q.Value)
	if err != nil {
		return b, err
	}
	b = appendVersion(b, q.Version)
	return wire.AppendUvarint(b, q.OwnerClock), nil
}

func (q *snapReadResp) decodeWire(r *wire.Reader) {
	q.Status = uint8(r.Uvarint())
	q.Value = readValue(r, q.Value)
	q.Version = readVersion(r)
	q.OwnerClock = r.Uvarint()
}

func (q snapReadBatchReq) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, q.TxID)
	b = wire.AppendUvarint(b, q.At)
	b = wire.AppendUvarint(b, uint64(len(q.Oids)))
	for _, oid := range q.Oids {
		b = wire.AppendString(b, string(oid))
	}
	return b
}

func (q *snapReadBatchReq) decodeWire(r *wire.Reader) {
	q.TxID = r.Uvarint()
	q.At = r.Uvarint()
	n := r.SliceLen(1)
	q.Oids = grow(q.Oids, n)
	for i := range q.Oids {
		q.Oids[i] = object.ID(r.String())
	}
}

func (q snapReadBatchResp) appendWire(b []byte) ([]byte, error) {
	b = wire.AppendUvarint(b, uint64(len(q.Results)))
	for i := range q.Results {
		b = wire.AppendUvarint(b, uint64(q.Results[i].Status))
		var err error
		b, err = wire.AppendAny(b, q.Results[i].Value)
		if err != nil {
			return b, err
		}
		b = appendVersion(b, q.Results[i].Version)
	}
	return wire.AppendUvarint(b, q.OwnerClock), nil
}

func (q *snapReadBatchResp) decodeWire(r *wire.Reader) {
	n := r.SliceLen(4)
	q.Results = grow(q.Results, n)
	for i := range q.Results {
		res := &q.Results[i]
		res.Status = uint8(r.Uvarint())
		res.Value = readValue(r, res.Value)
		res.Version = readVersion(r)
	}
	q.OwnerClock = r.Uvarint()
}

// ---------------------------------------------------------------------------
// Registration. The encode closures call value-receiver methods directly so
// the registered encode path stays allocation-free; the decode closures
// reuse prev's slices and values when the transport hands one back.

func init() {
	wire.Register(wireIDRetrieveReq, retrieveReq{},
		func(b []byte, v any) ([]byte, error) { return v.(retrieveReq).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q retrieveReq
			if p, ok := prev.(retrieveReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDRetrieveResp, retrieveResp{},
		func(b []byte, v any) ([]byte, error) { return v.(retrieveResp).appendWire(b) },
		func(r *wire.Reader, prev any) any {
			var q retrieveResp
			if p, ok := prev.(retrieveResp); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDCheckReq, checkReq{},
		func(b []byte, v any) ([]byte, error) { return v.(checkReq).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q checkReq
			if p, ok := prev.(checkReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDCheckResp, checkResp{},
		func(b []byte, v any) ([]byte, error) { return v.(checkResp).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q checkResp
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDAcquireReq, acquireReq{},
		func(b []byte, v any) ([]byte, error) { return v.(acquireReq).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q acquireReq
			if p, ok := prev.(acquireReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDAcquireResp, acquireResp{},
		func(b []byte, v any) ([]byte, error) { return v.(acquireResp).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q acquireResp
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDReleaseReq, releaseReq{},
		func(b []byte, v any) ([]byte, error) { return v.(releaseReq).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q releaseReq
			if p, ok := prev.(releaseReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDCommitObjReq, commitObjReq{},
		func(b []byte, v any) ([]byte, error) { return v.(commitObjReq).appendWire(b) },
		func(r *wire.Reader, prev any) any {
			var q commitObjReq
			if p, ok := prev.(commitObjReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDCommitObjResp, commitObjResp{},
		func(b []byte, v any) ([]byte, error) { return v.(commitObjResp).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q commitObjResp
			if p, ok := prev.(commitObjResp); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDPushMsg, pushMsg{},
		func(b []byte, v any) ([]byte, error) { return v.(pushMsg).appendWire(b) },
		func(r *wire.Reader, prev any) any {
			var q pushMsg
			if p, ok := prev.(pushMsg); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDDeclineMsg, declineMsg{},
		func(b []byte, v any) ([]byte, error) { return v.(declineMsg).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q declineMsg
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDAcquireBatchReq, acquireBatchReq{},
		func(b []byte, v any) ([]byte, error) { return v.(acquireBatchReq).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q acquireBatchReq
			if p, ok := prev.(acquireBatchReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDAcquireBatchResp, acquireBatchResp{},
		func(b []byte, v any) ([]byte, error) { return v.(acquireBatchResp).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q acquireBatchResp
			if p, ok := prev.(acquireBatchResp); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDCheckBatchReq, checkBatchReq{},
		func(b []byte, v any) ([]byte, error) { return v.(checkBatchReq).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q checkBatchReq
			if p, ok := prev.(checkBatchReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDCheckBatchResp, checkBatchResp{},
		func(b []byte, v any) ([]byte, error) { return v.(checkBatchResp).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q checkBatchResp
			if p, ok := prev.(checkBatchResp); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDCommitObjBatchReq, commitObjBatchReq{},
		func(b []byte, v any) ([]byte, error) { return v.(commitObjBatchReq).appendWire(b) },
		func(r *wire.Reader, prev any) any {
			var q commitObjBatchReq
			if p, ok := prev.(commitObjBatchReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDCommitObjBatchResp, commitObjBatchResp{},
		func(b []byte, v any) ([]byte, error) { return v.(commitObjBatchResp).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q commitObjBatchResp
			if p, ok := prev.(commitObjBatchResp); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDSnapReadReq, snapReadReq{},
		func(b []byte, v any) ([]byte, error) { return v.(snapReadReq).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q snapReadReq
			if p, ok := prev.(snapReadReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDSnapReadResp, snapReadResp{},
		func(b []byte, v any) ([]byte, error) { return v.(snapReadResp).appendWire(b) },
		func(r *wire.Reader, prev any) any {
			var q snapReadResp
			if p, ok := prev.(snapReadResp); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDSnapReadBatchReq, snapReadBatchReq{},
		func(b []byte, v any) ([]byte, error) { return v.(snapReadBatchReq).appendWire(b), nil },
		func(r *wire.Reader, prev any) any {
			var q snapReadBatchReq
			if p, ok := prev.(snapReadBatchReq); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
	wire.Register(wireIDSnapReadBatchResp, snapReadBatchResp{},
		func(b []byte, v any) ([]byte, error) { return v.(snapReadBatchResp).appendWire(b) },
		func(r *wire.Reader, prev any) any {
			var q snapReadBatchResp
			if p, ok := prev.(snapReadBatchResp); ok {
				q = p
			}
			q.decodeWire(r)
			return q
		})
}
