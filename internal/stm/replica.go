package stm

import (
	"sync"
	"time"

	"dstm/internal/object"
)

// replicaCache is the requester-side read cache of the MVCC read path:
// object copies adopted from fetches are retained with their versions and
// served to later read-write transactions' reads without a retrieve RPC.
//
// Cached reads are speculative replicas, not authoritative state — the
// entry joins the reading transaction's read set with its cached version
// and is validated by version at commit (checkVersions), exactly like a
// read served by the owner. Safety therefore never depends on the cache
// being fresh; the lease and the invalidation hooks only bound how long a
// stale replica keeps causing validation aborts:
//
//   - lease expiry evicts an entry at its next get;
//   - a version check answering "stale" or "not owner" evicts it
//     (ownership-change/epoch invalidation);
//   - a newer fetched copy overwrites it.
//
// Read-only (AtomicRO) transactions never read from here: they must see
// the newest version at or below their pinned snapshot, which only the
// owner's versioned store can decide.
type replicaCache struct {
	lease time.Duration

	mu      sync.Mutex
	entries map[object.ID]replicaEntry
}

type replicaEntry struct {
	val object.Value
	ver object.Version
	exp time.Time
}

func newReplicaCache(lease time.Duration) *replicaCache {
	return &replicaCache{lease: lease, entries: make(map[object.ID]replicaEntry)}
}

// get returns a copy of the cached value for oid when present and within
// its lease. An expired entry is evicted (counted into m, which may be
// nil). Nil-safe.
func (rc *replicaCache) get(oid object.ID, m *Metrics) (object.Value, object.Version, bool) {
	if rc == nil {
		return nil, object.Version{}, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e, ok := rc.entries[oid]
	if !ok {
		return nil, object.Version{}, false
	}
	if time.Now().After(e.exp) {
		delete(rc.entries, oid)
		if m != nil {
			m.replicaInvals.Add(1)
		}
		return nil, object.Version{}, false
	}
	return e.val.Copy(), e.ver, true
}

// put stores val (which the cache takes ownership of — pass a copy) under
// a fresh lease, overwriting any older entry. Nil-safe.
func (rc *replicaCache) put(oid object.ID, val object.Value, ver object.Version) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if old, ok := rc.entries[oid]; ok && ver.Less(old.ver) {
		return // never replace a replica with an older version
	}
	rc.entries[oid] = replicaEntry{val: val, ver: ver, exp: time.Now().Add(rc.lease)}
}

// invalidate drops oid's entry (proven stale or ownership moved),
// counting the eviction into m when an entry existed. Nil-safe.
func (rc *replicaCache) invalidate(oid object.ID, m *Metrics) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.entries[oid]; !ok {
		return
	}
	delete(rc.entries, oid)
	if m != nil {
		m.replicaInvals.Add(1)
	}
}

// len reports the live entry count (tests).
func (rc *replicaCache) len() int {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.entries)
}
