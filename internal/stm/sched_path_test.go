package stm

import (
	"context"
	"sync"
	"testing"
	"time"

	"dstm/internal/core"
	"dstm/internal/object"
	"dstm/internal/sched"
)

// These tests drive the owner-side scheduling path deterministically by
// holding an object's commit lock directly (simulating a transaction in
// validation) and observing how requesters are denied, enqueued, handed
// the object, or timed out.

const fakeValidator uint64 = 0xf00d

func lockObject(t *testing.T, rt *Runtime, oid object.ID) {
	t.Helper()
	ver, ok := rt.Store().Version(oid)
	if !ok {
		t.Fatalf("object %q not owned", oid)
	}
	if res := rt.Store().Lock(oid, fakeValidator, ver); res != object.LockOK {
		t.Fatalf("lock: %v", res)
	}
}

func unlockAndServe(rt *Runtime, oid object.ID) {
	rt.Store().Unlock(oid, fakeValidator)
	rt.serveQueue(oid, rt.policy.OnRelease(oid))
}

func TestTFADeniedAbortRetry(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil) // TFA policy
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	lockObject(t, tc.rts[0], "x")

	done := make(chan error, 1)
	go func() {
		done <- tc.rts[1].Atomic(ctx, "w", func(tx *Txn) error {
			return tx.Write(ctx, "x", &box{N: 2})
		})
	}()

	// The requester must rack up denied aborts while the lock is held.
	deadline := time.Now().Add(5 * time.Second)
	for tc.rts[1].Metrics().Snapshot().Aborts[AbortDenied] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no denied aborts observed")
		}
		time.Sleep(time.Millisecond)
	}
	unlockAndServe(tc.rts[0], "x")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m := tc.rts[1].Metrics().Snapshot()
	if m.Commits != 1 || m.Aborts[AbortDenied] == 0 {
		t.Fatalf("metrics %+v", m)
	}
	// TFA never enqueues.
	if o := tc.rts[0].Metrics().Snapshot(); o.Enqueues != 0 {
		t.Fatalf("TFA enqueued %d requests", o.Enqueues)
	}
}

func newRTSCluster(t *testing.T, n int, opts core.Options) *testCluster {
	return newTestCluster(t, n, nil, func() sched.Policy { return core.New(opts) })
}

func TestRTSEnqueueAndHandOff(t *testing.T) {
	tc := newRTSCluster(t, 2, core.Options{CLThreshold: 5})
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Teach node 1's stats table a long expected execution time so the
	// assigned backoff is comfortably large.
	tc.rts[1].Stats().RecordCommit("w", 500*time.Millisecond)

	lockObject(t, tc.rts[0], "x")
	done := make(chan error, 1)
	go func() {
		done <- tc.rts[1].Atomic(ctx, "w", func(tx *Txn) error {
			return tx.Update(ctx, "x", func(v object.Value) object.Value {
				v.(*box).N = 2
				return v
			})
		})
	}()

	// Wait until the requester is parked in the owner's queue.
	rts := tc.rts[0].Policy().(*core.RTS)
	deadline := time.Now().Add(5 * time.Second)
	for rts.QueueLen("x") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("requester never enqueued")
		}
		time.Sleep(time.Millisecond)
	}

	// Release: the object is handed straight to the parked requester.
	unlockAndServe(tc.rts[0], "x")
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if m := tc.rts[0].Metrics().Snapshot(); m.Enqueues != 1 {
		t.Fatalf("owner enqueues = %d, want 1", m.Enqueues)
	}
	m1 := tc.rts[1].Metrics().Snapshot()
	if m1.Pushes != 1 {
		t.Fatalf("requester pushes = %d, want 1", m1.Pushes)
	}
	if m1.Commits != 1 {
		t.Fatalf("commits = %d", m1.Commits)
	}
	// The enqueued transaction committed WITHOUT aborting: this is RTS's
	// whole point.
	if got := m1.TotalAborts(); got != 0 {
		t.Fatalf("aborts = %d, want 0 (enqueued, not aborted)", got)
	}
	if rts.QueueLen("x") != 0 {
		t.Fatal("queue not drained")
	}
}

func TestRTSQueueTimeoutAborts(t *testing.T) {
	tc := newRTSCluster(t, 2, core.Options{CLThreshold: 5})
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Short expected time → short backoff → timeout while lock held.
	tc.rts[1].Stats().RecordCommit("w", 2*time.Millisecond)

	lockObject(t, tc.rts[0], "x")
	done := make(chan error, 1)
	go func() {
		done <- tc.rts[1].Atomic(ctx, "w", func(tx *Txn) error {
			return tx.Write(ctx, "x", &box{N: 2})
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for tc.rts[1].Metrics().Snapshot().Aborts[AbortQueueTimeout] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no queue-timeout abort observed")
		}
		time.Sleep(time.Millisecond)
	}
	unlockAndServe(tc.rts[0], "x")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// manualTxn fabricates a root transaction with a controlled start time, so
// tests can make the requester look arbitrarily long-running to RTS.
func manualTxn(rt *Runtime, ranFor, expectedTotal time.Duration) *Txn {
	tx := &Txn{
		rt:       rt,
		id:       rt.nextTxID(),
		name:     "manual",
		began:    time.Now().Add(-ranFor),
		expected: expectedTotal,
		start:    rt.ep.Clock().Now(),
		entries:  make(map[object.ID]*objEntry),
	}
	tx.root = tx
	return tx
}

func TestRTSDeclineForwardsToNext(t *testing.T) {
	tc := newRTSCluster(t, 3, core.Options{CLThreshold: 5})
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	lockObject(t, tc.rts[0], "x")
	rts := tc.rts[0].Policy().(*core.RTS)

	// Requester A: long-running, parks first, then abandons its wait.
	txA := manualTxn(tc.rts[1], time.Hour, 2*time.Hour)
	ctxA, cancelA := context.WithCancel(ctx)
	doneA := make(chan error, 1)
	go func() {
		_, err := txA.fetch(ctxA, "x", sched.Write)
		doneA <- err
	}()
	waitFor(t, func() bool { return rts.QueueLen("x") == 1 })

	// Requester B: even longer-running (elapsed must exceed A's queued
	// backoff), parks behind A.
	txB := manualTxn(tc.rts[2], 3*time.Hour, 4*time.Hour)
	doneB := make(chan error, 1)
	go func() {
		_, err := txB.fetch(ctx, "x", sched.Write)
		doneB <- err
	}()
	waitFor(t, func() bool { return rts.QueueLen("x") == 2 })

	// A abandons its wait (its waiter deregisters).
	cancelA()
	if err := <-doneA; err == nil {
		t.Fatal("cancelled fetch reported success")
	}

	// Release: push goes to A first, A declines, owner forwards to B.
	unlockAndServe(tc.rts[0], "x")
	if err := <-doneB; err != nil {
		t.Fatal(err)
	}
	if txB.entries["x"] == nil || txB.entries["x"].val.(*box).N != 1 {
		t.Fatalf("B did not receive the object: %+v", txB.entries["x"])
	}
	if rts.QueueLen("x") != 0 {
		t.Fatal("queue not drained after decline forwarding")
	}
}

func TestRTSReadersReleasedTogether(t *testing.T) {
	tc := newRTSCluster(t, 3, core.Options{CLThreshold: 10})
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "x", &box{N: 7}); err != nil {
		t.Fatal(err)
	}
	lockObject(t, tc.rts[0], "x")
	rts := tc.rts[0].Policy().(*core.RTS)

	var wg sync.WaitGroup
	results := make(chan error, 2)
	ranFor := []time.Duration{time.Hour, 3 * time.Hour}
	txs := []*Txn{
		manualTxn(tc.rts[1], ranFor[0], 2*time.Hour),
		manualTxn(tc.rts[2], ranFor[1], 4*time.Hour),
	}
	for i, tx := range txs {
		wg.Add(1)
		go func(tx *Txn, i int) {
			defer wg.Done()
			// Park the reads one after another to keep queue order stable.
			_, err := tx.fetch(ctx, "x", sched.Read)
			results <- err
		}(tx, i)
		waitFor(t, func() bool { return rts.QueueLen("x") == i+1 })
	}
	unlockAndServe(tc.rts[0], "x")
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Both readers were served by the single release.
	if rts.QueueLen("x") != 0 {
		t.Fatal("queue not drained by read broadcast")
	}
	p1 := tc.rts[1].Metrics().Snapshot().Pushes
	p2 := tc.rts[2].Metrics().Snapshot().Pushes
	if p1 != 1 || p2 != 1 {
		t.Fatalf("pushes = %d, %d; want 1 each", p1, p2)
	}
	for _, tx := range txs {
		if tx.entries["x"] == nil || tx.entries["x"].val.(*box).N != 7 {
			t.Fatalf("reader missing object: %+v", tx.entries["x"])
		}
	}
}

func TestQueueMigratesWithOwnership(t *testing.T) {
	// Requester C parks at node 0 while node 1's transaction is
	// committing object x; the commit migrates x (and the queue) to node
	// 1, which must then hand the object to C.
	tc := newRTSCluster(t, 3, core.Options{CLThreshold: 5})
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	tc.rts[2].Stats().RecordCommit("w", time.Second)

	// Node 1 fetches x, then we lock x at node 0 on node 1's behalf to
	// freeze it "validating" while C requests.
	var ver object.Version
	if err := tc.rts[1].Atomic(ctx, "prefetch", func(tx *Txn) error {
		_, err := tx.Read(ctx, "x")
		if err == nil {
			ver = tx.entries["x"].ver
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	committerTx := uint64(0xbeef)
	if res := tc.rts[0].Store().Lock("x", committerTx, ver); res != object.LockOK {
		t.Fatalf("lock: %v", res)
	}

	// C parks at node 0.
	rts0 := tc.rts[0].Policy().(*core.RTS)
	doneC := make(chan error, 1)
	go func() {
		doneC <- tc.rts[2].Atomic(ctx, "w", func(tx *Txn) error {
			return tx.Update(ctx, "x", func(v object.Value) object.Value {
				v.(*box).N += 100
				return v
			})
		})
	}()
	waitFor(t, func() bool { return rts0.QueueLen("x") == 1 })

	// Simulate node 1's commit of x: migrate ownership + queue to node 1
	// exactly as Txn.publish does.
	newVer := object.Version{Clock: tc.rts[1].ep.Clock().Tick(), Node: 1}
	body, err := tc.rts[1].ep.Call(ctx, 0, KindCommitObject, commitObjReq{
		Oid: "x", TxID: committerTx, NewVer: newVer,
		NewValue: &box{N: 50}, NewOwner: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	queue := body.(commitObjResp).Queue
	if len(queue) != 1 {
		t.Fatalf("migrated queue = %+v", queue)
	}
	tc.rts[1].Store().Install("x", &box{N: 50}, newVer)
	if err := tc.rts[1].Locator().UpdateOwner(ctx, "x", 1); err != nil {
		t.Fatal(err)
	}
	tc.rts[1].Policy().AdoptQueue("x", queue)
	tc.rts[1].serveQueue("x", tc.rts[1].Policy().OnRelease("x"))

	if err := <-doneC; err != nil {
		t.Fatal(err)
	}
	var got int64
	if err := tc.rts[0].Atomic(ctx, "read", func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 150 {
		t.Fatalf("x = %d, want 150 (50 migrated + C's +100)", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
