package stm

import (
	"context"
	"fmt"
	"testing"

	"dstm/internal/object"
)

// TestAcquireBatchPartialFailure drives the all-or-nothing acquire batch
// through its two refusal classes: one entry of a two-object batch fails at
// the owner (commit-locked by another transaction, or stale after a
// competing commit) and the WHOLE batch must roll back — the sibling entry
// that would have locked is not held across the abort, the attempt aborts
// with the refusal's cause, and the retried attempt commits cleanly.
func TestAcquireBatchPartialFailure(t *testing.T) {
	const foreignTx = 0xDEAD

	cases := []struct {
		name string
		// sabotage makes exactly the "b1" entry of the first attempt's
		// acquire batch fail; undo (may be nil) lifts it before attempt 2.
		sabotage  func(t *testing.T, tc *testCluster)
		undo      func(t *testing.T, tc *testCluster)
		wantCause AbortCause
	}{
		{
			name: "one-entry-busy",
			sabotage: func(t *testing.T, tc *testCluster) {
				ver, ok := tc.rts[0].Store().Version("b1")
				if !ok {
					t.Fatal("b1 not installed at node 0")
				}
				if res := tc.rts[0].Store().Lock("b1", foreignTx, ver); res != object.LockOK {
					t.Fatalf("foreign pre-lock of b1 failed: %v", res)
				}
			},
			undo: func(t *testing.T, tc *testCluster) {
				tc.rts[0].Store().Unlock("b1", foreignTx)
			},
			wantCause: AbortLockFailed,
		},
		{
			name: "one-entry-stale",
			sabotage: func(t *testing.T, tc *testCluster) {
				// A competing local commit at the owner bumps b1's version
				// after the committer fetched its copy.
				err := tc.rts[0].Atomic(context.Background(), "intf", func(itx *Txn) error {
					return itx.Write(context.Background(), "b1", &box{N: 99})
				})
				if err != nil {
					t.Fatalf("interfering commit: %v", err)
				}
			},
			wantCause: AbortValidation,
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tc := newTestCluster(t, 2, nil, nil)
			ctx := context.Background()
			if err := tc.rts[0].CreateRoot(ctx, "a1", &box{N: 1}); err != nil {
				t.Fatal(err)
			}
			if err := tc.rts[0].CreateRoot(ctx, "b1", &box{N: 2}); err != nil {
				t.Fatal(err)
			}

			attempt := 0
			err := tc.rts[1].Atomic(ctx, "w", func(tx *Txn) error {
				attempt++
				if attempt == 2 {
					// The sibling entry "a1" would have locked; the batch's
					// atomicity guarantees it was never (or no longer is)
					// held when the aborted attempt hands over to this one.
					if tc.rts[0].Store().Locked("a1") {
						return fmt.Errorf("sibling a1 left locked by aborted batch")
					}
					if c.undo != nil {
						c.undo(t, tc)
					}
				}
				if err := tx.Write(ctx, "a1", &box{N: 10}); err != nil {
					return err
				}
				if err := tx.Write(ctx, "b1", &box{N: 20}); err != nil {
					return err
				}
				if attempt == 1 {
					c.sabotage(t, tc)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("transaction did not recover after batch refusal: %v", err)
			}
			if attempt < 2 {
				t.Fatalf("committed in %d attempt(s); sabotage did not refuse the batch", attempt)
			}

			snap := tc.rts[1].Metrics().Snapshot()
			if snap.Commits != 1 {
				t.Fatalf("commits = %d, want 1", snap.Commits)
			}
			if snap.Aborts[c.wantCause] == 0 {
				t.Fatalf("no %v abort recorded; aborts = %v", c.wantCause, snap.Aborts)
			}

			// The committed values won, including over the interferer's write.
			var a, b int64
			err = tc.rts[0].Atomic(ctx, "r", func(tx *Txn) error {
				va, err := tx.Read(ctx, "a1")
				if err != nil {
					return err
				}
				vb, err := tx.Read(ctx, "b1")
				if err != nil {
					return err
				}
				a, b = va.(*box).N, vb.(*box).N
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if a != 10 || b != 20 {
				t.Fatalf("a1=%d b1=%d, want 10/20", a, b)
			}
		})
	}
}

// TestValidateBatchStaleAbortsInnermost checks closed-nesting attribution
// through the batched validator: when one entry of a validate batch is
// stale, the innermost transaction that OBSERVED that version aborts — the
// child when it fetched the entry itself, the whole root when the child
// inherited the version from an ancestor's snapshot.
func TestValidateBatchStaleAbortsInnermost(t *testing.T) {
	t.Run("own-stale-aborts-child-only", func(t *testing.T) {
		tc := newTestCluster(t, 2, nil, nil)
		ctx := context.Background()
		for _, oid := range []object.ID{"x", "y"} {
			if err := tc.rts[0].CreateRoot(ctx, oid, &box{N: 1}); err != nil {
				t.Fatal(err)
			}
		}
		childAttempts := 0
		err := tc.rts[1].Atomic(ctx, "root", func(tx *Txn) error {
			if _, err := tx.Read(ctx, "x"); err != nil {
				return err
			}
			err := tx.Atomic(ctx, "child", func(child *Txn) error {
				childAttempts++
				if _, err := child.Read(ctx, "y"); err != nil {
					return err
				}
				if childAttempts == 1 {
					// Bump y between the child's fetch and its early
					// validation: the child's OWN read is stale.
					err := tc.rts[0].Atomic(ctx, "intf", func(itx *Txn) error {
						return itx.Write(ctx, "y", &box{N: 50})
					})
					if err != nil {
						return fmt.Errorf("interferer: %v", err)
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			return tx.Write(ctx, "x", &box{N: 7})
		})
		if err != nil {
			t.Fatal(err)
		}
		if childAttempts < 2 {
			t.Fatalf("child committed in %d attempt(s); early validation missed the stale entry", childAttempts)
		}
		snap := tc.rts[1].Metrics().Snapshot()
		if snap.NestedOwn == 0 {
			t.Fatal("stale own read did not abort the inner transaction")
		}
		if snap.Commits != 1 || snap.TotalAborts() != 0 {
			t.Fatalf("root commits=%d aborts=%v; a child-only failure aborted the root", snap.Commits, snap.Aborts)
		}
	})

	t.Run("inherited-stale-aborts-root", func(t *testing.T) {
		tc := newTestCluster(t, 2, nil, nil)
		ctx := context.Background()
		if err := tc.rts[0].CreateRoot(ctx, "y", &box{N: 1}); err != nil {
			t.Fatal(err)
		}
		rootAttempts := 0
		err := tc.rts[1].Atomic(ctx, "root", func(tx *Txn) error {
			rootAttempts++
			// The ROOT observes y's version; the child only copy-on-writes it.
			if _, err := tx.Read(ctx, "y"); err != nil {
				return err
			}
			return tx.Atomic(ctx, "child", func(child *Txn) error {
				if err := child.Write(ctx, "y", &box{N: 8}); err != nil {
					return err
				}
				if rootAttempts == 1 {
					err := tc.rts[0].Atomic(ctx, "intf", func(itx *Txn) error {
						return itx.Write(ctx, "y", &box{N: 60})
					})
					if err != nil {
						return fmt.Errorf("interferer: %v", err)
					}
				}
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if rootAttempts < 2 {
			t.Fatal("root committed first try; inherited staleness was not detected")
		}
		snap := tc.rts[1].Metrics().Snapshot()
		if snap.Aborts[AbortValidation] == 0 {
			t.Fatalf("no root validation abort; aborts = %v", snap.Aborts)
		}
		if snap.NestedOwn != 0 {
			t.Fatalf("nestedOwn = %d; an inherited-stale entry must not be charged to the child", snap.NestedOwn)
		}
		if snap.Commits != 1 {
			t.Fatalf("commits = %d, want 1", snap.Commits)
		}
	})
}

// TestCommitMsgsBoundEightObjectsTwoOwners pins the headline O(m) bound of
// the owner-grouped pipeline: a commit writing 8 objects spread over 2
// owners must cost at most 8 protocol messages (it used to cost ≥24 with
// per-object locate+acquire+publish RPCs). The expected shape is 2 acquire
// batches + 1 migration batch + ≤2 directory update batches.
func TestCommitMsgsBoundEightObjectsTwoOwners(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()
	var oids []object.ID
	for i := 0; i < 8; i++ {
		oid := object.ID(fmt.Sprintf("obj%d", i))
		if err := tc.rts[i%2].CreateRoot(ctx, oid, &box{N: int64(i)}); err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}

	err := tc.rts[0].Atomic(ctx, "w8", func(tx *Txn) error {
		for i, oid := range oids {
			if err := tx.Write(ctx, oid, &box{N: int64(100 + i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := tc.rts[0].Metrics().Snapshot()
	if snap.Commits != 1 {
		t.Fatalf("commits = %d, want exactly 1", snap.Commits)
	}
	if snap.CommitMsgs == 0 {
		t.Fatal("commit pipeline accounted no messages; the meter is broken")
	}
	if snap.CommitMsgs > 8 {
		t.Fatalf("commit of 8 objects on 2 owners cost %d messages, want ≤8 (O(m) owner batching)", snap.CommitMsgs)
	}
	if mpc := snap.MsgsPerCommit(); mpc > 8 {
		t.Fatalf("MsgsPerCommit = %.1f, want ≤8", mpc)
	}
	if snap.CommitRounds == 0 || snap.CommitRounds > 4 {
		t.Fatalf("commit used %d batch rounds, want 1..4", snap.CommitRounds)
	}

	// Every write landed, and ownership of the remote half migrated here.
	for i, oid := range oids {
		val, _, _, ok := tc.rts[0].Store().Snapshot(oid)
		if !ok {
			t.Fatalf("%s did not migrate to the committer", oid)
		}
		if got := val.(*box).N; got != int64(100+i) {
			t.Fatalf("%s = %d, want %d", oid, got, 100+i)
		}
	}
}
