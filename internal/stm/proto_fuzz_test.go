package stm

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/transport"
	"dstm/internal/wire"
)

// fuzzVal is a registered object.Value so protocol payloads carrying
// interface-typed values can travel through gob in this test.
type fuzzVal struct{ X int64 }

func (v fuzzVal) Copy() object.Value { return v }

func init() { object.Register(fuzzVal{}) }

// roundTrip passes a message carrying payload through BOTH wire formats —
// gob (the legacy baseline) and the binary codec — and requires them to
// agree: the binary format must be a drop-in replacement, so every fuzz
// target in this file doubles as a differential oracle. It returns the
// gob-decoded payload.
func roundTrip(t *testing.T, payload any) any {
	t.Helper()
	in := transport.Message{From: 1, To: 2, Kind: KindRetrieve, Payload: payload}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	var out transport.Message
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode %T: %v", payload, err)
	}

	enc, err := transport.AppendMessage(nil, &in)
	if err != nil {
		t.Fatalf("binary encode %T: %v", payload, err)
	}
	var bout transport.Message
	if err := transport.DecodeMessage(wire.NewReader(enc), &bout); err != nil {
		t.Fatalf("binary decode %T: %v", payload, err)
	}
	if !reflect.DeepEqual(bout.Payload, out.Payload) {
		t.Fatalf("binary and gob decodes disagree for %T:\n gob:    %+v\n binary: %+v",
			payload, out.Payload, bout.Payload)
	}
	return out.Payload
}

// FuzzRetrieveRoundTrip round-trips the retrieve request/response pair —
// the protocol's hottest messages — through the gob wire format. Every
// field must survive: a corrupted Elapsed or Backoff would silently skew
// the RTS scheduling decision at the owner.
func FuzzRetrieveRoundTrip(f *testing.F) {
	f.Add("obj/a", uint64(1), uint8(1), 3, int64(5e6), int64(2e6), uint8(2), int64(7e6), uint64(9), int32(1), int64(11))
	f.Add("", uint64(0), uint8(0), -1, int64(-1), int64(0), uint8(3), int64(1)<<62, ^uint64(0), int32(-2), int64(0))
	f.Fuzz(func(t *testing.T, oid string, tx uint64, mode uint8, myCL int,
		elapsed, remain int64, status uint8, backoff int64, ownClock uint64, vnode int32, val int64) {
		req := retrieveReq{
			Oid: object.ID(oid), TxID: tx, Mode: sched.Mode(mode), MyCL: myCL,
			Elapsed: time.Duration(elapsed), Remain: time.Duration(remain),
		}
		if got := roundTrip(t, req).(retrieveReq); got != req {
			t.Fatalf("retrieveReq changed: %+v -> %+v", req, got)
		}
		resp := retrieveResp{
			Status: retrieveStatus(status), Value: fuzzVal{X: val},
			Version:  object.Version{Clock: ownClock, Node: vnode},
			RemoteCL: myCL, Backoff: time.Duration(backoff), OwnerClock: ownClock,
		}
		if got := roundTrip(t, resp).(retrieveResp); got != resp {
			t.Fatalf("retrieveResp changed: %+v -> %+v", resp, got)
		}
	})
}

// FuzzCommitPushRoundTrip round-trips the ownership-migration pair: the
// commit request that moves an object (and, in its reply, the requester
// queue) and the push that hands it to a parked transaction.
func FuzzCommitPushRoundTrip(f *testing.F) {
	f.Add("obj/x", uint64(3), uint64(17), int32(2), int64(-4), uint64(23), int32(0), uint8(1), int64(6e6), int64(8e6))
	f.Add("", uint64(0), uint64(0), int32(-1), int64(0), ^uint64(0), int32(5), uint8(0), int64(0), int64(-1))
	f.Fuzz(func(t *testing.T, oid string, tx, verClock uint64, newOwner int32, val int64,
		pushClock uint64, qnode int32, qmode uint8, qElapsed, qRemain int64) {
		commit := commitObjReq{
			Oid: object.ID(oid), TxID: tx,
			NewVer:   object.Version{Clock: verClock, Node: newOwner},
			NewValue: fuzzVal{X: val}, NewOwner: transport.NodeID(newOwner),
		}
		if got := roundTrip(t, commit).(commitObjReq); got != commit {
			t.Fatalf("commitObjReq changed: %+v -> %+v", commit, got)
		}

		qreq := sched.Request{
			Oid: object.ID(oid), TxID: tx, Node: transport.NodeID(qnode),
			Mode: sched.Mode(qmode), MyCL: int(qnode),
			Elapsed: time.Duration(qElapsed), ExpectedRemaining: time.Duration(qRemain),
		}
		cr := commitObjResp{Queue: []sched.Request{qreq}}
		gotCR := roundTrip(t, cr).(commitObjResp)
		if len(gotCR.Queue) != 1 || gotCR.Queue[0] != qreq {
			t.Fatalf("commitObjResp queue changed: %+v -> %+v", cr, gotCR)
		}

		push := pushMsg{
			Oid: object.ID(oid), TxID: tx, Value: fuzzVal{X: val},
			Version: object.Version{Clock: verClock, Node: newOwner},
			Owner:   transport.NodeID(newOwner), OwnerClock: pushClock, RemoteCL: int(qnode),
		}
		if got := roundTrip(t, push).(pushMsg); got != push {
			t.Fatalf("pushMsg changed: %+v -> %+v", push, got)
		}
	})
}

// FuzzAcquireCheckBatchRoundTrip round-trips the owner-grouped lock and
// validation batches. The per-entry result slices must survive verbatim and
// stay parallel to the request entries: a shifted or truncated Results
// slice would make the committer misattribute which entry refused the
// batch (and hence which transaction to abort).
func FuzzAcquireCheckBatchRoundTrip(f *testing.F) {
	f.Add("obj/a", "obj/b", uint64(7), uint64(5), int32(1), byte(2), true, true, false)
	f.Add("", "x", uint64(0), ^uint64(0), int32(-3), byte(0), false, false, true)
	f.Fuzz(func(t *testing.T, oidA, oidB string, tx, verClock uint64, vnode int32,
		lockRes byte, applied, ok, notOwner bool) {
		entries := []verEntry{
			{Oid: object.ID(oidA), Ver: object.Version{Clock: verClock, Node: vnode}},
			{Oid: object.ID(oidB), Ver: object.Version{Clock: ^verClock, Node: -vnode}},
		}

		areq := acquireBatchReq{TxID: tx, Entries: entries}
		if got := roundTrip(t, areq).(acquireBatchReq); !reflect.DeepEqual(got, areq) {
			t.Fatalf("acquireBatchReq changed: %+v -> %+v", areq, got)
		}
		aresp := acquireBatchResp{Results: []uint8{lockRes, lockRes ^ 1}, Applied: applied}
		if got := roundTrip(t, aresp).(acquireBatchResp); !reflect.DeepEqual(got, aresp) {
			t.Fatalf("acquireBatchResp changed: %+v -> %+v", aresp, got)
		}

		creq := checkBatchReq{TxID: tx, Entries: entries}
		if got := roundTrip(t, creq).(checkBatchReq); !reflect.DeepEqual(got, creq) {
			t.Fatalf("checkBatchReq changed: %+v -> %+v", creq, got)
		}
		cresp := checkBatchResp{Results: []checkBatchResult{
			{OK: ok, NotOwner: notOwner},
			{OK: !ok, NotOwner: !notOwner},
		}}
		if got := roundTrip(t, cresp).(checkBatchResp); !reflect.DeepEqual(got, cresp) {
			t.Fatalf("checkBatchResp changed: %+v -> %+v", cresp, got)
		}
	})
}

// FuzzSnapshotReadRoundTrip round-trips the MVCC snapshot-read pair. The
// Version and OwnerClock fields must survive exactly: the served version is
// what a later upgrade validates against, and the owner clock is what makes
// a snapshot-abort retry self-correcting (the merged clock pins the next
// attempt's snapshot at or above the owner's tip).
func FuzzSnapshotReadRoundTrip(f *testing.F) {
	f.Add("obj/a", uint64(7), uint64(12), true, uint8(0), uint64(9), int32(1), int64(5), uint64(13))
	f.Add("", uint64(0), ^uint64(0), false, uint8(3), uint64(0), int32(-2), int64(0), uint64(0))
	f.Fuzz(func(t *testing.T, oid string, tx, at uint64, advanceOK bool,
		status uint8, verClock uint64, vnode int32, val int64, ownClock uint64) {
		req := snapReadReq{Oid: object.ID(oid), TxID: tx, At: at, AdvanceOK: advanceOK}
		if got := roundTrip(t, req).(snapReadReq); got != req {
			t.Fatalf("snapReadReq changed: %+v -> %+v", req, got)
		}
		resp := snapReadResp{
			Status: status, Value: fuzzVal{X: val},
			Version:    object.Version{Clock: verClock, Node: vnode},
			OwnerClock: ownClock,
		}
		if got := roundTrip(t, resp).(snapReadResp); got != resp {
			t.Fatalf("snapReadResp changed: %+v -> %+v", resp, got)
		}
	})
}

// FuzzSnapshotReadBatchRoundTrip round-trips the batched snapshot read. The
// Results slice must stay parallel to the request's Oids: a shifted entry
// would hand the reader the wrong object's value under the right key.
func FuzzSnapshotReadBatchRoundTrip(f *testing.F) {
	f.Add("obj/a", "obj/b", uint64(7), uint64(12), uint8(0), uint8(2), uint64(9), int32(1), int64(5), uint64(13))
	f.Add("", "x", uint64(0), ^uint64(0), uint8(3), uint8(1), uint64(0), int32(-2), int64(0), uint64(0))
	f.Fuzz(func(t *testing.T, oidA, oidB string, tx, at uint64, statusA, statusB uint8,
		verClock uint64, vnode int32, val int64, ownClock uint64) {
		req := snapReadBatchReq{TxID: tx, At: at, Oids: []object.ID{object.ID(oidA), object.ID(oidB)}}
		if got := roundTrip(t, req).(snapReadBatchReq); !reflect.DeepEqual(got, req) {
			t.Fatalf("snapReadBatchReq changed: %+v -> %+v", req, got)
		}
		resp := snapReadBatchResp{
			Results: []snapReadResult{
				{Status: statusA, Value: fuzzVal{X: val}, Version: object.Version{Clock: verClock, Node: vnode}},
				{Status: statusB, Value: fuzzVal{X: -val}, Version: object.Version{Clock: ^verClock, Node: -vnode}},
			},
			OwnerClock: ownClock,
		}
		got := roundTrip(t, resp).(snapReadBatchResp)
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("snapReadBatchResp changed: %+v -> %+v", resp, got)
		}
	})
}

// FuzzCommitObjBatchRoundTrip round-trips the migration batch: the request
// carrying every new value for one owner, and the reply whose per-entry
// results mix surrendered requester queues with per-entry error strings.
func FuzzCommitObjBatchRoundTrip(f *testing.F) {
	f.Add("obj/x", "obj/y", uint64(3), uint64(17), int32(2), int64(-4), byte(1), int64(6e6), "")
	f.Add("", "q", ^uint64(0), uint64(0), int32(-1), int64(0), byte(0), int64(-1), "store: gone")
	f.Fuzz(func(t *testing.T, oidA, oidB string, tx, verClock uint64, newOwner int32,
		val int64, qmode byte, qElapsed int64, errStr string) {
		req := commitObjBatchReq{
			TxID:     tx,
			NewVer:   object.Version{Clock: verClock, Node: newOwner},
			NewOwner: transport.NodeID(newOwner),
			Entries: []commitObjBatchEntry{
				{Oid: object.ID(oidA), NewValue: fuzzVal{X: val}},
				{Oid: object.ID(oidB), NewValue: fuzzVal{X: -val}},
			},
		}
		if got := roundTrip(t, req).(commitObjBatchReq); !reflect.DeepEqual(got, req) {
			t.Fatalf("commitObjBatchReq changed: %+v -> %+v", req, got)
		}

		resp := commitObjBatchResp{Results: []commitObjBatchResult{
			{Queue: []sched.Request{{
				Oid: object.ID(oidA), TxID: tx, Node: transport.NodeID(newOwner),
				Mode: sched.Mode(qmode), MyCL: int(newOwner),
				Elapsed: time.Duration(qElapsed), ExpectedRemaining: time.Duration(-qElapsed),
			}}},
			{Err: errStr},
		}}
		got := roundTrip(t, resp).(commitObjBatchResp)
		if len(got.Results) != 2 || !reflect.DeepEqual(got.Results[0].Queue, resp.Results[0].Queue) ||
			got.Results[1].Err != errStr || got.Results[0].Err != "" {
			t.Fatalf("commitObjBatchResp changed: %+v -> %+v", resp, got)
		}
	})
}
