package stm

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/transport"
)

// fuzzVal is a registered object.Value so protocol payloads carrying
// interface-typed values can travel through gob in this test.
type fuzzVal struct{ X int64 }

func (v fuzzVal) Copy() object.Value { return v }

func init() { object.Register(fuzzVal{}) }

// roundTrip gob-encodes a message carrying payload and returns the decoded
// payload, failing the test on any codec error.
func roundTrip(t *testing.T, payload any) any {
	t.Helper()
	in := transport.Message{From: 1, To: 2, Kind: KindRetrieve, Payload: payload}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	var out transport.Message
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode %T: %v", payload, err)
	}
	return out.Payload
}

// FuzzRetrieveRoundTrip round-trips the retrieve request/response pair —
// the protocol's hottest messages — through the gob wire format. Every
// field must survive: a corrupted Elapsed or Backoff would silently skew
// the RTS scheduling decision at the owner.
func FuzzRetrieveRoundTrip(f *testing.F) {
	f.Add("obj/a", uint64(1), uint8(1), 3, int64(5e6), int64(2e6), uint8(2), int64(7e6), uint64(9), int32(1), int64(11))
	f.Add("", uint64(0), uint8(0), -1, int64(-1), int64(0), uint8(3), int64(1)<<62, ^uint64(0), int32(-2), int64(0))
	f.Fuzz(func(t *testing.T, oid string, tx uint64, mode uint8, myCL int,
		elapsed, remain int64, status uint8, backoff int64, ownClock uint64, vnode int32, val int64) {
		req := retrieveReq{
			Oid: object.ID(oid), TxID: tx, Mode: sched.Mode(mode), MyCL: myCL,
			Elapsed: time.Duration(elapsed), Remain: time.Duration(remain),
		}
		if got := roundTrip(t, req).(retrieveReq); got != req {
			t.Fatalf("retrieveReq changed: %+v -> %+v", req, got)
		}
		resp := retrieveResp{
			Status: retrieveStatus(status), Value: fuzzVal{X: val},
			Version:  object.Version{Clock: ownClock, Node: vnode},
			RemoteCL: myCL, Backoff: time.Duration(backoff), OwnerClock: ownClock,
		}
		if got := roundTrip(t, resp).(retrieveResp); got != resp {
			t.Fatalf("retrieveResp changed: %+v -> %+v", resp, got)
		}
	})
}

// FuzzCommitPushRoundTrip round-trips the ownership-migration pair: the
// commit request that moves an object (and, in its reply, the requester
// queue) and the push that hands it to a parked transaction.
func FuzzCommitPushRoundTrip(f *testing.F) {
	f.Add("obj/x", uint64(3), uint64(17), int32(2), int64(-4), uint64(23), int32(0), uint8(1), int64(6e6), int64(8e6))
	f.Add("", uint64(0), uint64(0), int32(-1), int64(0), ^uint64(0), int32(5), uint8(0), int64(0), int64(-1))
	f.Fuzz(func(t *testing.T, oid string, tx, verClock uint64, newOwner int32, val int64,
		pushClock uint64, qnode int32, qmode uint8, qElapsed, qRemain int64) {
		commit := commitObjReq{
			Oid: object.ID(oid), TxID: tx,
			NewVer:   object.Version{Clock: verClock, Node: newOwner},
			NewValue: fuzzVal{X: val}, NewOwner: transport.NodeID(newOwner),
		}
		if got := roundTrip(t, commit).(commitObjReq); got != commit {
			t.Fatalf("commitObjReq changed: %+v -> %+v", commit, got)
		}

		qreq := sched.Request{
			Oid: object.ID(oid), TxID: tx, Node: transport.NodeID(qnode),
			Mode: sched.Mode(qmode), MyCL: int(qnode),
			Elapsed: time.Duration(qElapsed), ExpectedRemaining: time.Duration(qRemain),
		}
		cr := commitObjResp{Queue: []sched.Request{qreq}}
		gotCR := roundTrip(t, cr).(commitObjResp)
		if len(gotCR.Queue) != 1 || gotCR.Queue[0] != qreq {
			t.Fatalf("commitObjResp queue changed: %+v -> %+v", cr, gotCR)
		}

		push := pushMsg{
			Oid: object.ID(oid), TxID: tx, Value: fuzzVal{X: val},
			Version: object.Version{Clock: verClock, Node: newOwner},
			Owner:   transport.NodeID(newOwner), OwnerClock: pushClock, RemoteCL: int(qnode),
		}
		if got := roundTrip(t, push).(pushMsg); got != push {
			t.Fatalf("pushMsg changed: %+v -> %+v", push, got)
		}
	})
}
