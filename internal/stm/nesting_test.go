package stm

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dstm/internal/object"
)

func TestNestedCommitMergesIntoParent(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "a", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tc.rts[1].CreateRoot(ctx, "b", &box{N: 2}); err != nil {
		t.Fatal(err)
	}

	rt := tc.rts[0]
	err := rt.Atomic(ctx, "parent", func(tx *Txn) error {
		if err := tx.Write(ctx, "a", &box{N: 10}); err != nil {
			return err
		}
		// Inner transaction fetches and writes a remote object.
		if err := tx.Atomic(ctx, "inner", func(c *Txn) error {
			return c.Write(ctx, "b", &box{N: 20})
		}); err != nil {
			return err
		}
		// The inner write is visible to the parent after the inner commit.
		v, err := tx.Read(ctx, "b")
		if err != nil {
			return err
		}
		if v.(*box).N != 20 {
			return fmt.Errorf("parent sees %d, want 20", v.(*box).N)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Both writes committed atomically at top level.
	for oid, want := range map[object.ID]int64{"a": 10, "b": 20} {
		var got int64
		if err := tc.rts[1].Atomic(ctx, "read", func(tx *Txn) error {
			v, err := tx.Read(ctx, oid)
			if err != nil {
				return err
			}
			got = v.(*box).N
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s = %d, want %d", oid, got, want)
		}
	}
	m := rt.Metrics().Snapshot()
	if m.NestedCommits != 1 {
		t.Fatalf("nested commits = %d, want 1", m.NestedCommits)
	}
}

func TestInnerAbortRetriesOnlyInner(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()
	if err := rt.CreateRoot(ctx, "x", &box{N: 0}); err != nil {
		t.Fatal(err)
	}

	parentRuns, childRuns := 0, 0
	err := rt.Atomic(ctx, "parent", func(tx *Txn) error {
		parentRuns++
		if err := tx.Write(ctx, "x", &box{N: 5}); err != nil {
			return err
		}
		return tx.Atomic(ctx, "inner", func(c *Txn) error {
			childRuns++
			if childRuns == 1 {
				// Simulate a conflict attributed to the inner transaction
				// (e.g. a stale read it made).
				return &abortError{target: c, cause: AbortValidation}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if parentRuns != 1 {
		t.Fatalf("parent ran %d times; inner abort must not abort the parent", parentRuns)
	}
	if childRuns != 2 {
		t.Fatalf("child ran %d times, want 2", childRuns)
	}
	m := rt.Metrics().Snapshot()
	if m.NestedOwn != 1 {
		t.Fatalf("nestedOwn = %d, want 1", m.NestedOwn)
	}
	if m.NestedParent != 0 {
		t.Fatalf("nestedParent = %d, want 0", m.NestedParent)
	}
}

func TestParentAbortRollsBackCommittedChildren(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()
	if err := rt.CreateRoot(ctx, "x", &box{N: 1}); err != nil {
		t.Fatal(err)
	}

	attempts := 0
	err := rt.Atomic(ctx, "parent", func(tx *Txn) error {
		attempts++
		// Two inner transactions commit into the parent.
		for i := 0; i < 2; i++ {
			if err := tx.Atomic(ctx, "inner", func(c *Txn) error {
				return c.Update(ctx, "x", func(v object.Value) object.Value {
					v.(*box).N++
					return v
				})
			}); err != nil {
				return err
			}
		}
		if attempts == 1 {
			// Parent-level conflict: both committed children roll back.
			return &abortError{target: tx, cause: AbortDenied}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics().Snapshot()
	if m.NestedParent != 2 {
		t.Fatalf("nestedParent = %d, want 2 (both children rolled back)", m.NestedParent)
	}
	if m.NestedCommits != 4 {
		t.Fatalf("nestedCommits = %d, want 4 (2 per attempt)", m.NestedCommits)
	}
	if got := m.Aborts[AbortDenied]; got != 1 {
		t.Fatalf("denied aborts = %d", got)
	}
	// Only the second attempt's increments survive: 1 + 2 = 3.
	var got int64
	if err := rt.Atomic(ctx, "read", func(tx *Txn) error {
		v, err := tx.Read(ctx, "x")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("x = %d, want 3 (first attempt's children leaked)", got)
	}
}

func TestGrandchildAccounting(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()

	childRuns := 0
	err := rt.Atomic(ctx, "root", func(tx *Txn) error {
		return tx.Atomic(ctx, "child", func(c *Txn) error {
			childRuns++
			// A grandchild commits into the child...
			if err := c.Atomic(ctx, "grandchild", func(g *Txn) error { return nil }); err != nil {
				return err
			}
			if childRuns == 1 {
				// ...then the child aborts: the grandchild is a
				// parent-caused nested abort.
				return &abortError{target: c, cause: AbortValidation}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics().Snapshot()
	if m.NestedOwn != 1 {
		t.Fatalf("nestedOwn = %d, want 1 (the child)", m.NestedOwn)
	}
	if m.NestedParent != 1 {
		t.Fatalf("nestedParent = %d, want 1 (the grandchild)", m.NestedParent)
	}
}

func TestRunningChildDiesWithParent(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()

	rootAttempts := 0
	err := rt.Atomic(ctx, "root", func(tx *Txn) error {
		rootAttempts++
		err := tx.Atomic(ctx, "child", func(c *Txn) error {
			if rootAttempts == 1 {
				// A conflict inside the child is attributed to the ROOT
				// (e.g. a root-level read went stale): the child must not
				// retry; the error unwinds.
				return &abortError{target: tx, cause: AbortValidation}
			}
			return nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootAttempts != 2 {
		t.Fatalf("root attempts = %d, want 2", rootAttempts)
	}
	m := rt.Metrics().Snapshot()
	// The running child died with the parent: one parent-caused abort.
	if m.NestedParent != 1 {
		t.Fatalf("nestedParent = %d, want 1", m.NestedParent)
	}
	if m.NestedOwn != 0 {
		t.Fatalf("nestedOwn = %d, want 0", m.NestedOwn)
	}
}

func TestInnerAbortDiscardsInnerWritesOnly(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()
	if err := rt.CreateRoot(ctx, "p", &pair{A: 1, B: 1}); err != nil {
		t.Fatal(err)
	}

	childRuns := 0
	err := rt.Atomic(ctx, "root", func(tx *Txn) error {
		if err := tx.Write(ctx, "p", &pair{A: 100, B: 1}); err != nil {
			return err
		}
		return tx.Atomic(ctx, "child", func(c *Txn) error {
			childRuns++
			if childRuns == 1 {
				// Child overwrites via copy-on-write, then aborts.
				if err := c.Write(ctx, "p", &pair{A: 100, B: 200}); err != nil {
					return err
				}
				return &abortError{target: c, cause: AbortValidation}
			}
			// On retry, the child must see the PARENT's value, not its own
			// aborted write.
			v, err := c.Read(ctx, "p")
			if err != nil {
				return err
			}
			if got := v.(*pair); got.A != 100 || got.B != 1 {
				return fmt.Errorf("child retry sees %+v, want parent's {100 1}", got)
			}
			return c.Write(ctx, "p", &pair{A: 100, B: 300})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var got pair
	if err := rt.Atomic(ctx, "read", func(tx *Txn) error {
		v, err := tx.Read(ctx, "p")
		if err != nil {
			return err
		}
		got = *v.(*pair)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got.A != 100 || got.B != 300 {
		t.Fatalf("final = %+v, want {100 300}", got)
	}
}

func TestUserErrorFromChildPropagatesWithoutRetry(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	rt := tc.rts[0]
	ctx := context.Background()

	boom := errors.New("child boom")
	childRuns := 0
	err := rt.Atomic(ctx, "root", func(tx *Txn) error {
		err := tx.Atomic(ctx, "child", func(c *Txn) error {
			childRuns++
			return boom
		})
		if !errors.Is(err, boom) {
			return fmt.Errorf("child error = %v, want boom", err)
		}
		// The paper's motivating pattern: respond to a nested failure with
		// an alternative nested action, without aborting the parent.
		return tx.Atomic(ctx, "fallback", func(c *Txn) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if childRuns != 1 {
		t.Fatalf("child ran %d times, want 1", childRuns)
	}
}
