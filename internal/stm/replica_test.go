package stm

import (
	"context"
	"testing"
	"time"

	"dstm/internal/object"
)

func TestReplicaCacheTable(t *testing.T) {
	oid := object.ID("rc/x")
	v1 := object.Version{Clock: 1}
	v2 := object.Version{Clock: 2}
	cases := []struct {
		name    string
		lease   time.Duration
		run     func(t *testing.T, rc *replicaCache, m *Metrics)
		wantLen int
		wantInv uint64
	}{
		{
			name:  "hit within lease",
			lease: time.Hour,
			run: func(t *testing.T, rc *replicaCache, m *Metrics) {
				rc.put(oid, &box{N: 7}, v1)
				val, ver, ok := rc.get(oid, m)
				if !ok || ver != v1 || val.(*box).N != 7 {
					t.Fatalf("get = %v %v %v", val, ver, ok)
				}
			},
			wantLen: 1,
		},
		{
			name:  "lease expiry evicts at get",
			lease: time.Nanosecond,
			run: func(t *testing.T, rc *replicaCache, m *Metrics) {
				rc.put(oid, &box{N: 7}, v1)
				time.Sleep(2 * time.Millisecond)
				if _, _, ok := rc.get(oid, m); ok {
					t.Fatal("expired entry served")
				}
			},
			wantLen: 0,
			wantInv: 1,
		},
		{
			name:  "older version never replaces newer",
			lease: time.Hour,
			run: func(t *testing.T, rc *replicaCache, m *Metrics) {
				rc.put(oid, &box{N: 2}, v2)
				rc.put(oid, &box{N: 1}, v1) // stale write-back must lose
				val, ver, ok := rc.get(oid, m)
				if !ok || ver != v2 || val.(*box).N != 2 {
					t.Fatalf("stale put replaced newer entry: %v %v %v", val, ver, ok)
				}
			},
			wantLen: 1,
		},
		{
			name:  "newer version overwrites",
			lease: time.Hour,
			run: func(t *testing.T, rc *replicaCache, m *Metrics) {
				rc.put(oid, &box{N: 1}, v1)
				rc.put(oid, &box{N: 2}, v2)
				_, ver, _ := rc.get(oid, m)
				if ver != v2 {
					t.Fatalf("ver = %v, want v2", ver)
				}
			},
			wantLen: 1,
		},
		{
			name:  "invalidate drops and counts",
			lease: time.Hour,
			run: func(t *testing.T, rc *replicaCache, m *Metrics) {
				rc.put(oid, &box{N: 1}, v1)
				rc.invalidate(oid, m)
				rc.invalidate(oid, m) // second is a no-op, not double-counted
				if _, _, ok := rc.get(oid, m); ok {
					t.Fatal("invalidated entry served")
				}
			},
			wantLen: 0,
			wantInv: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rc := newReplicaCache(c.lease)
			var m Metrics
			c.run(t, rc, &m)
			if got := rc.len(); got != c.wantLen {
				t.Fatalf("len = %d, want %d", got, c.wantLen)
			}
			if got := m.replicaInvals.Load(); got != c.wantInv {
				t.Fatalf("invals = %d, want %d", got, c.wantInv)
			}
		})
	}
}

func TestReplicaCacheNilSafe(t *testing.T) {
	var rc *replicaCache
	rc.put("x", &box{}, object.Version{})
	rc.invalidate("x", nil)
	if _, _, ok := rc.get("x", nil); ok {
		t.Fatal("nil cache served a value")
	}
	if rc.len() != 0 {
		t.Fatal("nil cache has entries")
	}
}

func TestReplicaCacheServesRepeatReads(t *testing.T) {
	tc := newTestCluster(t, 2, nil, nil)
	tc.rts[1].EnableReplicaCache(time.Hour)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "rc/r", &box{N: 4}); err != nil {
		t.Fatal(err)
	}
	read := func() int64 {
		t.Helper()
		var got int64
		if err := tc.rts[1].Atomic(ctx, "r", func(tx *Txn) error {
			v, err := tx.Read(ctx, "rc/r")
			if err != nil {
				return err
			}
			got = v.(*box).N
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := read(); got != 4 {
		t.Fatalf("first read %d", got)
	}
	before := tc.rts[1].Metrics().Snapshot()
	if got := read(); got != 4 {
		t.Fatalf("second read %d", got)
	}
	after := tc.rts[1].Metrics().Snapshot()
	if after.ReplicaHits == before.ReplicaHits {
		t.Fatal("second read did not hit the replica cache")
	}
	if after.Retrieves != before.Retrieves {
		t.Fatal("cache hit still issued a retrieve RPC")
	}
}

// TestReplicaCacheInvalidatedOnOwnershipChange: a cached replica goes stale
// when another node takes ownership and commits; the next transaction that
// reads through the cache must fail validation, evict the entry, and
// converge on the new value.
func TestReplicaCacheInvalidatedOnOwnershipChange(t *testing.T) {
	tc := newTestCluster(t, 3, nil, nil)
	tc.rts[1].EnableReplicaCache(time.Hour)
	ctx := context.Background()
	if err := tc.rts[0].CreateRoot(ctx, "rc/o", &box{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Warm node 1's cache.
	if err := tc.rts[1].Atomic(ctx, "warm", func(tx *Txn) error {
		_, err := tx.Read(ctx, "rc/o")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Node 2 writes: ownership moves and the version advances, so node 1's
	// replica is stale AND mislocated.
	if err := tc.rts[2].Atomic(ctx, "w", func(tx *Txn) error {
		return tx.Write(ctx, "rc/o", &box{N: 50})
	}); err != nil {
		t.Fatal(err)
	}
	// A writing transaction on node 1 reads through the stale replica; the
	// commit-time version check must catch it and the retry must see 50.
	if err := tc.rts[1].Atomic(ctx, "rw", func(tx *Txn) error {
		v, err := tx.Read(ctx, "rc/o")
		if err != nil {
			return err
		}
		return tx.Write(ctx, "rc/o", &box{N: v.(*box).N + 1})
	}); err != nil {
		t.Fatal(err)
	}
	var got int64
	if err := tc.rts[0].Atomic(ctx, "check", func(tx *Txn) error {
		v, err := tx.Read(ctx, "rc/o")
		if err != nil {
			return err
		}
		got = v.(*box).N
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 51 {
		t.Fatalf("final value %d, want 51 (stale replica must not win)", got)
	}
	m := tc.rts[1].Metrics().Snapshot()
	if m.ReplicaInvals == 0 {
		t.Fatal("stale replica was never invalidated")
	}
	if m.TotalAborts() == 0 {
		t.Fatal("stale replica read committed without a validation abort")
	}
}

func TestReplicaCacheDisabledByNonPositiveLease(t *testing.T) {
	tc := newTestCluster(t, 1, nil, nil)
	tc.rts[0].EnableReplicaCache(0)
	if tc.rts[0].replica != nil {
		t.Fatal("zero lease must disable the cache")
	}
	tc.rts[0].EnableReplicaCache(-time.Second)
	if tc.rts[0].replica != nil {
		t.Fatal("negative lease must disable the cache")
	}
}
