package stm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dstm/internal/cc"
	"dstm/internal/cluster"
	"dstm/internal/object"
	"dstm/internal/sched"
	"dstm/internal/stats"
	"dstm/internal/trace"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

// Runtime is one node's D-STM engine: the TFA transaction manager, the
// owner-side object protocol (retrieve / validate / lock / commit /
// hand-off), and the hook point for the transactional scheduler.
//
// Construct one Runtime per node with NewRuntime, then start transactions
// with Atomic. The Runtime is the "TM proxy" of Herlihy & Sun's model.
type Runtime struct {
	ep      *cluster.Endpoint
	clock   *vclock.Clock
	store   *object.Store
	locator *cc.Service
	policy  sched.Policy
	stats   *stats.Table
	metrics *Metrics

	txSeq uint64
	seqMu sync.Mutex

	waitMu  sync.Mutex
	waiters map[waitKey]chan pushMsg

	// migrated remembers, per object, the transaction whose commit last
	// migrated it away from this node. A retransmitted commit-migration
	// request (its reply was lost and the RPC dedup entry has aged out)
	// must read as success, not "not owned" — see handleCommitObject.
	migrMu   sync.Mutex
	migrated map[object.ID]uint64

	nesting NestingMode
	tracer  *trace.Recorder

	// roReads routes AtomicRead through the MVCC snapshot path (AtomicRO)
	// instead of the ownership protocol. Off by default.
	roReads atomic.Bool
	// replica is the requester-side read cache for read-write
	// transactions; nil (default) disables it. See EnableReplicaCache.
	replica *replicaCache
}

type waitKey struct {
	tx  uint64
	oid object.ID
}

// NestingMode selects how Txn.Atomic treats inner atomic blocks.
type NestingMode uint8

// Nesting modes (paper §I): closed nesting lets an inner transaction abort
// and retry without disturbing its parent; flat nesting inlines inner
// blocks into the parent, so any inner failure aborts the whole top-level
// transaction.
const (
	ClosedNesting NestingMode = iota
	FlatNesting
)

func (m NestingMode) String() string {
	if m == FlatNesting {
		return "flat"
	}
	return "closed"
}

// feedbacker is implemented by policies that adapt to outcomes (RTS's
// adaptive CL threshold).
type feedbacker interface{ Feedback(committed bool) }

// NewRuntime wires a Runtime onto an endpoint. size is the cluster size
// (for directory placement); policy is the transactional scheduler; st is
// the per-node transaction stats table (may be nil for a default).
func NewRuntime(ep *cluster.Endpoint, size int, policy sched.Policy, st *stats.Table) *Runtime {
	if st == nil {
		st = stats.NewTable(time.Millisecond)
	}
	rt := &Runtime{
		ep:       ep,
		clock:    ep.Clock(),
		store:    object.NewStore(),
		locator:  cc.NewService(ep, size),
		policy:   policy,
		stats:    st,
		metrics:  &Metrics{},
		waiters:  make(map[waitKey]chan pushMsg),
		migrated: make(map[object.ID]uint64),
	}
	ep.Handle(KindRetrieve, rt.handleRetrieve)
	ep.Handle(KindCheckVersion, rt.handleCheckVersion)
	ep.Handle(KindAcquire, rt.handleAcquire)
	ep.Handle(KindRelease, rt.handleRelease)
	ep.Handle(KindCommitObject, rt.handleCommitObject)
	ep.Handle(KindAcquireBatch, rt.handleAcquireBatch)
	ep.Handle(KindCheckVersionBatch, rt.handleCheckVersionBatch)
	ep.Handle(KindCommitObjectBatch, rt.handleCommitObjectBatch)
	ep.Handle(KindSnapshotRead, rt.handleSnapshotRead)
	ep.Handle(KindSnapshotReadBatch, rt.handleSnapshotReadBatch)
	ep.HandleNotify(KindPush, rt.handlePush)
	ep.HandleNotify(KindDecline, rt.handleDecline)
	return rt
}

// SetReadOnlyReads makes AtomicRead dispatch to AtomicRO (MVCC snapshot
// reads) instead of Atomic. Off by default so existing workloads keep
// exercising the ownership protocol unchanged.
func (rt *Runtime) SetReadOnlyReads(on bool) { rt.roReads.Store(on) }

// ReadOnlyReads reports whether AtomicRead dispatches to AtomicRO.
func (rt *Runtime) ReadOnlyReads() bool { return rt.roReads.Load() }

// EnableReplicaCache turns on the requester-side replica cache for
// read-write transactions: fetched object copies are retained for up to
// lease and served to later transactions' reads without a retrieve RPC.
// Cached reads are speculative — they are validated by version at commit
// through the existing checkVersions machinery and invalidated on lease
// expiry, on any failed or not-owner validation, and on ownership-change
// hints. A non-positive lease disables the cache. Call before running
// transactions.
func (rt *Runtime) EnableReplicaCache(lease time.Duration) {
	if lease <= 0 {
		rt.replica = nil
		return
	}
	rt.replica = newReplicaCache(lease)
}

// Self returns this node's ID.
func (rt *Runtime) Self() transport.NodeID { return rt.ep.Self() }

// SetNesting selects closed (default) or flat nesting for inner atomic
// blocks started through Txn.Atomic. Call before running transactions.
func (rt *Runtime) SetNesting(m NestingMode) { rt.nesting = m }

// Nesting returns the runtime's nesting mode.
func (rt *Runtime) Nesting() NestingMode { return rt.nesting }

// SetTracer wires a protocol event recorder through every layer this
// runtime owns: transaction lifecycle (this package), the owner-side
// commit-lock state machine (the store's trace hook), the scheduler queue
// (policies exposing SetTracer), and the messaging layer (the endpoint).
// Call once, after NewRuntime and before any transactions run; nil
// disables. A nil recorder costs one pointer check per event site.
func (rt *Runtime) SetTracer(tr *trace.Recorder) {
	rt.tracer = tr
	rt.ep.SetTracer(tr)
	if p, ok := rt.policy.(interface{ SetTracer(*trace.Recorder) }); ok {
		p.SetTracer(tr)
	}
	if tr == nil {
		rt.store.SetTrace(nil)
		return
	}
	// The store already narrates its lock transitions through a debug hook
	// (emitted under the store mutex, so transitions are totally ordered per
	// object); adapt the ops the checker models onto trace events.
	rt.store.SetTrace(func(op string, id object.ID, tx, a, b uint64) {
		switch op {
		case "lock-ok":
			tr.Emit(trace.Event{Type: trace.EvLockAcquire, Tx: tx, Oid: id})
		case "install-locked":
			tr.Emit(trace.Event{Type: trace.EvLockAcquire, Tx: tx, Oid: id, Detail: "create"})
		case "unlock":
			tr.Emit(trace.Event{Type: trace.EvLockRelease, Tx: tx, Oid: id, Detail: "unlock"})
		case "commit":
			tr.Emit(trace.Event{Type: trace.EvLockRelease, Tx: tx, Oid: id, Detail: "commit", A: a})
		case "remove":
			tr.Emit(trace.Event{Type: trace.EvLockRelease, Tx: tx, Oid: id, Detail: "migrate"})
		case "lock-expired":
			tr.Emit(trace.Event{Type: trace.EvLeaseExpire, Tx: tx, Oid: id})
		case "install":
			tr.Emit(trace.Event{Type: trace.EvInstall, Oid: id, A: a})
		case "snap-read":
			tr.Emit(trace.Event{Type: trace.EvSnapRead, Tx: tx, Oid: id, A: a, B: b})
		case "snap-advance":
			tr.Emit(trace.Event{Type: trace.EvSnapRead, Tx: tx, Oid: id, A: a, B: b, Detail: "advance"})
		}
	})
}

// Tracer returns the runtime's event recorder (nil when tracing is off).
func (rt *Runtime) Tracer() *trace.Recorder { return rt.tracer }

// Metrics returns the node's transaction outcome counters.
func (rt *Runtime) Metrics() *Metrics { return rt.metrics }

// Policy returns the node's transactional scheduler.
func (rt *Runtime) Policy() sched.Policy { return rt.policy }

// Stats returns the node's transaction stats table.
func (rt *Runtime) Stats() *stats.Table { return rt.stats }

// Store exposes the owner-side object store (tests and setup helpers).
func (rt *Runtime) Store() *object.Store { return rt.store }

// Locator exposes the node's CC service (tests and setup helpers).
func (rt *Runtime) Locator() *cc.Service { return rt.locator }

func (rt *Runtime) nextTxID() uint64 {
	rt.seqMu.Lock()
	rt.txSeq++
	seq := rt.txSeq
	rt.seqMu.Unlock()
	// Node-unique transaction IDs: node in the top bits, sequence below.
	return uint64(rt.ep.Self())<<40 | seq
}

// CreateRoot seeds an object during setup: installs it locally and
// registers it with its home directory, outside any transaction.
func (rt *Runtime) CreateRoot(ctx context.Context, id object.ID, val object.Value) error {
	rt.store.Install(id, val, object.Version{})
	return rt.locator.Register(ctx, id, rt.Self())
}

// ---------------------------------------------------------------------------
// Owner-side protocol handlers.

func (rt *Runtime) handleRetrieve(from transport.NodeID, payload any) (any, error) {
	req, ok := payload.(retrieveReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad retrieve payload %T", payload)
	}
	localCL := rt.policy.ObserveRequest(req.Oid, req.TxID)

	val, ver, locked, owned := rt.store.Snapshot(req.Oid)
	if !owned {
		return retrieveResp{Status: retrieveNotOwner}, nil
	}
	if !locked {
		return retrieveResp{
			Status:     retrieveOK,
			Value:      val,
			Version:    ver,
			RemoteCL:   localCL,
			OwnerClock: rt.clock.Now(),
		}, nil
	}

	// The object is being validated by a committing transaction: a
	// conflict. The transactional scheduler decides (RTS Algorithm 3).
	dec := rt.policy.OnConflict(sched.Request{
		Oid:               req.Oid,
		TxID:              req.TxID,
		Node:              from,
		Mode:              req.Mode,
		MyCL:              req.MyCL,
		Elapsed:           req.Elapsed,
		ExpectedRemaining: req.Remain,
	})
	if dec.Enqueue {
		rt.metrics.enqueues.Add(1)
		return retrieveResp{
			Status:   retrieveEnqueued,
			RemoteCL: localCL,
			Backoff:  dec.Backoff,
		}, nil
	}
	return retrieveResp{Status: retrieveDenied, RemoteCL: localCL}, nil
}

func (rt *Runtime) handleCheckVersion(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(checkReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad check payload %T", payload)
	}
	ver, lockedBy, owned := rt.store.State(req.Oid)
	if !owned {
		return checkResp{NotOwner: true}, nil
	}
	// A version is valid only if unchanged AND not mid-commit by another
	// transaction (whose new version would be installed momentarily).
	ok = ver.Equal(req.Ver) && (lockedBy == 0 || lockedBy == req.TxID)
	return checkResp{OK: ok}, nil
}

func (rt *Runtime) handleAcquire(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(acquireReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad acquire payload %T", payload)
	}
	res := rt.store.Lock(req.Oid, req.TxID, req.Ver)
	return acquireResp{Result: uint8(res)}, nil
}

func (rt *Runtime) handleRelease(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(releaseReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad release payload %T", payload)
	}
	for _, oid := range req.Oids {
		rt.store.Unlock(oid, req.TxID)
		// The commit failed, so the object stays here unchanged; hand the
		// current value to any queued requesters — unless the object is
		// (still) locked by someone else (e.g. this was a conservative
		// release of a lock that was never actually held).
		if !rt.store.Locked(oid) {
			rt.serveQueue(oid, rt.policy.OnRelease(oid))
		}
	}
	return releaseReq{}, nil
}

func (rt *Runtime) handleCommitObject(from transport.NodeID, payload any) (any, error) {
	req, ok := payload.(commitObjReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad commit payload %T", payload)
	}
	queue, err := rt.migrateOut(req.Oid, req.TxID)
	if err != nil {
		return nil, err
	}
	return commitObjResp{Queue: queue}, nil
}

// migrateOut surrenders one object to the committing transaction tx:
// ownership migrates to the committer, so drop the local copy (requires the
// committer to hold the commit lock) and hand back the requester queue so
// scheduling state travels with the object.
//
// At-least-once delivery: if tx already migrated the object away (the reply
// was lost and the retransmission outlived the RPC dedup window), the
// removal is done — report success. The requester queue went with the first
// execution; an empty queue here only costs the parked requesters a backoff
// timeout.
func (rt *Runtime) migrateOut(oid object.ID, tx uint64) ([]sched.Request, error) {
	if err := rt.store.Remove(oid, tx); err != nil {
		rt.migrMu.Lock()
		prior := rt.migrated[oid]
		rt.migrMu.Unlock()
		if prior == tx {
			return nil, nil
		}
		return nil, err
	}
	rt.migrMu.Lock()
	rt.migrated[oid] = tx
	rt.migrMu.Unlock()
	return rt.policy.ExtractQueue(oid), nil
}

// ---------------------------------------------------------------------------
// Owner-grouped batch handlers: one message covers every object of a commit
// that this node owns (O(owners) commit rounds instead of O(objects)).

func (rt *Runtime) handleAcquireBatch(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(acquireBatchReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad acquire batch payload %T", payload)
	}
	entries := make([]object.LockEntry, len(req.Entries))
	for i, e := range req.Entries {
		entries[i] = object.LockEntry{ID: e.Oid, Expect: e.Ver}
	}
	results, applied := rt.store.LockBatch(req.TxID, entries)
	resp := acquireBatchResp{Results: make([]uint8, len(results)), Applied: applied}
	for i, r := range results {
		resp.Results[i] = uint8(r)
	}
	return resp, nil
}

func (rt *Runtime) handleCheckVersionBatch(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(checkBatchReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad check batch payload %T", payload)
	}
	resp := checkBatchResp{Results: make([]checkBatchResult, len(req.Entries))}
	for i, e := range req.Entries {
		ver, lockedBy, owned := rt.store.State(e.Oid)
		if !owned {
			resp.Results[i] = checkBatchResult{NotOwner: true}
			continue
		}
		// Same validity rule as handleCheckVersion: unchanged version AND not
		// mid-commit by another transaction.
		valid := ver.Equal(e.Ver) && (lockedBy == 0 || lockedBy == req.TxID)
		resp.Results[i] = checkBatchResult{OK: valid}
	}
	return resp, nil
}

func (rt *Runtime) handleCommitObjectBatch(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(commitObjBatchReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad commit batch payload %T", payload)
	}
	resp := commitObjBatchResp{Results: make([]commitObjBatchResult, len(req.Entries))}
	for i, e := range req.Entries {
		queue, err := rt.migrateOut(e.Oid, req.TxID)
		if err != nil {
			resp.Results[i].Err = err.Error()
			continue
		}
		resp.Results[i].Queue = queue
	}
	return resp, nil
}

// ---------------------------------------------------------------------------
// Snapshot-read handlers (MVCC read path). These never touch the commit
// lock, never consult the scheduler, and never migrate ownership: one
// request, one reply, served from the current version or the record's
// retained version chain.

// snapStatusOf maps a store snapshot outcome onto the wire status.
func snapStatusOf(st object.SnapStatus) uint8 {
	switch st {
	case object.SnapOK:
		return snapReadOK
	case object.SnapNotOwner:
		return snapReadNotOwner
	case object.SnapRetry:
		return snapReadRetry
	default:
		return snapReadTooOld
	}
}

func (rt *Runtime) handleSnapshotRead(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(snapReadReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad snapshot read payload %T", payload)
	}
	rt.metrics.snapReads.Add(1)
	var (
		val object.Value
		ver object.Version
		st  object.SnapStatus
	)
	if req.AdvanceOK {
		val, ver, st = rt.store.ReadAtOrLatest(req.Oid, req.At, req.TxID)
	} else {
		val, ver, st = rt.store.SnapshotAt(req.Oid, req.At, req.TxID)
	}
	return snapReadResp{
		Status:     snapStatusOf(st),
		Value:      val,
		Version:    ver,
		OwnerClock: rt.clock.Now(),
	}, nil
}

func (rt *Runtime) handleSnapshotReadBatch(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(snapReadBatchReq)
	if !ok {
		return nil, fmt.Errorf("stm: bad snapshot read batch payload %T", payload)
	}
	rt.metrics.snapReads.Add(1)
	resp := snapReadBatchResp{
		Results:    make([]snapReadResult, len(req.Oids)),
		OwnerClock: rt.clock.Now(),
	}
	for i, oid := range req.Oids {
		// Batches never use the advance escape hatch: advancing the
		// snapshot per-entry could serve two entries of one batch at
		// incompatible clocks.
		val, ver, st := rt.store.SnapshotAt(oid, req.At, req.TxID)
		resp.Results[i] = snapReadResult{Status: snapStatusOf(st), Value: val, Version: ver}
	}
	return resp, nil
}

// serveQueue pushes the current (or given) object state to the requesters
// popped from the scheduler queue.
func (rt *Runtime) serveQueue(oid object.ID, reqs []sched.Request) {
	if len(reqs) == 0 {
		return
	}
	val, ver, _, owned := rt.store.Snapshot(oid)
	if !owned {
		return
	}
	for _, r := range reqs {
		rt.pushTo(r, val.Copy(), ver)
	}
}

// pushTo hands one object copy to a parked requester.
func (rt *Runtime) pushTo(r sched.Request, val object.Value, ver object.Version) {
	remoteCL := rt.policy.ObserveRequest(r.Oid, r.TxID)
	_ = rt.ep.Notify(r.Node, KindPush, pushMsg{
		Oid:        r.Oid,
		TxID:       r.TxID,
		Value:      val,
		Version:    ver,
		Owner:      rt.Self(),
		OwnerClock: rt.clock.Now(),
		RemoteCL:   remoteCL,
	})
}

// handlePush delivers a pushed object to the parked transaction, or
// declines so the owner forwards it to the next requester (Algorithm 4).
func (rt *Runtime) handlePush(from transport.NodeID, payload any) {
	msg, ok := payload.(pushMsg)
	if !ok {
		return
	}
	rt.waitMu.Lock()
	ch, waiting := rt.waiters[waitKey{tx: msg.TxID, oid: msg.Oid}]
	rt.waitMu.Unlock()
	if !waiting {
		_ = rt.ep.Notify(from, KindDecline, declineMsg{Oid: msg.Oid})
		return
	}
	select {
	case ch <- msg:
		rt.metrics.pushes.Add(1)
	default:
		// Duplicate push; the first one wins.
	}
}

func (rt *Runtime) handleDecline(_ transport.NodeID, payload any) {
	msg, ok := payload.(declineMsg)
	if !ok {
		return
	}
	rt.serveQueue(msg.Oid, rt.policy.OnDecline(msg.Oid))
}

// ---------------------------------------------------------------------------
// Waiter registry (requester side of the enqueue protocol).

func (rt *Runtime) registerWaiter(tx uint64, oid object.ID) chan pushMsg {
	ch := make(chan pushMsg, 1)
	rt.waitMu.Lock()
	rt.waiters[waitKey{tx: tx, oid: oid}] = ch
	rt.waitMu.Unlock()
	return ch
}

func (rt *Runtime) deregisterWaiter(tx uint64, oid object.ID) {
	rt.waitMu.Lock()
	delete(rt.waiters, waitKey{tx: tx, oid: oid})
	rt.waitMu.Unlock()
}

// feedback reports a root-transaction outcome to adaptive policies.
func (rt *Runtime) feedback(committed bool) {
	if f, ok := rt.policy.(feedbacker); ok {
		f.Feedback(committed)
	}
}

// ---------------------------------------------------------------------------
// Lock-lease expiry (crash robustness).

// StartLeaseExpiry launches a reaper that force-releases commit locks held
// longer than lease and hands the freed objects to their queued requesters.
// It is the owner-side defence against a crashed or partitioned committer:
// without it, a lock whose holder died mid-commit wedges every transaction
// queued behind the object forever (the paper's model excludes this by
// assuming reliable delivery and no failures).
//
// The lease must comfortably exceed the longest healthy commit (a few call
// timeouts), or live committers will have their locks stolen mid-publish.
// The returned stop function halts the reaper; calling it more than once is
// safe.
func (rt *Runtime) StartLeaseExpiry(lease time.Duration) (stop func()) {
	interval := lease / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				for _, oid := range rt.store.ExpireLocks(lease) {
					rt.metrics.leaseExpiries.Add(1)
					rt.serveQueue(oid, rt.policy.OnRelease(oid))
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
