package trace

import (
	"bytes"
	"testing"
	"unicode/utf8"

	"dstm/internal/object"
	"dstm/internal/transport"
)

// FuzzReadJSONL feeds arbitrary bytes to the JSONL decoder: it must never
// panic, and everything it accepts must survive a write/read round trip.
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte(`{"node":1,"seq":2,"clock":3,"type":"tx-begin","tx":4}`))
	f.Add([]byte("{\"type\":\"enqueue\",\"oid\":\"obj/a\",\"detail\":\"write\",\"a\":2}\n{\"type\":\"handoff\"}"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"type":`))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, evs); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("re-decode of own output failed: %v", err)
		}
		if len(again) != len(evs) {
			t.Fatalf("round trip changed event count: %d -> %d", len(evs), len(again))
		}
	})
}

// FuzzEventRoundTrip builds events from fuzzed fields and checks the JSONL
// codec preserves every field exactly.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(int32(0), uint64(1), uint64(2), int64(3), "tx-begin", uint64(4), "obj/a", "denied", int32(5), uint64(6), uint64(7), uint64(8))
	f.Add(int32(-1), uint64(0), uint64(0), int64(-50), "handoff", uint64(1)<<63, "", "write", int32(9), uint64(0), uint64(0), uint64(0))
	f.Add(int32(7), ^uint64(0), uint64(42), int64(0), "päck\n", uint64(3), "obj/\"quoted\"", "a\tb", int32(0), uint64(1), ^uint64(0), uint64(2))
	f.Fuzz(func(t *testing.T, node int32, seq, clock uint64, wall int64,
		typ string, tx uint64, oid, detail string, peer int32, corr, a, b uint64) {
		// encoding/json replaces invalid UTF-8 with U+FFFD, so only valid
		// strings can round-trip byte-exactly.
		if !utf8.ValidString(typ) || !utf8.ValidString(oid) || !utf8.ValidString(detail) {
			t.Skip("invalid UTF-8 cannot round-trip through JSON")
		}
		in := Event{
			Node: transport.NodeID(node), Seq: seq, Clock: clock, Wall: wall,
			Type: EventType(typ), Tx: tx, Oid: object.ID(oid), Detail: detail,
			Peer: transport.NodeID(peer), Corr: corr, A: a, B: b,
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, []Event{in}); err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if len(out) != 1 || out[0] != in {
			t.Fatalf("round trip: %+v -> %+v", in, out)
		}
	})
}
