package check

import (
	"testing"

	"dstm/internal/trace"
	"dstm/internal/transport"
)

// golden builds a clean protocol trace exercising every checked invariant:
// a commit-locked object with enqueued requesters, a write-head hand-off, a
// read broadcast, a park resolved by push, a park resolved by timeout (with
// the matching queue-timeout abort), a forwarding step, a lease expiry for
// a genuine holder, and a correlated RPC exchange.
func golden() []trace.Event {
	seq := map[transport.NodeID]uint64{}
	ev := func(node transport.NodeID, clock uint64, typ trace.EventType, mut func(*trace.Event)) trace.Event {
		e := trace.Event{Node: node, Seq: seq[node], Clock: clock, Type: typ}
		seq[node]++
		if mut != nil {
			mut(&e)
		}
		return e
	}
	return []trace.Event{
		// Node 1 begins tx 0xA and asks node 0 for obj/x (correlated RPC).
		ev(1, 1, trace.EvTxBegin, func(e *trace.Event) { e.Tx = 0xA; e.A = 1 }),
		ev(1, 1, trace.EvMsgSend, func(e *trace.Event) { e.Peer = 0; e.Corr = 7; e.A = 10 }),
		ev(0, 1, trace.EvMsgRecv, func(e *trace.Event) { e.Peer = 1; e.Corr = 7; e.A = 10 }),

		// Node 0: tx 0xB holds obj/x's commit lock; 0xA and two readers queue.
		ev(0, 2, trace.EvLockAcquire, func(e *trace.Event) { e.Tx = 0xB; e.Oid = "obj/x" }),
		ev(0, 2, trace.EvEnqueue, func(e *trace.Event) { e.Tx = 0xA; e.Oid = "obj/x"; e.Detail = "write"; e.A = 1; e.B = 1e6 }),
		ev(0, 2, trace.EvMsgSend, func(e *trace.Event) { e.Peer = 1; e.Corr = 7; e.Detail = "reply"; e.A = 10 }),
		ev(1, 2, trace.EvMsgRecv, func(e *trace.Event) { e.Peer = 0; e.Corr = 7; e.Detail = "reply"; e.A = 10 }),
		ev(1, 2, trace.EvPark, func(e *trace.Event) { e.Tx = 0xA; e.Oid = "obj/x"; e.A = 1e6 }),
		ev(0, 2, trace.EvEnqueue, func(e *trace.Event) { e.Tx = 0xC; e.Oid = "obj/x"; e.Detail = "read"; e.A = 2 }),
		ev(0, 2, trace.EvEnqueue, func(e *trace.Event) { e.Tx = 0xD; e.Oid = "obj/x"; e.Detail = "read"; e.A = 3 }),

		// 0xB commits: lock released, write head 0xA handed off alone.
		ev(0, 3, trace.EvLockRelease, func(e *trace.Event) { e.Tx = 0xB; e.Oid = "obj/x"; e.Detail = "commit" }),
		ev(0, 3, trace.EvHandOff, func(e *trace.Event) { e.Tx = 0xA; e.Oid = "obj/x"; e.Detail = "write"; e.A = 1 }),
		ev(1, 3, trace.EvPushRecv, func(e *trace.Event) { e.Tx = 0xA; e.Oid = "obj/x" }),
		ev(1, 3, trace.EvForward, func(e *trace.Event) { e.Tx = 0xA; e.A = 1; e.B = 3 }),
		ev(1, 4, trace.EvTxCommit, func(e *trace.Event) { e.Tx = 0xA }),

		// Next release: read broadcast pops both queued readers as one group.
		ev(0, 4, trace.EvLockAcquire, func(e *trace.Event) { e.Tx = 0xE; e.Oid = "obj/x" }),
		ev(0, 5, trace.EvLockRelease, func(e *trace.Event) { e.Tx = 0xE; e.Oid = "obj/x"; e.Detail = "unlock" }),
		ev(0, 5, trace.EvHandOff, func(e *trace.Event) { e.Tx = 0xC; e.Oid = "obj/x"; e.Detail = "read"; e.A = 2 }),
		ev(0, 5, trace.EvHandOff, func(e *trace.Event) { e.Tx = 0xD; e.Oid = "obj/x"; e.Detail = "read"; e.A = 2 }),

		// A lease expiry for a holder that is genuinely wedged.
		ev(0, 6, trace.EvLockAcquire, func(e *trace.Event) { e.Tx = 0xF; e.Oid = "obj/y" }),
		ev(0, 7, trace.EvLeaseExpire, func(e *trace.Event) { e.Tx = 0xF; e.Oid = "obj/y" }),

		// A park that times out, followed by the mandated queue-timeout abort.
		ev(2, 7, trace.EvTxBegin, func(e *trace.Event) { e.Tx = 0x1B; e.A = 1 }),
		ev(2, 7, trace.EvPark, func(e *trace.Event) { e.Tx = 0x1B; e.Oid = "obj/y"; e.A = 5e5 }),
		ev(2, 8, trace.EvParkTimeout, func(e *trace.Event) { e.Tx = 0x1B; e.Oid = "obj/y" }),
		ev(2, 8, trace.EvTxAbort, func(e *trace.Event) { e.Tx = 0x1B; e.Detail = "queue-timeout" }),

		// An aborted commit attempt whose owner-grouped batch locked two
		// objects under the attempt's lock identity 0x2A1 (EvTxBegin.B);
		// both locks are freed before the abort, so batch atomicity holds.
		ev(2, 9, trace.EvTxBegin, func(e *trace.Event) { e.Tx = 0x2A; e.A = 1; e.B = 0x2A1 }),
		ev(0, 9, trace.EvLockAcquire, func(e *trace.Event) { e.Tx = 0x2A1; e.Oid = "obj/p" }),
		ev(0, 9, trace.EvLockAcquire, func(e *trace.Event) { e.Tx = 0x2A1; e.Oid = "obj/q" }),
		ev(0, 10, trace.EvLockRelease, func(e *trace.Event) { e.Tx = 0x2A1; e.Oid = "obj/p"; e.Detail = "unlock" }),
		ev(0, 10, trace.EvLockRelease, func(e *trace.Event) { e.Tx = 0x2A1; e.Oid = "obj/q"; e.Detail = "unlock" }),
		ev(2, 10, trace.EvTxAbort, func(e *trace.Event) { e.Tx = 0x2A; e.Detail = "lock-failed" }),

		// Node 3: MVCC snapshot reads over obj/s. Version 5 installed, then
		// version 9 committed; reads at snapshots 12, 7 and 12 must serve the
		// newest version at or below each snapshot, and a first-read
		// "advance" (snapshot 2 predates the chain) serves the newest
		// version. Tx 0x5A is a read-only attempt that upgraded: its lock
		// identity 0x5A1 arrives late via an EvTxBegin with Detail "upgrade".
		ev(3, 11, trace.EvInstall, func(e *trace.Event) { e.Oid = "obj/s"; e.A = 5 }),
		ev(3, 12, trace.EvTxBeginRO, func(e *trace.Event) { e.Tx = 0x4A; e.A = 1; e.B = 12 }),
		ev(3, 12, trace.EvSnapRead, func(e *trace.Event) { e.Tx = 0x4A; e.Oid = "obj/s"; e.A = 12; e.B = 5 }),
		ev(3, 13, trace.EvTxBegin, func(e *trace.Event) { e.Tx = 0x5A; e.B = 0x5A1; e.Detail = "upgrade" }),
		ev(3, 13, trace.EvLockAcquire, func(e *trace.Event) { e.Tx = 0x5A1; e.Oid = "obj/s" }),
		ev(3, 14, trace.EvLockRelease, func(e *trace.Event) { e.Tx = 0x5A1; e.Oid = "obj/s"; e.Detail = "commit"; e.A = 9 }),
		ev(3, 14, trace.EvTxCommit, func(e *trace.Event) { e.Tx = 0x5A }),
		ev(3, 15, trace.EvSnapRead, func(e *trace.Event) { e.Tx = 0x4A; e.Oid = "obj/s"; e.A = 7; e.B = 5 }),
		ev(3, 15, trace.EvSnapRead, func(e *trace.Event) { e.Tx = 0x4A; e.Oid = "obj/s"; e.A = 12; e.B = 9 }),
		ev(3, 16, trace.EvSnapRead, func(e *trace.Event) { e.Tx = 0x4B; e.Oid = "obj/s"; e.A = 2; e.B = 9; e.Detail = "advance" }),
	}
}

func runClean(t *testing.T) []trace.Event {
	t.Helper()
	evs := golden()
	rep := Run(evs, Options{})
	if err := rep.Err(); err != nil {
		t.Fatalf("golden trace must be clean: %v", err)
	}
	if rep.Events != len(evs) {
		t.Fatalf("replayed %d events, want %d", rep.Events, len(evs))
	}
	return evs
}

// mutate applies f to a copy of the golden trace.
func mutate(t *testing.T, f func(evs []trace.Event) []trace.Event) []trace.Event {
	t.Helper()
	evs := append([]trace.Event(nil), runClean(t)...)
	return f(evs)
}

// expectViolation asserts the checker flags the corrupted trace with the
// named invariant — proving the oracle can actually fail.
func expectViolation(t *testing.T, evs []trace.Event, invariant string) {
	t.Helper()
	rep := Run(evs, Options{})
	if len(rep.Violations) == 0 {
		t.Fatalf("corrupted trace passed the checker")
	}
	for _, v := range rep.Violations {
		if v.Invariant == invariant {
			return
		}
	}
	t.Fatalf("no %q violation; got %v", invariant, rep.Violations)
}

func TestOracleAcceptsGolden(t *testing.T) { runClean(t) }

func TestOracleFlagsDoubleLockGrant(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// Grant obj/x to tx 0x99 while 0xB still holds it.
		bad := trace.Event{Node: 0, Seq: 1000, Clock: 2, Type: trace.EvLockAcquire, Tx: 0x99, Oid: "obj/x"}
		out := append([]trace.Event(nil), evs[:5]...)
		out = append(out, bad)
		return append(out, evs[5:]...)
	})
	expectViolation(t, evs, "lock-exclusion")
}

func TestOracleFlagsReleaseByNonHolder(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		for i, e := range evs {
			if e.Type == trace.EvLockRelease && e.Tx == 0xB {
				evs[i].Tx = 0x99
			}
		}
		return evs
	})
	expectViolation(t, evs, "lock-exclusion")
}

func TestOracleFlagsBackwardsForward(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		for i, e := range evs {
			if e.Type == trace.EvForward {
				evs[i].A, evs[i].B = 5, 2 // start clock moves backwards
			}
		}
		return evs
	})
	expectViolation(t, evs, "forward-monotonic")
}

func TestOracleFlagsForwardBelowEarlierForward(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// A second forward for tx 0xA that lands below the first (1 -> 3).
		bad := trace.Event{Node: 1, Seq: 1000, Clock: 5, Type: trace.EvForward, Tx: 0xA, A: 2, B: 2}
		return append(evs, bad)
	})
	expectViolation(t, evs, "forward-monotonic")
}

func TestOracleFlagsPushToNonHead(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// The write-head hand-off goes to queued reader 0xC instead of the
		// head write requester 0xA.
		for i, e := range evs {
			if e.Type == trace.EvHandOff && e.Tx == 0xA {
				evs[i].Tx = 0xC
				evs[i].Detail = "read"
			}
		}
		return evs
	})
	expectViolation(t, evs, "handoff-head")
}

func TestOracleFlagsPartialReadBroadcast(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// Drop reader 0xD from the broadcast group: Algorithm 4 requires
		// every queued read be released together.
		out := evs[:0]
		for _, e := range evs {
			if e.Type == trace.EvHandOff && e.Tx == 0xD {
				continue
			}
			out = append(out, e)
		}
		return out
	})
	expectViolation(t, evs, "handoff-head")
}

func TestOracleFlagsExpiryAfterRelease(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// obj/y's holder releases cleanly, then the lease fires anyway.
		for i, e := range evs {
			if e.Type == trace.EvLeaseExpire {
				rel := e
				rel.Type = trace.EvLockRelease
				rel.Detail = "unlock"
				exp := e
				exp.Seq = 1000
				exp.Clock++
				return append(append(append([]trace.Event(nil), evs[:i]...), rel, exp), evs[i+1:]...)
			}
		}
		t.Fatal("no lease-expire in golden trace")
		return nil
	})
	expectViolation(t, evs, "lease-expiry")
}

func TestOracleFlagsCommitAfterParkTimeout(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// The timed-out transaction commits instead of aborting.
		for i, e := range evs {
			if e.Type == trace.EvTxAbort && e.Tx == 0x1B {
				evs[i].Type = trace.EvTxCommit
				evs[i].Detail = ""
			}
		}
		return evs
	})
	expectViolation(t, evs, "park-closure")
}

func TestOracleFlagsWrongAbortCauseAfterTimeout(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		for i, e := range evs {
			if e.Type == trace.EvTxAbort && e.Tx == 0x1B {
				evs[i].Detail = "denied"
			}
		}
		return evs
	})
	expectViolation(t, evs, "park-closure")
}

func TestOracleFlagsUnsolicitedReply(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		bad := trace.Event{Node: 2, Seq: 1000, Clock: 9, Type: trace.EvMsgRecv,
			Peer: 0, Corr: 999, Detail: "reply", A: 10}
		return append(evs, bad)
	})
	expectViolation(t, evs, "reply-correlation")
}

func TestOracleFlagsPartialBatchAfterAbort(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// Drop obj/q's release: the aborted attempt leaves half its
		// (all-or-nothing) acquire batch locked at trace end.
		out := evs[:0]
		for _, e := range evs {
			if e.Type == trace.EvLockRelease && e.Tx == 0x2A1 && e.Oid == "obj/q" {
				continue
			}
			out = append(out, e)
		}
		return out
	})
	expectViolation(t, evs, "batch-atomicity")
}

func TestOracleFlagsLeakFromSupersededAttempt(t *testing.T) {
	// No explicit abort event this time: the retry's EvTxBegin (same root,
	// fresh lock identity) proves the first attempt ended without
	// committing, so its leaked lock must still be flagged.
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		out := make([]trace.Event, 0, len(evs))
		for _, e := range evs {
			if e.Type == trace.EvLockRelease && e.Tx == 0x2A1 && e.Oid == "obj/q" {
				continue
			}
			if e.Type == trace.EvTxAbort && e.Tx == 0x2A {
				e = trace.Event{Node: 2, Seq: 1000, Clock: e.Clock, Type: trace.EvTxBegin, Tx: 0x2A, A: 2, B: 0x2A2}
			}
			out = append(out, e)
		}
		return out
	})
	expectViolation(t, evs, "batch-atomicity")
}

func TestOracleAcceptsLockHeldByLiveAttempt(t *testing.T) {
	// A lock still held at trace end by an attempt that never aborted (the
	// run window simply closed mid-commit) is legal.
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		return append(evs,
			trace.Event{Node: 2, Seq: 1001, Clock: 11, Type: trace.EvTxBegin, Tx: 0x3A, A: 1, B: 0x3A1},
			trace.Event{Node: 0, Seq: 1001, Clock: 11, Type: trace.EvLockAcquire, Tx: 0x3A1, Oid: "obj/p"},
		)
	})
	if err := Run(evs, Options{}).Err(); err != nil {
		t.Fatalf("mid-commit lock at trace end must pass: %v", err)
	}
}

func TestOracleFlagsSnapReadAboveSnapshot(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// The snapshot-7 read serves version 9 — above the reader's pinned
		// snapshot clock.
		for i, e := range evs {
			if e.Type == trace.EvSnapRead && e.A == 7 {
				evs[i].B = 9
			}
		}
		return evs
	})
	expectViolation(t, evs, "snapshot-consistency")
}

func TestOracleFlagsStaleSnapRead(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// The second snapshot-12 read serves version 5 although version 9
		// (newer, still at or below 12) had been committed at the owner.
		for i, e := range evs {
			if e.Type == trace.EvSnapRead && e.A == 12 && e.B == 9 {
				evs[i].B = 5
			}
		}
		return evs
	})
	expectViolation(t, evs, "snapshot-consistency")
}

func TestOracleFlagsSnapReadOfUninstalledVersion(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// Version 6 was never installed at the owner.
		for i, e := range evs {
			if e.Type == trace.EvSnapRead && e.A == 12 && e.B == 9 {
				evs[i].B = 6
			}
		}
		return evs
	})
	expectViolation(t, evs, "snapshot-consistency")
}

func TestOracleFlagsAdvanceNotNewest(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		// The advance serve hands out version 5, but an advance must serve
		// the owner's newest version (9).
		for i, e := range evs {
			if e.Type == trace.EvSnapRead && e.Detail == "advance" {
				evs[i].B = 5
			}
		}
		return evs
	})
	expectViolation(t, evs, "snapshot-consistency")
}

func TestOracleFlagsLeakFromUpgradedAttempt(t *testing.T) {
	// The upgraded read-only attempt 0x5A aborts instead of committing, but
	// its commit lock on obj/s is never released: the late EvTxBegin
	// (Detail "upgrade") announced lock identity 0x5A1, so batch atomicity
	// must still flag the leak.
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		out := evs[:0]
		for _, e := range evs {
			if e.Type == trace.EvLockRelease && e.Tx == 0x5A1 {
				continue
			}
			if e.Type == trace.EvTxCommit && e.Tx == 0x5A {
				e = trace.Event{Node: 3, Seq: e.Seq, Clock: e.Clock, Type: trace.EvTxAbort, Tx: 0x5A, Detail: "validation"}
			}
			out = append(out, e)
		}
		return out
	})
	expectViolation(t, evs, "batch-atomicity")
}

func TestOracleSkipsStatefulChecksWhenTruncated(t *testing.T) {
	evs := mutate(t, func(evs []trace.Event) []trace.Event {
		bad := trace.Event{Node: 0, Seq: 1000, Clock: 2, Type: trace.EvLockAcquire, Tx: 0x99, Oid: "obj/x"}
		return append(evs, bad)
	})
	rep := Run(evs, Options{Truncated: true})
	if err := rep.Err(); err != nil {
		t.Fatalf("truncated run must skip stateful checks: %v", err)
	}
	if len(rep.Skipped) == 0 {
		t.Fatal("truncated run did not report skipped invariants")
	}
	// The stateless forwarding check still fires on truncated traces.
	evs2 := mutate(t, func(evs []trace.Event) []trace.Event {
		for i, e := range evs {
			if e.Type == trace.EvForward {
				evs[i].A, evs[i].B = 5, 2
			}
		}
		return evs
	})
	rep2 := Run(evs2, Options{Truncated: true})
	if rep2.Err() == nil {
		t.Fatal("backwards forward passed under truncation")
	}
}

func TestViolationCap(t *testing.T) {
	var evs []trace.Event
	for i := 0; i < 200; i++ {
		evs = append(evs, trace.Event{Node: 0, Seq: uint64(i), Clock: 1,
			Type: trace.EvLockRelease, Tx: uint64(i + 1), Oid: "obj/x", Detail: "unlock"})
	}
	rep := Run(evs, Options{MaxViolations: 5})
	if len(rep.Violations) != 5 {
		t.Fatalf("violations = %d, want capped at 5", len(rep.Violations))
	}
	if rep.Err() == nil {
		t.Fatal("capped report must still error")
	}
}
