// Package check is the trace-driven protocol oracle: it replays a merged,
// clock-ordered event trace (package trace) and asserts the per-event
// invariants of the TFA + RTS protocol that end-state invariant checks
// cannot see:
//
//   - I1 commit-lock mutual exclusion: at any owner, an object's commit
//     lock is granted to at most one transaction at a time, and is only
//     released (or lease-expired) for its current holder;
//   - I2 forwarding monotonicity: TFA forwarding never moves a
//     transaction's start clock backwards, within one forwarding step or
//     across steps;
//   - I3 hand-off head rule: every RTS hand-off group is either the single
//     write requester at the queue head, or exactly the set of queued read
//     requesters when a read heads the queue (paper Algorithm 4);
//   - I4 park closure: an enqueued requester that parks either receives a
//     push, is cancelled by its caller, or times out — and a timeout must
//     be followed by that transaction aborting with the queue-timeout
//     cause;
//   - I5 lease-expiry safety: a lease expiry only fires for the
//     transaction currently holding the lock (never after its release);
//   - I6 reply correlation: every reply received was solicited — its
//     (peer, correlation) pair matches an earlier outgoing request;
//   - I7 batch atomicity: at trace end, no commit lock is still held by an
//     attempt that aborted — an owner-grouped acquire batch is applied
//     all-or-nothing, so a failed commit must leave NO subset of its batch
//     locked once its releases have drained (checked at end-of-trace
//     because an abort and its owner-side release can carry tied clocks);
//   - I8 snapshot consistency: every MVCC snapshot read serves the newest
//     version installed at the owner at or below the requested snapshot
//     clock — never a version above the snapshot and never a stale one
//     when a newer qualifying version existed. (The owner's bounded chain
//     may EVICT the qualifying version, but eviction drops oldest-first, so
//     the store then refuses or advances instead of mis-serving; an
//     "advance" serve must be the owner's newest version, above the
//     requested clock.) Snap-read events are emitted under the owner's
//     store mutex, so they are totally ordered with that object's installs.
//
// I1, I3, I4, I5, I6, I7 and I8 are stateful: they reconstruct queues,
// locks, parked waiters and version histories from the trace, so they are
// only sound over a complete trace. When any recorder dropped events (ring
// wrap), run with Options.Truncated — the stateful invariants are skipped
// and only I2 is checked.
package check

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dstm/internal/object"
	"dstm/internal/trace"
	"dstm/internal/transport"
)

// Violation is one invariant breach, anchored to the event that exposed it.
type Violation struct {
	Invariant string // "lock-exclusion", "forward-monotonic", ...
	Msg       string
	Event     trace.Event
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s [%s]", v.Invariant, v.Msg, v.Event)
}

// Options tunes a checker run.
type Options struct {
	// Truncated marks the trace as incomplete (some recorder dropped
	// events). Stateful invariants are skipped; only per-event checks run.
	Truncated bool
	// MaxViolations caps the report (0 = 64). The checker keeps replaying
	// past violations up to the cap so one bug does not mask another.
	MaxViolations int
}

// Report is the outcome of one checker run.
type Report struct {
	Events     int
	Violations []Violation
	Skipped    []string // stateful invariants skipped due to truncation
}

// Err folds the report into an error: nil when the trace passed.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace check: %d violation(s):", len(r.Violations))
	for i, v := range r.Violations {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(r.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return errors.New(b.String())
}

// lockKey scopes lock state to one owner's store: the store serialises its
// own transitions, and ownership migration re-installs the object at the
// new owner, so mutual exclusion is per (node, object).
type lockKey struct {
	node transport.NodeID
	oid  object.ID
}

type queueEntry struct {
	tx      uint64
	mode    string
	adopted bool // inserted by queue migration, ahead of local entries
}

type parkKey struct {
	tx  uint64
	oid object.ID
}

type corrKey struct {
	node transport.NodeID
	peer transport.NodeID
	corr uint64
}

// checker is the replay state.
type checker struct {
	opts Options
	rep  Report

	locks    map[lockKey]uint64       // current commit-lock holder (0 = free)
	queues   map[lockKey][]queueEntry // scheduler requester queues
	adopting map[lockKey]int          // adopted entries in the current batch

	// Hand-off groups are validated once complete: pops sharing (key, group
	// id) form one release's hand-off set.
	group    map[lockKey]uint64        // current group id per queue
	groupEvs map[lockKey][]trace.Event // buffered pops of the current group
	groupPre map[lockKey][]queueEntry  // queue as it stood when the group began

	parked   map[parkKey]trace.Event // open parks awaiting resolution
	timedOut map[uint64]trace.Event  // tx → park-timeout awaiting its abort

	sent map[corrKey]bool // outgoing request correlations

	forwarded map[uint64]uint64 // tx → highest forwarded start clock

	// Batch atomicity: lock events are keyed by the attempt's lock identity
	// (fresh per retry), which EvTxBegin carries in B; an abort dooms the
	// current attempt's identity. (An upgraded read-only attempt announces
	// its identity late, via EvTxBegin with Detail "upgrade".)
	curLock     map[uint64]uint64      // root tx → current attempt's lock identity
	abortedLock map[uint64]bool        // lock identities whose attempt aborted
	lastAcquire map[lockKey]trace.Event // latest grant per lock, for reporting

	// Snapshot consistency: version clocks installed at each owner, in
	// store order (installs and commit-releases both advance the version).
	verHist map[lockKey][]uint64
}

// Run replays a merged trace (see trace.Merge) and reports violations.
func Run(events []trace.Event, opts Options) *Report {
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 64
	}
	c := &checker{
		opts:      opts,
		locks:     make(map[lockKey]uint64),
		queues:    make(map[lockKey][]queueEntry),
		adopting:  make(map[lockKey]int),
		group:     make(map[lockKey]uint64),
		groupEvs:  make(map[lockKey][]trace.Event),
		groupPre:  make(map[lockKey][]queueEntry),
		parked:    make(map[parkKey]trace.Event),
		timedOut:  make(map[uint64]trace.Event),
		sent:        make(map[corrKey]bool),
		forwarded:   make(map[uint64]uint64),
		curLock:     make(map[uint64]uint64),
		abortedLock: make(map[uint64]bool),
		lastAcquire: make(map[lockKey]trace.Event),
		verHist:     make(map[lockKey][]uint64),
	}
	c.rep.Events = len(events)
	if opts.Truncated {
		c.rep.Skipped = []string{"lock-exclusion", "handoff-head", "park-closure", "lease-expiry", "reply-correlation", "batch-atomicity", "snapshot-consistency"}
	}
	for _, e := range events {
		c.step(e)
	}
	c.finish()
	return &c.rep
}

func (c *checker) violate(inv string, e trace.Event, format string, args ...any) {
	if len(c.rep.Violations) >= c.opts.MaxViolations {
		return
	}
	c.rep.Violations = append(c.rep.Violations, Violation{
		Invariant: inv,
		Msg:       fmt.Sprintf(format, args...),
		Event:     e,
	})
}

func (c *checker) step(e trace.Event) {
	// Queue events for one (node, object) are serialised by the scheduler's
	// mutex, so they are totally ordered in the log — but unrelated events
	// from other goroutines on the same node may interleave between them.
	// A hand-off group (or adopt batch) therefore ends at the next QUEUE
	// event touching the same queue, never at an interleaved non-queue one.
	switch e.Type {
	case trace.EvEnqueue, trace.EvDequeue, trace.EvAdopt:
		c.flushGroup(lockKey{node: e.Node, oid: e.Oid})
	}
	switch e.Type {
	case trace.EvEnqueue, trace.EvDequeue, trace.EvHandOff:
		delete(c.adopting, lockKey{node: e.Node, oid: e.Oid})
	}

	switch e.Type {
	case trace.EvForward:
		c.checkForward(e)
	}
	if c.opts.Truncated {
		return
	}
	switch e.Type {
	case trace.EvLockAcquire:
		c.lockAcquire(e)
	case trace.EvLockRelease:
		c.lockRelease(e)
		if e.Detail == "commit" {
			// A commit-release publishes the new version (A) at this owner.
			k := lockKey{node: e.Node, oid: e.Oid}
			c.verHist[k] = append(c.verHist[k], e.A)
		}
	case trace.EvLeaseExpire:
		c.leaseExpire(e)
	case trace.EvInstall:
		// Unlocked (re-)install: creation seeding or migration in.
		k := lockKey{node: e.Node, oid: e.Oid}
		c.locks[k] = 0
		c.verHist[k] = append(c.verHist[k], e.A)
	case trace.EvSnapRead:
		c.snapRead(e)

	case trace.EvEnqueue:
		c.enqueue(e)
	case trace.EvDequeue:
		c.dequeue(e)
	case trace.EvAdopt:
		c.adopt(e)
	case trace.EvHandOff:
		c.handOff(e)

	case trace.EvPark:
		c.park(e)
	case trace.EvPushRecv:
		c.resolvePark(e, "push")
	case trace.EvParkCancel:
		c.resolvePark(e, "cancel")
	case trace.EvParkTimeout:
		c.resolvePark(e, "timeout")
		c.timedOut[e.Tx] = e
	case trace.EvTxBegin:
		if e.B != 0 {
			if prev := c.curLock[e.Tx]; prev != 0 && prev != e.B {
				// A fresh attempt means the previous one ended without
				// committing (a commit would have ended the retry loop).
				c.abortedLock[prev] = true
			}
			c.curLock[e.Tx] = e.B
		}
	case trace.EvTxAbort:
		if to, ok := c.timedOut[e.Tx]; ok {
			if e.Detail != "queue-timeout" {
				c.violate("park-closure", e,
					"tx %x timed out parked (seq %d) but aborted with cause %q, want queue-timeout",
					e.Tx, to.Seq, e.Detail)
			}
			delete(c.timedOut, e.Tx)
		}
		if l := c.curLock[e.Tx]; l != 0 {
			c.abortedLock[l] = true
			delete(c.curLock, e.Tx)
		}
	case trace.EvTxCommit:
		if to, ok := c.timedOut[e.Tx]; ok {
			c.violate("park-closure", e,
				"tx %x committed despite a park timeout at seq %d", e.Tx, to.Seq)
			delete(c.timedOut, e.Tx)
		}
		delete(c.curLock, e.Tx)

	case trace.EvMsgSend:
		if e.Corr != 0 && e.Detail != "reply" {
			c.sent[corrKey{node: e.Node, peer: e.Peer, corr: e.Corr}] = true
		}
	case trace.EvMsgRecv:
		if e.Corr != 0 && e.Detail == "reply" {
			if !c.sent[corrKey{node: e.Node, peer: e.Peer, corr: e.Corr}] {
				c.violate("reply-correlation", e,
					"node %d received a reply from %d with unsolicited correlation %d",
					e.Node, e.Peer, e.Corr)
			}
		}
	}
}

// finish flushes trailing state. Open parks at trace end are legal (the run
// window closed with requesters still waiting), as are pending timeouts
// whose abort event had not been emitted yet. Locks still held by an
// ABORTED attempt are not legal: the abort's release RPCs completed before
// the abort event was emitted, so once the trace ends no fragment of the
// aborted attempt's (all-or-nothing) batches may remain locked (I7).
func (c *checker) finish() {
	for k := range c.groupEvs {
		c.flushGroup(k)
	}
	if c.opts.Truncated {
		return
	}
	var leaked []lockKey
	for k, holder := range c.locks {
		if holder != 0 && c.abortedLock[holder] {
			leaked = append(leaked, k)
		}
	}
	sort.Slice(leaked, func(i, j int) bool {
		if leaked[i].node != leaked[j].node {
			return leaked[i].node < leaked[j].node
		}
		return leaked[i].oid < leaked[j].oid
	})
	for _, k := range leaked {
		c.violate("batch-atomicity", c.lastAcquire[k],
			"%s at node %d still commit-locked by aborted attempt %x at trace end",
			k.oid, k.node, c.locks[k])
	}
}

// ---------------------------------------------------------------------------
// I2 — forwarding monotonicity.

func (c *checker) checkForward(e trace.Event) {
	old, new_ := e.A, e.B
	if new_ < old {
		c.violate("forward-monotonic", e,
			"tx %x forwarded backwards: start %d -> %d", e.Tx, old, new_)
	}
	if prev, ok := c.forwarded[e.Tx]; ok && new_ < prev {
		c.violate("forward-monotonic", e,
			"tx %x forwarded to %d below an earlier forward to %d", e.Tx, new_, prev)
	}
	if new_ > c.forwarded[e.Tx] {
		c.forwarded[e.Tx] = new_
	}
}

// ---------------------------------------------------------------------------
// I1/I5 — commit-lock state machine.

func (c *checker) lockAcquire(e trace.Event) {
	k := lockKey{node: e.Node, oid: e.Oid}
	if cur := c.locks[k]; cur != 0 && cur != e.Tx {
		c.violate("lock-exclusion", e,
			"%s at node %d granted to tx %x while held by tx %x", e.Oid, e.Node, e.Tx, cur)
	}
	c.locks[k] = e.Tx
	c.lastAcquire[k] = e
}

func (c *checker) lockRelease(e trace.Event) {
	k := lockKey{node: e.Node, oid: e.Oid}
	if cur := c.locks[k]; cur != e.Tx {
		c.violate("lock-exclusion", e,
			"%s at node %d released by tx %x but held by tx %x", e.Oid, e.Node, e.Tx, cur)
	}
	c.locks[k] = 0
}

func (c *checker) leaseExpire(e trace.Event) {
	k := lockKey{node: e.Node, oid: e.Oid}
	if cur := c.locks[k]; cur != e.Tx {
		c.violate("lease-expiry", e,
			"%s at node %d lease-expired for tx %x but the lock is held by tx %x (expiry after release)",
			e.Oid, e.Node, e.Tx, cur)
	}
	c.locks[k] = 0
}

// ---------------------------------------------------------------------------
// I3 — scheduler queue model and the hand-off head rule.

func (c *checker) enqueue(e trace.Event) {
	k := lockKey{node: e.Node, oid: e.Oid}
	c.queues[k] = append(c.queues[k], queueEntry{tx: e.Tx, mode: e.Detail})
}

func (c *checker) dequeue(e trace.Event) {
	k := lockKey{node: e.Node, oid: e.Oid}
	q := c.queues[k]
	for i, ent := range q {
		if ent.tx == e.Tx {
			c.queues[k] = append(q[:i:i], q[i+1:]...)
			return
		}
	}
	// A dup-removal probe for a transaction that was never queued is normal
	// (OnConflict always probes); an extract of an unknown entry is not.
	if e.Detail == "extract" {
		c.violate("handoff-head", e,
			"queue migration extracted tx %x not present in %s's queue at node %d", e.Tx, e.Oid, e.Node)
	}
}

func (c *checker) adopt(e trace.Event) {
	k := lockKey{node: e.Node, oid: e.Oid}
	// Adopted entries are inserted ahead of local ones, in batch order:
	// batch index i lands at position i.
	idx := c.adopting[k]
	q := c.queues[k]
	if idx > len(q) {
		idx = len(q)
	}
	ent := queueEntry{tx: e.Tx, mode: e.Detail, adopted: true}
	q = append(q, queueEntry{})
	copy(q[idx+1:], q[idx:])
	q[idx] = ent
	c.queues[k] = q
	c.adopting[k] = idx + 1
}

func (c *checker) handOff(e trace.Event) {
	k := lockKey{node: e.Node, oid: e.Oid}
	if evs := c.groupEvs[k]; len(evs) > 0 && evs[0].A != e.A {
		// A new release's group begins: settle the previous one first.
		c.flushGroup(k)
	}
	if len(c.groupEvs[k]) == 0 {
		// Snapshot the queue as the release saw it.
		c.groupPre[k] = append([]queueEntry(nil), c.queues[k]...)
		c.group[k] = e.A
	}
	c.groupEvs[k] = append(c.groupEvs[k], e)
	// Remove from the live queue immediately so subsequent events see the
	// post-pop state.
	q := c.queues[k]
	for i, ent := range q {
		if ent.tx == e.Tx {
			c.queues[k] = append(q[:i:i], q[i+1:]...)
			break
		}
	}
}

// flushGroup validates one completed hand-off group against the paper's
// Algorithm 4: the head write requester alone, or every queued read
// requester when a read heads the queue.
func (c *checker) flushGroup(k lockKey) {
	evs := c.groupEvs[k]
	if len(evs) == 0 {
		return
	}
	pre := c.groupPre[k]
	delete(c.groupEvs, k)
	delete(c.groupPre, k)
	delete(c.group, k)

	if len(pre) == 0 {
		c.violate("handoff-head", evs[0],
			"hand-off of tx %x from an empty queue for %s at node %d", evs[0].Tx, k.oid, k.node)
		return
	}
	head := pre[0]
	if head.mode == "write" {
		if len(evs) != 1 || evs[0].Tx != head.tx {
			c.violate("handoff-head", evs[0],
				"queue head is write tx %x but hand-off group was %s", head.tx, groupTxs(evs))
		}
		return
	}
	// Read head: the group must be exactly the queued reads, in order.
	var wantReads []uint64
	for _, ent := range pre {
		if ent.mode == "read" {
			wantReads = append(wantReads, ent.tx)
		}
	}
	if len(evs) != len(wantReads) {
		c.violate("handoff-head", evs[0],
			"read-headed queue should hand off all %d reads, got group %s", len(wantReads), groupTxs(evs))
		return
	}
	for i, ev := range evs {
		if ev.Tx != wantReads[i] {
			c.violate("handoff-head", ev,
				"read broadcast popped tx %x at position %d, want tx %x", ev.Tx, i, wantReads[i])
			return
		}
	}
}

func groupTxs(evs []trace.Event) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range evs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%x", e.Tx)
	}
	b.WriteByte(']')
	return b.String()
}

// ---------------------------------------------------------------------------
// I8 — snapshot consistency.

// snapRead validates one owner-side snapshot serve (EvSnapRead: A is the
// requested snapshot clock, B the served version clock) against the version
// history replayed from installs and commit-releases at that owner. A
// normal serve must be the newest installed version at or below the
// snapshot; an "advance" serve (first-read escape hatch when the chain no
// longer reaches the snapshot) must be the owner's newest version, above
// the requested clock. Chain eviction cannot mis-serve: the chain drops
// oldest-first, so a version it still holds at or below the snapshot is
// the newest such version in the full history.
func (c *checker) snapRead(e trace.Event) {
	k := lockKey{node: e.Node, oid: e.Oid}
	hist := c.verHist[k]
	if e.Detail == "advance" {
		if e.B <= e.A {
			c.violate("snapshot-consistency", e,
				"tx %x advance-served %s version %d at or below its snapshot %d — should have been a normal serve",
				e.Tx, e.Oid, e.B, e.A)
			return
		}
		if len(hist) == 0 || hist[len(hist)-1] != e.B {
			c.violate("snapshot-consistency", e,
				"tx %x advance-served %s version %d which is not the owner's newest (history %v)",
				e.Tx, e.Oid, e.B, hist)
		}
		return
	}
	if e.B > e.A {
		c.violate("snapshot-consistency", e,
			"tx %x read %s version %d above its snapshot %d", e.Tx, e.Oid, e.B, e.A)
		return
	}
	var want uint64
	found := false
	for _, v := range hist {
		if v <= e.A && (!found || v > want) {
			want, found = v, true
		}
	}
	switch {
	case !found:
		c.violate("snapshot-consistency", e,
			"tx %x read %s version %d but no version at or below snapshot %d was ever installed here",
			e.Tx, e.Oid, e.B, e.A)
	case e.B != want:
		c.violate("snapshot-consistency", e,
			"tx %x read %s version %d at snapshot %d, want newest-at-or-below %d",
			e.Tx, e.Oid, e.B, e.A, want)
	}
}

// ---------------------------------------------------------------------------
// I4 — park closure.

func (c *checker) park(e trace.Event) {
	k := parkKey{tx: e.Tx, oid: e.Oid}
	if prev, open := c.parked[k]; open {
		c.violate("park-closure", e,
			"tx %x parked twice on %s without resolving the park at seq %d", e.Tx, e.Oid, prev.Seq)
	}
	c.parked[k] = e
}

func (c *checker) resolvePark(e trace.Event, how string) {
	k := parkKey{tx: e.Tx, oid: e.Oid}
	if _, open := c.parked[k]; !open {
		c.violate("park-closure", e,
			"%s for tx %x on %s without a preceding park", how, e.Tx, e.Oid)
		return
	}
	delete(c.parked, k)
}
