package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Type: EvTxBegin}) // must not panic
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder holds events")
	}
}

func TestRecorderStampsAndOrders(t *testing.T) {
	clock := uint64(7)
	r := NewRecorder(3, 16, func() uint64 { return clock })
	r.Emit(Event{Type: EvTxBegin, Tx: 1})
	clock = 9
	r.Emit(Event{Type: EvTxCommit, Tx: 1})

	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Node != 3 || evs[0].Seq != 0 || evs[0].Clock != 7 {
		t.Fatalf("first event stamps: %+v", evs[0])
	}
	if evs[1].Seq != 1 || evs[1].Clock != 9 {
		t.Fatalf("second event stamps: %+v", evs[1])
	}
	if evs[0].Wall == 0 {
		t.Fatal("wall clock not stamped")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(0, 4, nil)
	for i := uint64(0); i < 10; i++ {
		r.Emit(Event{Type: EvTxBegin, Tx: i})
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Tx != uint64(6+i) {
			t.Fatalf("event %d is tx %d, want oldest-first 6..9", i, e.Tx)
		}
		if e.Seq != uint64(6+i) {
			t.Fatalf("event %d seq %d", i, e.Seq)
		}
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	r := NewRecorder(1, 1<<12, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Type: EvMsgSend, Tx: uint64(g)})
			}
		}(g)
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != 800 {
		t.Fatalf("len = %d", len(evs))
	}
	seen := make(map[uint64]bool, len(evs))
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestMergeRespectsClockThenNodeOrder(t *testing.T) {
	a := []Event{
		{Node: 0, Seq: 0, Clock: 1, Type: EvTxBegin},
		{Node: 0, Seq: 1, Clock: 5, Type: EvTxCommit},
	}
	b := []Event{
		{Node: 1, Seq: 0, Clock: 2, Type: EvTxBegin},
		{Node: 1, Seq: 1, Clock: 5, Type: EvTxCommit},
	}
	m := Merge(a, b)
	if len(m) != 4 {
		t.Fatalf("len = %d", len(m))
	}
	if m[0].Clock != 1 || m[1].Clock != 2 {
		t.Fatalf("clock order broken: %+v", m[:2])
	}
	// Clock tie: node 0 sorts first.
	if m[2].Node != 0 || m[3].Node != 1 {
		t.Fatalf("tie-break order broken: %+v", m[2:])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Node: 1, Seq: 0, Clock: 3, Wall: 12345, Type: EvLockAcquire, Tx: 42, Oid: "obj/a"},
		{Node: 2, Seq: 9, Clock: 4, Type: EvEnqueue, Tx: 7, Oid: "obj/b", Detail: "write", A: 2, B: 1500},
		{Node: 0, Seq: 1, Type: EvMsgSend, Peer: 2, Corr: 77, Detail: "reply"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"type\":\"tx-begin\"}\nnot-json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	out, err := ReadJSONL(strings.NewReader("\n{\"type\":\"tx-begin\",\"tx\":1}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Tx != 1 {
		t.Fatalf("out = %+v", out)
	}
}
