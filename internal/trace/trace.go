// Package trace is the protocol event layer of the D-STM stack: a
// low-overhead, per-node ring-buffered recorder of every protocol-relevant
// transition (transaction begin/commit/abort, nested begin/merge/rollback,
// object retrieve and TFA forwarding, commit-lock acquire/release, lease
// expiry, RTS enqueue/backoff/hand-off decisions, and message send/receive
// with correlation IDs).
//
// A nil *Recorder is a valid, disabled recorder: every emit degrades to a
// nil check, so production paths carry tracing at negligible cost. Enabled
// recorders append into a fixed ring; when the ring wraps, the oldest
// events are lost and Dropped reports how many (the protocol checker in
// trace/check refuses stateful verdicts over truncated traces).
//
// Per-node logs are merged into one causally consistent order by Merge:
// every event carries the node's TFA clock at emission, and because clocks
// merge on every received message (vclock), sorting by (Clock, Node, Seq)
// respects both per-node emission order and cross-node message causality.
// The merged log is what the trace/check oracle replays.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"dstm/internal/object"
	"dstm/internal/transport"
)

// EventType names a protocol transition. Types are stable strings so JSONL
// traces stay readable and diffable across versions.
type EventType string

// Transaction lifecycle (requester node).
const (
	// EvTxBegin starts one attempt of a root transaction. A = attempt
	// number; B = the attempt's lock identity (fresh per retry), matching
	// the Tx of owner-side lock events so checkers can tie a held lock to
	// its attempt's fate.
	EvTxBegin EventType = "tx-begin"
	// EvTxCommit is a root transaction's successful commit.
	EvTxCommit EventType = "tx-commit"
	// EvTxAbort is one aborted root attempt. Detail = abort cause.
	EvTxAbort EventType = "tx-abort"
	// EvNestBegin starts one attempt of a closed-nested inner transaction.
	EvNestBegin EventType = "nest-begin"
	// EvNestMerge merges a committed inner transaction into its parent.
	EvNestMerge EventType = "nest-merge"
	// EvNestAbort rolls an inner transaction back. Detail = "own" when the
	// inner transaction itself failed, "parent" when an enclosing abort
	// killed it.
	EvNestAbort EventType = "nest-abort"
	// EvTxBeginRO starts one attempt of a read-only (MVCC snapshot) root
	// transaction. A = attempt number; B = the pinned snapshot clock. A
	// distinct type from EvTxBegin because B carries a clock here, not a
	// lock identity — read-only attempts hold no locks.
	EvTxBeginRO EventType = "tx-begin-ro"
)

// Object protocol (requester node).
const (
	// EvRetrieve is an Open_Object fetch being issued. Detail = access mode.
	EvRetrieve EventType = "retrieve"
	// EvRetrieveOK records the fetched copy's adoption. A = version clock.
	EvRetrieveOK EventType = "retrieve-ok"
	// EvForward is a TFA forwarding step: the root transaction's start clock
	// advances after revalidation. A = old start, B = new start.
	EvForward EventType = "forward"
	// EvPark parks an enqueued requester awaiting a hand-off push.
	// A = backoff budget in nanoseconds.
	EvPark EventType = "park"
	// EvPushRecv resolves a park: the pushed object was received.
	EvPushRecv EventType = "push-recv"
	// EvParkTimeout resolves a park: the backoff expired first (the
	// transaction must abort with the queue-timeout cause).
	EvParkTimeout EventType = "park-timeout"
	// EvParkCancel resolves a park: the caller's context ended.
	EvParkCancel EventType = "park-cancel"
	// EvSnapRead is an owner-side snapshot read served from the versioned
	// store (emitted under the store mutex, so it is totally ordered with
	// the installs of the same object). Tx = reading transaction,
	// A = requested snapshot clock, B = served version clock. Normally
	// B <= A and B is the newest retained version at or below A;
	// Detail = "advance" marks the first-read escape hatch where the
	// current version (B > A) is served and the reader re-pins to B.
	EvSnapRead EventType = "snap-read"
)

// Commit-lock state machine (owner node, store-serialised).
const (
	// EvLockAcquire grants oid's commit lock to Tx. Detail = "create" when
	// the object is installed pre-locked by its creating transaction.
	EvLockAcquire EventType = "lock-acquire"
	// EvLockRelease releases the commit lock held by Tx. Detail = "unlock"
	// (failed commit), "commit" (in-place publish), or "migrate" (ownership
	// moved to the committer).
	EvLockRelease EventType = "lock-release"
	// EvLeaseExpire force-releases a commit lock whose holder exceeded the
	// lease (crash suspicion).
	EvLeaseExpire EventType = "lease-expire"
	// EvInstall installs an unlocked authoritative copy (creation seeding or
	// ownership migration in).
	EvInstall EventType = "install"
)

// Scheduler queue (owner node, policy-serialised).
const (
	// EvEnqueue appends a conflicting requester to oid's queue.
	// Detail = access mode, A = queue length after, B = backoff ns granted.
	EvEnqueue EventType = "enqueue"
	// EvDeny aborts a conflicting requester instead of enqueueing it.
	// Detail = access mode, A = contention level observed.
	EvDeny EventType = "deny"
	// EvDequeue removes a queued requester outside a hand-off.
	// Detail = "dup" (stale retry superseded) or "extract" (queue migrating
	// with ownership).
	EvDequeue EventType = "dequeue"
	// EvHandOff pops a queued requester to receive the object. Pops from one
	// release share a group ID in A so the checker can validate the paper's
	// head rule (one write requester, or every read requester). Detail =
	// access mode.
	EvHandOff EventType = "handoff"
	// EvAdopt installs one migrated queue entry at the new owner, ahead of
	// local entries. A = index within the adopted batch.
	EvAdopt EventType = "adopt"
)

// Messaging (cluster layer).
const (
	// EvMsgSend is an outgoing message. Peer = destination, Corr =
	// correlation ID (0 for one-way), A = kind, Detail = "reply" for replies.
	EvMsgSend EventType = "msg-send"
	// EvMsgRecv is an incoming message. Peer = sender; fields as EvMsgSend.
	EvMsgRecv EventType = "msg-recv"
)

// Event is one recorded protocol transition. Node, Seq, Clock and Wall are
// stamped by the Recorder; the remaining fields are type-specific (see the
// EventType docs). The zero values of optional fields are omitted from
// JSONL.
type Event struct {
	Node   transport.NodeID `json:"node"`
	Seq    uint64           `json:"seq"`
	Clock  uint64           `json:"clock"`
	Wall   int64            `json:"wall,omitempty"`
	Type   EventType        `json:"type"`
	Tx     uint64           `json:"tx,omitempty"`
	Oid    object.ID        `json:"oid,omitempty"`
	Detail string           `json:"detail,omitempty"`
	Peer   transport.NodeID `json:"peer,omitempty"`
	Corr   uint64           `json:"corr,omitempty"`
	A      uint64           `json:"a,omitempty"`
	B      uint64           `json:"b,omitempty"`
}

// String renders a compact human-readable form (debugging aid; JSONL is the
// machine format).
func (e Event) String() string {
	return fmt.Sprintf("n%d#%d@%d %s tx=%x oid=%s %s a=%d b=%d",
		e.Node, e.Seq, e.Clock, e.Type, e.Tx, e.Oid, e.Detail, e.A, e.B)
}

// Recorder is one node's ring-buffered event log. A nil Recorder is valid
// and records nothing, so call sites may emit unconditionally through a
// possibly-nil pointer. All methods are safe for concurrent use.
type Recorder struct {
	node  transport.NodeID
	clock func() uint64 // node TFA clock source; may be nil

	mu  sync.Mutex
	buf []Event
	seq uint64 // events ever emitted; buf holds the last min(seq, cap)
}

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity.
const DefaultCapacity = 1 << 16

// NewRecorder builds a recorder for one node. clock supplies the node's TFA
// clock at emission time (pass the vclock's Now; nil records clock 0).
func NewRecorder(node transport.NodeID, capacity int, clock func() uint64) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{node: node, clock: clock, buf: make([]Event, 0, capacity)}
}

// Emit records e, stamping Node, Seq, Clock and Wall. Nil-safe.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	e.Node = r.node
	e.Wall = time.Now().UnixNano()
	r.mu.Lock()
	if r.clock != nil {
		e.Clock = r.clock()
	}
	e.Seq = r.seq
	r.seq++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[e.Seq%uint64(cap(r.buf))] = e
	}
	r.mu.Unlock()
}

// Enabled reports whether the recorder actually records (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Len returns the number of events currently held in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq <= uint64(cap(r.buf)) {
		return 0
	}
	return r.seq - uint64(cap(r.buf))
}

// Events returns the ring's contents oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if r.seq <= uint64(cap(r.buf)) {
		copy(out, r.buf)
		return out
	}
	// The ring wrapped: the oldest retained event sits at seq % cap.
	head := int(r.seq % uint64(cap(r.buf)))
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

// Merge combines per-node logs into one causally consistent order: sorted
// by (Clock, Node, Seq). Per-node emission order is preserved (a node's
// clock and seq are both non-decreasing), and cross-node message causality
// is respected because receivers merge the sender's clock before acting.
func Merge(logs ...[]Event) []Event {
	var total int
	for _, l := range logs {
		total += len(l)
	}
	out := make([]Event, 0, total)
	for _, l := range logs {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Clock != b.Clock {
			return a.Clock < b.Clock
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace produced by WriteJSONL. Blank lines are
// skipped; a malformed line returns an error naming its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}
