// Package testutil provides in-memory cluster construction shared by the
// application and harness test suites.
package testutil

import (
	"testing"

	"dstm/internal/cluster"
	"dstm/internal/sched"
	"dstm/internal/stm"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

// Cluster builds n D-STM runtimes over an in-memory network. lat nil means
// zero latency; mkPolicy nil means plain TFA on every node. The network is
// torn down via t.Cleanup.
func Cluster(t testing.TB, n int, lat transport.LatencyModel, mkPolicy func() sched.Policy) []*stm.Runtime {
	t.Helper()
	if mkPolicy == nil {
		mkPolicy = func() sched.Policy { return sched.NewTFA() }
	}
	net := transport.NewNetwork(lat)
	t.Cleanup(func() { net.Close() })
	rts := make([]*stm.Runtime, n)
	for i := 0; i < n; i++ {
		ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), &vclock.Clock{})
		rts[i] = stm.NewRuntime(ep, n, mkPolicy(), nil)
	}
	return rts
}
