package testutil

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dstm/internal/apps"
	"dstm/internal/cluster"
	"dstm/internal/sched"
	"dstm/internal/stm"
	"dstm/internal/trace"
	"dstm/internal/trace/check"
	"dstm/internal/transport"
	"dstm/internal/vclock"
	"dstm/internal/workload"
)

// ChaosOptions configures a fault-injected cluster run. The zero value is
// not useful; fill at least Nodes and the fault rates.
type ChaosOptions struct {
	Nodes int
	Seed  int64

	// Fault rates, applied to every inter-node message once faults are
	// enabled (see transport.FaultConfig).
	Drop          float64
	Duplicate     float64
	Reorder       float64
	MaxExtraDelay time.Duration

	// Latency is the base link latency model; nil means zero latency.
	Latency transport.LatencyModel

	// Retry is the per-endpoint RPC retry policy. The zero value selects an
	// aggressive policy suited to in-memory networks (short per-try timeout,
	// small backoff) so lost messages are retransmitted quickly.
	Retry cluster.RetryPolicy

	// LockLease bounds how long a commit lock may be held before the owner
	// force-releases it (the crashed-committer backstop). 0 means 5s —
	// comfortably longer than any healthy commit in these tests, so it only
	// fires when a holder is truly gone.
	LockLease time.Duration

	// MkPolicy builds each node's scheduler; nil means plain TFA.
	MkPolicy func() sched.Policy

	// Trace enables protocol event tracing on every node; after the run the
	// merged log is replayed through the trace/check oracle and the verdict
	// lands in ChaosReport.ProtocolErr. TraceCap sets each node's ring
	// capacity (0 = trace.DefaultCapacity); a wrapped ring downgrades the
	// check to the truncated-trace invariants.
	Trace    bool
	TraceCap int

	// Workload shape.
	Workers   int           // concurrent workers per node; 0 means 4
	Duration  time.Duration // fault window; 0 means 2s
	ReadRatio float64       // fraction of read ops; 0 means 0.5

	// ROReads routes the benchmark's read-only transactions onto the MVCC
	// snapshot path (stm.Runtime.SetReadOnlyReads) so chaos runs exercise
	// snapshot reads, upgrades, and I8 under loss and crashes.
	ROReads bool

	// ReplicaLease, when positive, enables the requester-side replica cache
	// on every node with the given lease.
	ReplicaLease time.Duration

	// KeySampler skews the benchmark's key choices (nil = the benchmark's
	// uniform default). Applied via apps.Skewable before Setup; ignored
	// for benchmarks that do not support it.
	KeySampler workload.KeySampler

	// Arrival switches Run to an open-loop driver: ops are admitted on
	// this arrival schedule (regardless of completions) into a bounded
	// queue consumed by Workers×Nodes workers, instead of the default
	// closed loop where each worker issues ops back-to-back. Overflow
	// beyond MaxPending is shed and counted, never blocks the clock.
	Arrival    workload.Arrival
	MaxPending int // admission-queue bound for open-loop runs; 0 means 4096

	// Crash schedule: every CrashEvery a random non-zero node crashes
	// (drops off the network) for CrashDown, then restarts. CrashEvery 0
	// disables crashes.
	CrashEvery time.Duration
	CrashDown  time.Duration
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if (o.Retry == cluster.RetryPolicy{}) {
		o.Retry = cluster.RetryPolicy{
			PerTryTimeout: 30 * time.Millisecond,
			BaseBackoff:   2 * time.Millisecond,
			MaxBackoff:    20 * time.Millisecond,
		}
	}
	if o.LockLease <= 0 {
		o.LockLease = 5 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.ReadRatio <= 0 {
		o.ReadRatio = 0.5
	}
	if o.CrashEvery > 0 && o.CrashDown <= 0 {
		o.CrashDown = o.CrashEvery / 2
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 4096
	}
	return o
}

// ChaosCluster is a D-STM cluster wired for fault injection: retrying RPC
// endpoints, lock-lease reapers on every node, and a seeded fault model
// that stays dormant until EnableFaults.
type ChaosCluster struct {
	Net    *transport.Network
	Faults *transport.FaultModel
	Rts    []*stm.Runtime

	opts        ChaosOptions
	recorders   []*trace.Recorder
	reaperStops []func()
}

// NewChaosCluster builds the cluster. Faults are created but not installed,
// so benchmark Setup runs over a reliable network; call EnableFaults (or
// Run, which does it for you) to start injecting.
func NewChaosCluster(t testing.TB, opts ChaosOptions) *ChaosCluster {
	t.Helper()
	opts = opts.withDefaults()
	mkPolicy := opts.MkPolicy
	if mkPolicy == nil {
		mkPolicy = func() sched.Policy { return sched.NewTFA() }
	}
	net := transport.NewNetwork(opts.Latency)
	t.Cleanup(func() { net.Close() })

	cc := &ChaosCluster{
		Net:  net,
		opts: opts,
		Faults: transport.NewFaultModel(transport.FaultConfig{
			Seed:          uint64(opts.Seed),
			Drop:          opts.Drop,
			Duplicate:     opts.Duplicate,
			Reorder:       opts.Reorder,
			MaxExtraDelay: opts.MaxExtraDelay,
		}),
	}
	for i := 0; i < opts.Nodes; i++ {
		clk := &vclock.Clock{}
		ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), clk)
		ep.SetRetryPolicy(opts.Retry)
		rt := stm.NewRuntime(ep, opts.Nodes, mkPolicy(), nil)
		if opts.ROReads {
			rt.SetReadOnlyReads(true)
		}
		if opts.ReplicaLease > 0 {
			rt.EnableReplicaCache(opts.ReplicaLease)
		}
		if opts.Trace {
			rec := trace.NewRecorder(transport.NodeID(i), opts.TraceCap, clk.Now)
			rt.SetTracer(rec)
			cc.recorders = append(cc.recorders, rec)
		}
		stop := rt.StartLeaseExpiry(opts.LockLease)
		t.Cleanup(stop)
		cc.reaperStops = append(cc.reaperStops, stop)
		cc.Rts = append(cc.Rts, rt)
	}
	return cc
}

// EnableFaults starts injecting faults into every subsequent send.
func (c *ChaosCluster) EnableFaults() { c.Net.SetFaults(c.Faults) }

// DisableFaults heals the network: any crashed nodes are restarted,
// partitions healed, and the fault model uninstalled, so in-flight
// retransmissions converge.
func (c *ChaosCluster) DisableFaults() {
	for i := 0; i < c.opts.Nodes; i++ {
		c.Faults.Restart(transport.NodeID(i))
	}
	c.Net.SetFaults(nil)
}

// ChaosReport summarises one chaos run.
type ChaosReport struct {
	Metrics stm.MetricsSnapshot  // cluster-wide transaction counters
	Faults  transport.FaultStats // messages dropped/duplicated/reordered
	Crashes int                  // crash/restart cycles executed

	// Open-loop accounting (ChaosOptions.Arrival only; zero otherwise).
	Offered   uint64 // arrivals generated by the arrival process
	Shed      uint64 // arrivals dropped at the MaxPending bound
	Completed uint64 // admitted ops that finished successfully

	// Protocol trace verdict (ChaosOptions.Trace only). ProtocolErr is the
	// trace checker's verdict over the merged event log; TraceDropped > 0
	// means some ring wrapped and the check ran truncated.
	ProtocolErr  error
	TraceEvents  int
	TraceDropped uint64
}

// Run drives bench on the faulty cluster: Setup over a clean network,
// then Workers×Nodes op loops under injected faults (plus the configured
// crash schedule) for Duration, then heal and verify bench.Check. The
// returned error is the first worker failure or the invariant-check
// failure; a healthy run returns a report and nil.
func (c *ChaosCluster) Run(ctx context.Context, bench apps.Benchmark) (ChaosReport, error) {
	var rep ChaosReport
	if c.opts.KeySampler != nil {
		if sk, ok := bench.(apps.Skewable); ok {
			sampler := c.opts.KeySampler
			sk.SetKeyPicker(func(rng *rand.Rand, n int) int { return sampler.Sample(rng, n) })
		}
	}
	if err := bench.Setup(ctx, c.Rts); err != nil {
		return rep, fmt.Errorf("chaos: setup: %w", err)
	}

	c.EnableFaults()
	runCtx, cancel := context.WithTimeout(ctx, c.opts.Duration)
	defer cancel()

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	var completed atomic.Uint64
	var jobs chan int64 // open-loop admission queue (Arrival mode only)
	if c.opts.Arrival != nil {
		jobs = make(chan int64, c.opts.MaxPending)
	}
	for n := 0; n < c.opts.Nodes; n++ {
		for w := 0; w < c.opts.Workers; w++ {
			wg.Add(1)
			go func(rt *stm.Runtime, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for runCtx.Err() == nil {
					if jobs != nil {
						// Open loop: wait for an admitted arrival; its seed
						// reseeds the op so the schedule, not the worker,
						// determines the op stream.
						select {
						case <-runCtx.Done():
							return
						case opSeed, ok := <-jobs:
							if !ok {
								return
							}
							rng = rand.New(rand.NewSource(opSeed))
						}
					}
					read := rng.Float64() < c.opts.ReadRatio
					if err := bench.Op(runCtx, rt, rng, read); err != nil {
						if isShutdownErr(err) {
							return
						}
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					completed.Add(1)
				}
			}(c.Rts[n], c.opts.Seed+int64(n*1000+w))
		}
	}

	// Crash controller: periodically take a random node off the network for
	// CrashDown, then bring it back. The victim's in-memory state survives
	// (fail-stop with stable store); only its connectivity flaps.
	if c.opts.CrashEvery > 0 && c.opts.Nodes > 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(c.opts.Seed ^ 0x5ca1ab1e))
			tick := time.NewTicker(c.opts.CrashEvery)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
				}
				victim := transport.NodeID(rng.Intn(c.opts.Nodes))
				c.Faults.Crash(victim)
				rep.Crashes++
				select {
				case <-runCtx.Done():
					c.Faults.Restart(victim)
					return
				case <-time.After(c.opts.CrashDown):
				}
				c.Faults.Restart(victim)
			}
		}()
	}

	if c.opts.Arrival != nil {
		// The arrival clock: offer ops on schedule until the fault window
		// closes, shedding (never blocking) when the queue is full.
		rng := rand.New(rand.NewSource(c.opts.Seed ^ 0x0a221ca1))
		workload.Drive(runCtx, c.opts.Arrival, rng, 0, func(i int) bool {
			rep.Offered++
			select {
			case jobs <- c.opts.Seed + int64(i)*7919 + 1:
			default:
				rep.Shed++
			}
			return true
		})
		close(jobs)
	}

	wg.Wait()
	if c.opts.Arrival != nil {
		rep.Completed = completed.Load()
	}
	c.DisableFaults()
	rep.Faults = c.Faults.Stats()
	for _, rt := range c.Rts {
		rep.Metrics.Merge(rt.Metrics().Snapshot())
	}
	if firstErr != nil {
		return rep, fmt.Errorf("chaos: worker failed: %w", firstErr)
	}

	// Let straggling retransmissions and queue hand-offs converge on the
	// healed network before checking invariants.
	time.Sleep(100 * time.Millisecond)
	checkCtx, checkCancel := context.WithTimeout(ctx, 30*time.Second)
	defer checkCancel()
	if err := bench.Check(checkCtx, c.Rts[0]); err != nil {
		return rep, fmt.Errorf("chaos: invariant check: %w", err)
	}

	if c.opts.Trace {
		// Quiesce before collecting so no goroutine is mid-way through
		// emitting a hand-off group: stop the lease reapers, shut the
		// network (drains per-link delivery goroutines), and give spawned
		// handler goroutines a beat to finish. The cluster is terminal
		// after this — Run with Trace is a run-once affair.
		for _, stop := range c.reaperStops {
			stop()
		}
		c.Net.Close()
		time.Sleep(25 * time.Millisecond)

		logs := make([][]trace.Event, len(c.recorders))
		for i, rec := range c.recorders {
			logs[i] = rec.Events()
			rep.TraceDropped += rec.Dropped()
		}
		merged := trace.Merge(logs...)
		rep.TraceEvents = len(merged)
		rep.ProtocolErr = check.Run(merged, check.Options{Truncated: rep.TraceDropped > 0}).Err()
	}
	return rep, nil
}

// isShutdownErr reports whether err is an expected consequence of the run
// window closing rather than a correctness failure.
func isShutdownErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, cluster.ErrEndpointClosed) ||
		errors.Is(err, transport.ErrClosed)
}
