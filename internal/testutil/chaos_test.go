package testutil

import (
	"context"
	"testing"
	"time"

	"dstm/internal/apps/bank"
	"dstm/internal/apps/dht"
	"dstm/internal/apps/list"
	"dstm/internal/core"
	"dstm/internal/sched"
	"dstm/internal/transport"
	"dstm/internal/workload"
)

// chaosOpts is the shared base configuration: 15% drop, some duplication
// and reordering, a crash/restart every 300ms. All streams derive from the
// fixed seed, so failures reproduce.
func chaosOpts() ChaosOptions {
	return ChaosOptions{
		Nodes:         3,
		Seed:          7,
		Drop:          0.15,
		Duplicate:     0.05,
		Reorder:       0.10,
		MaxExtraDelay: time.Millisecond,
		Workers:       3,
		Duration:      1500 * time.Millisecond,
		CrashEvery:    300 * time.Millisecond,
		CrashDown:     150 * time.Millisecond,
	}
}

// requireChaosHappened fails unless the run actually exercised the fault
// paths it claims to: messages dropped and at least one crash cycle.
func requireChaosHappened(t *testing.T, rep ChaosReport) {
	t.Helper()
	if rep.Faults.Dropped == 0 {
		t.Fatal("no messages dropped; fault injection was not active")
	}
	if rep.Crashes == 0 {
		t.Fatal("no crash/restart cycles executed")
	}
	if rep.Metrics.Commits == 0 {
		t.Fatal("no transactions committed under faults; cluster made no progress")
	}
	t.Logf("commits=%d aborts=%d dropped=%d duplicated=%d reordered=%d crashes=%d lease-expiries=%d",
		rep.Metrics.Commits, rep.Metrics.TotalAborts(), rep.Faults.Dropped,
		rep.Faults.Duplicated, rep.Faults.Reordered, rep.Crashes, rep.Metrics.LeaseExpiries)
}

// TestChaosBankConservation checks the headline invariant: across 15%
// message loss, duplication, reordering, and repeated node crashes, every
// committed transfer is atomic, so the total balance is conserved.
func TestChaosBankConservation(t *testing.T) {
	cc := NewChaosCluster(t, chaosOpts())
	rep, err := cc.Run(context.Background(), bank.New(bank.Options{AccountsPerNode: 4}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
}

// TestChaosListIntegrity runs the sorted linked list under the same faults:
// the list must stay strictly sorted and structurally sound (no dangling or
// duplicated links from torn multi-object commits).
func TestChaosListIntegrity(t *testing.T) {
	opts := chaosOpts()
	opts.Seed = 11
	cc := NewChaosCluster(t, opts)
	rep, err := cc.Run(context.Background(), list.New(list.Options{KeyRange: 24, InitialSize: 12}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
}

// TestChaosDHTPlacement runs the DHT: every surviving key must live in the
// bucket it hashes to (no writes applied to the wrong shard by duplicated
// or reordered commit messages).
func TestChaosDHTPlacement(t *testing.T) {
	opts := chaosOpts()
	opts.Seed = 23
	cc := NewChaosCluster(t, opts)
	rep, err := cc.Run(context.Background(), dht.New(dht.Options{BucketsPerNode: 4}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
}

// TestChaosBankRTSScheduler repeats the bank run under the paper's RTS
// scheduler, whose enqueue/hand-off path adds one-way push messages that
// the fault model can drop: queued transactions must still terminate
// (backoff expiry aborts them) and money stays conserved.
func TestChaosBankRTSScheduler(t *testing.T) {
	opts := chaosOpts()
	opts.Seed = 31
	opts.MkPolicy = func() sched.Policy { return core.New(core.Options{CLThreshold: 3}) }
	cc := NewChaosCluster(t, opts)
	rep, err := cc.Run(context.Background(), bank.New(bank.Options{AccountsPerNode: 4}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
}

// TestChaosTraceProtocolCheck replays the merged event trace of a full
// chaos run — 15% loss, duplication, reordering, AND crash/restart cycles —
// through the trace/check protocol oracle. Crashes take nodes off the
// network but their recorders keep running, so the merged log is complete
// and the stateful invariants (lock exclusion, hand-off head rule, park
// closure, lease-expiry safety, batch atomicity) must all hold.
func TestChaosTraceProtocolCheck(t *testing.T) {
	opts := chaosOpts()
	opts.Seed = 47
	opts.Trace = true
	opts.TraceCap = 1 << 21 // sized for busy-host goodput, as below
	opts.MkPolicy = func() sched.Policy { return core.New(core.Options{CLThreshold: 3}) }
	// A lease short enough to actually fire while a committer is crashed,
	// so the trace exercises the lease-expiry invariant too.
	opts.LockLease = 400 * time.Millisecond
	cc := NewChaosCluster(t, opts)
	rep, err := cc.Run(context.Background(), bank.New(bank.Options{AccountsPerNode: 4}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
	if rep.TraceEvents == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	if rep.TraceDropped != 0 {
		t.Fatalf("ring wrapped (%d dropped) — raise TraceCap so the full check runs", rep.TraceDropped)
	}
	if rep.ProtocolErr != nil {
		t.Fatalf("protocol check failed over %d events:\n%v", rep.TraceEvents, rep.ProtocolErr)
	}
	t.Logf("protocol check ok over %d events (lease-expiries=%d)", rep.TraceEvents, rep.Metrics.LeaseExpiries)
}

// TestChaosDHTTraceBatchAtomicity stresses the owner-grouped commit
// pipeline where it is most batched — DHT transactions write several
// buckets spread over every node — at 20% loss with crash cycling, then
// replays the merged trace through the oracle. The batch-atomicity
// invariant is the target: an acquire batch refused (or a commit aborted)
// part-way must leave NO subset of its commit locks held once the aborted
// attempt's release round has drained, so at trace end no lock may still
// belong to an aborted attempt.
func TestChaosDHTTraceBatchAtomicity(t *testing.T) {
	opts := chaosOpts()
	opts.Seed = 53
	opts.Drop = 0.20
	opts.Trace = true
	// These closed-loop cells commit ~3x faster when the host is busy
	// (fewer overlapping workers → fewer conflict aborts → higher
	// goodput), so size the ring for the fast case: a wrapped ring fails
	// the test below.
	opts.TraceCap = 1 << 21
	cc := NewChaosCluster(t, opts)
	rep, err := cc.Run(context.Background(), dht.New(dht.Options{BucketsPerNode: 4}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
	if rep.TraceEvents == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	if rep.TraceDropped != 0 {
		t.Fatalf("ring wrapped (%d dropped) — raise TraceCap so the batch-atomicity check runs", rep.TraceDropped)
	}
	if rep.ProtocolErr != nil {
		t.Fatalf("protocol check failed over %d events:\n%v", rep.TraceEvents, rep.ProtocolErr)
	}
	t.Logf("protocol + batch-atomicity check ok over %d events", rep.TraceEvents)
}

// TestChaosBankTraceBatchAtomicity repeats the batch-atomicity trace run on
// the bank workload with the RTS scheduler at the base 15% loss: transfers
// are two-object batches whose acquire/release pairs the oracle can match
// exactly, complementing the wider DHT batches above.
func TestChaosBankTraceBatchAtomicity(t *testing.T) {
	opts := chaosOpts()
	opts.Seed = 61
	opts.Trace = true
	opts.TraceCap = 1 << 21 // sized for busy-host goodput, as above
	opts.MkPolicy = func() sched.Policy { return core.New(core.Options{CLThreshold: 3}) }
	// Without a short lease a crashed committer wedges its hot accounts for
	// the whole run; the resulting retry storm can wrap any trace ring.
	opts.LockLease = 400 * time.Millisecond
	cc := NewChaosCluster(t, opts)
	rep, err := cc.Run(context.Background(), bank.New(bank.Options{AccountsPerNode: 4}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
	if rep.TraceDropped != 0 {
		t.Fatalf("ring wrapped (%d dropped) — raise TraceCap so the batch-atomicity check runs", rep.TraceDropped)
	}
	if rep.ProtocolErr != nil {
		t.Fatalf("protocol check failed over %d events:\n%v", rep.TraceEvents, rep.ProtocolErr)
	}
}

// TestChaosSoakBankHeavyLoss is the soak: 20% drop with aggressive crash
// cycling for several seconds, on a latency-bearing network. Skipped in
// -short mode.
func TestChaosSoakBankHeavyLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	opts := ChaosOptions{
		Nodes:         4,
		Seed:          42,
		Drop:          0.20,
		Duplicate:     0.05,
		Reorder:       0.10,
		MaxExtraDelay: 2 * time.Millisecond,
		Latency:       transport.UniformLatency(200 * time.Microsecond),
		Workers:       4,
		Duration:      6 * time.Second,
		CrashEvery:    400 * time.Millisecond,
		CrashDown:     200 * time.Millisecond,
		MkPolicy:      func() sched.Policy { return core.New(core.Options{CLThreshold: 3}) },
	}
	cc := NewChaosCluster(t, opts)
	rep, err := cc.Run(context.Background(), bank.New(bank.Options{AccountsPerNode: 5}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
	if rep.Crashes < 5 {
		t.Fatalf("only %d crash cycles in a %v soak; crash controller stalled", rep.Crashes, opts.Duration)
	}
}

// TestChaosOpenLoopZipfTraceOracle drives the bank through the full
// adversarial stack at once: an open-loop Poisson arrival process (ops
// admitted on the clock's schedule, not the workers'), Zipfian key skew
// concentrating conflicts on the hot accounts, 15% message loss with
// duplication/reordering and crash cycling, under the RTS scheduler with
// tracing on. After the heal, the merged trace must satisfy the protocol
// oracle (I1-I7) and the bank's conservation invariant must hold — and
// the open-loop accounting must show real admitted-and-completed load.
func TestChaosOpenLoopZipfTraceOracle(t *testing.T) {
	opts := chaosOpts()
	opts.Seed = 61
	opts.Trace = true
	opts.TraceCap = 1 << 20
	opts.MkPolicy = func() sched.Policy { return core.New(core.Options{CLThreshold: 3}) }
	opts.KeySampler = workload.NewZipf(0.9)
	opts.Arrival = workload.NewPoisson(600)
	opts.MaxPending = 512
	cc := NewChaosCluster(t, opts)
	rep, err := cc.Run(context.Background(), bank.New(bank.Options{AccountsPerNode: 4}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
	if rep.Offered == 0 || rep.Completed == 0 {
		t.Fatalf("open loop made no progress: offered=%d completed=%d shed=%d",
			rep.Offered, rep.Shed, rep.Completed)
	}
	if rep.Offered < rep.Shed+rep.Completed {
		t.Fatalf("open-loop accounting broken: offered=%d shed=%d completed=%d",
			rep.Offered, rep.Shed, rep.Completed)
	}
	if rep.TraceEvents == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	if rep.TraceDropped != 0 {
		t.Fatalf("ring wrapped (%d dropped) — raise TraceCap so the full check runs", rep.TraceDropped)
	}
	if rep.ProtocolErr != nil {
		t.Fatalf("protocol check failed over %d events:\n%v", rep.TraceEvents, rep.ProtocolErr)
	}
	t.Logf("open loop: offered=%d shed=%d completed=%d trace-events=%d",
		rep.Offered, rep.Shed, rep.Completed, rep.TraceEvents)
}

// TestChaosROSnapshotTraceOracle turns on the MVCC read path (plus the
// replica cache) under the full adversarial stack: RO transactions at a
// read-heavy mix, 15% loss with duplication/reordering and crash cycling,
// RTS scheduler, tracing on. The merged trace must satisfy the full oracle
// including I8 (every served snapshot read is the newest committed version
// at or below the snapshot clock), and post-heal money stays conserved.
func TestChaosROSnapshotTraceOracle(t *testing.T) {
	opts := chaosOpts()
	opts.Seed = 71
	opts.ReadRatio = 0.6
	opts.ROReads = true
	opts.ReplicaLease = 100 * time.Millisecond
	opts.Trace = true
	opts.TraceCap = 1 << 21
	opts.MkPolicy = func() sched.Policy { return core.New(core.Options{CLThreshold: 3}) }
	opts.LockLease = 400 * time.Millisecond
	cc := NewChaosCluster(t, opts)
	rep, err := cc.Run(context.Background(), bank.New(bank.Options{AccountsPerNode: 4}))
	if err != nil {
		t.Fatal(err)
	}
	requireChaosHappened(t, rep)
	if rep.Metrics.ReadOnlyCommits == 0 {
		t.Fatal("no read-only commits; the RO mix never exercised the snapshot path")
	}
	if rep.Metrics.SnapReads == 0 {
		t.Fatal("no snapshot reads served; RO transactions never crossed node boundaries")
	}
	if rep.TraceEvents == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	if rep.TraceDropped != 0 {
		t.Fatalf("ring wrapped (%d dropped) — raise TraceCap so I8 runs", rep.TraceDropped)
	}
	if rep.ProtocolErr != nil {
		t.Fatalf("protocol check (I1-I8) failed over %d events:\n%v", rep.TraceEvents, rep.ProtocolErr)
	}
	t.Logf("I1-I8 ok over %d events: ro-commits=%d snap-reads=%d upgrades=%d replica-hits=%d",
		rep.TraceEvents, rep.Metrics.ReadOnlyCommits, rep.Metrics.SnapReads,
		rep.Metrics.ROUpgrades, rep.Metrics.ReplicaHits)
}
