// Package list implements the sorted Linked-List set microbenchmark. Every
// list node is a separate shared object, so operations traverse — and a
// transaction opens — a chain of distributed objects, giving the longest
// read sets of the paper's microbenchmarks.
package list

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"dstm/internal/apps"
	"dstm/internal/object"
	"dstm/internal/stm"
)

// Node is one list cell. The head sentinel has Val = minInt and holds only
// a Next link. An empty Next means end-of-list.
type Node struct {
	Val  int64
	Next object.ID
}

// Copy implements object.Value.
func (n *Node) Copy() object.Value { c := *n; return &c }

func init() { object.Register(&Node{}) }

// Options configures the benchmark.
type Options struct {
	// KeyRange bounds the element values [0, KeyRange). Small ranges give
	// short lists and high contention. 0 means 48.
	KeyRange int
	// InitialSize elements are inserted at setup. 0 means KeyRange/2.
	InitialSize int
	// MaxNested bounds nested operations per transaction. 0 means 2.
	MaxNested int
	// Name distinguishes multiple lists in one cluster. Empty means "ll".
	Name string
}

// List is the benchmark instance.
type List struct {
	opts Options
	head object.ID
	seq  atomic.Uint64
	pick apps.KeyPicker
}

// New returns a Linked-List benchmark.
func New(opts Options) *List {
	if opts.KeyRange <= 0 {
		opts.KeyRange = 48
	}
	if opts.InitialSize <= 0 {
		opts.InitialSize = opts.KeyRange / 2
	}
	if opts.MaxNested <= 0 {
		opts.MaxNested = 2
	}
	if opts.Name == "" {
		opts.Name = "ll"
	}
	l := &List{opts: opts, pick: apps.UniformKeys}
	l.head = object.ID(opts.Name + "/head")
	return l
}

// SetKeyPicker implements apps.Skewable: element values drawn by Op go
// through p. Skewed values cluster operations on one stretch of the
// sorted list, concentrating conflicts near its hottest nodes.
func (l *List) SetKeyPicker(p apps.KeyPicker) { l.pick = apps.PickerOrUniform(p) }

// Name implements apps.Benchmark.
func (l *List) Name() string { return "Linked-List" }

func (l *List) newNodeID(rt *stm.Runtime) object.ID {
	return object.ID(fmt.Sprintf("%s/n/%d-%d", l.opts.Name, rt.Self(), l.seq.Add(1)))
}

// Setup implements apps.Benchmark: creates the head sentinel on node 0 and
// seeds InitialSize distinct elements.
func (l *List) Setup(ctx context.Context, rts []*stm.Runtime) error {
	if err := rts[0].CreateRoot(ctx, l.head, &Node{Val: -1 << 62}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))
	inserted := 0
	for inserted < l.opts.InitialSize {
		rt := rts[inserted%len(rts)]
		v := int64(rng.Intn(l.opts.KeyRange))
		added, err := l.Add(ctx, rt, v)
		if err != nil {
			return err
		}
		if added {
			inserted++
		}
	}
	return nil
}

// Op implements apps.Benchmark.
func (l *List) Op(ctx context.Context, rt *stm.Runtime, rng *rand.Rand, read bool) error {
	n := 1 + rng.Intn(l.opts.MaxNested)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(l.pick(rng, l.opts.KeyRange))
	}
	if read {
		return rt.AtomicRead(ctx, "ll/contains", func(tx *stm.Txn) error {
			for _, v := range vals {
				val := v
				if err := tx.Atomic(ctx, "ll/contains/one", func(c *stm.Txn) error {
					_, err := l.containsIn(ctx, c, val)
					return err
				}); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return rt.Atomic(ctx, "ll/update", func(tx *stm.Txn) error {
		for i, v := range vals {
			val := v
			var op func(context.Context, *stm.Txn, *stm.Runtime, int64) (bool, error)
			if i%2 == 0 {
				op = l.addIn
			} else {
				op = l.removeIn
			}
			if err := tx.Atomic(ctx, "ll/update/one", func(c *stm.Txn) error {
				_, err := op(ctx, c, rt, val)
				return err
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// findIn walks the list inside tx until the first node with value >= v,
// returning the predecessor's ID, the node's ID ("" at end) and the node.
func (l *List) findIn(ctx context.Context, tx *stm.Txn, v int64) (prev object.ID, cur object.ID, curNode *Node, err error) {
	prev = l.head
	hv, err := tx.Read(ctx, l.head)
	if err != nil {
		return "", "", nil, err
	}
	cur = hv.(*Node).Next
	for cur != "" {
		nv, err := tx.Read(ctx, cur)
		if err != nil {
			return "", "", nil, err
		}
		n := nv.(*Node)
		if n.Val >= v {
			return prev, cur, n, nil
		}
		prev, cur = cur, n.Next
	}
	return prev, "", nil, nil
}

func (l *List) containsIn(ctx context.Context, tx *stm.Txn, v int64) (bool, error) {
	_, _, node, err := l.findIn(ctx, tx, v)
	if err != nil {
		return false, err
	}
	return node != nil && node.Val == v, nil
}

func (l *List) addIn(ctx context.Context, tx *stm.Txn, rt *stm.Runtime, v int64) (bool, error) {
	prev, cur, node, err := l.findIn(ctx, tx, v)
	if err != nil {
		return false, err
	}
	if node != nil && node.Val == v {
		return false, nil // already a member
	}
	id := l.newNodeID(rt)
	if err := tx.Create(id, &Node{Val: v, Next: cur}); err != nil {
		return false, err
	}
	if err := tx.Update(ctx, prev, func(val object.Value) object.Value {
		val.(*Node).Next = id
		return val
	}); err != nil {
		return false, err
	}
	return true, nil
}

func (l *List) removeIn(ctx context.Context, tx *stm.Txn, _ *stm.Runtime, v int64) (bool, error) {
	prev, _, node, err := l.findIn(ctx, tx, v)
	if err != nil {
		return false, err
	}
	if node == nil || node.Val != v {
		return false, nil // not a member
	}
	next := node.Next
	if err := tx.Update(ctx, prev, func(val object.Value) object.Value {
		val.(*Node).Next = next
		return val
	}); err != nil {
		return false, err
	}
	return true, nil
}

// Add inserts v, reporting whether the set changed.
func (l *List) Add(ctx context.Context, rt *stm.Runtime, v int64) (bool, error) {
	var added bool
	err := rt.Atomic(ctx, "ll/add", func(tx *stm.Txn) error {
		var err error
		added, err = l.addIn(ctx, tx, rt, v)
		return err
	})
	return added, err
}

// Remove deletes v, reporting whether the set changed.
func (l *List) Remove(ctx context.Context, rt *stm.Runtime, v int64) (bool, error) {
	var removed bool
	err := rt.Atomic(ctx, "ll/remove", func(tx *stm.Txn) error {
		var err error
		removed, err = l.removeIn(ctx, tx, rt, v)
		return err
	})
	return removed, err
}

// Contains reports membership of v.
func (l *List) Contains(ctx context.Context, rt *stm.Runtime, v int64) (bool, error) {
	var found bool
	err := rt.AtomicRead(ctx, "ll/contains", func(tx *stm.Txn) error {
		var err error
		found, err = l.containsIn(ctx, tx, v)
		return err
	})
	return found, err
}

// Snapshot returns the list's elements in order, in one transaction.
func (l *List) Snapshot(ctx context.Context, rt *stm.Runtime) ([]int64, error) {
	var out []int64
	err := rt.AtomicRead(ctx, "ll/snapshot", func(tx *stm.Txn) error {
		out = out[:0]
		hv, err := tx.Read(ctx, l.head)
		if err != nil {
			return err
		}
		cur := hv.(*Node).Next
		for cur != "" {
			nv, err := tx.Read(ctx, cur)
			if err != nil {
				return err
			}
			n := nv.(*Node)
			out = append(out, n.Val)
			cur = n.Next
		}
		return nil
	})
	return out, err
}

// Check implements apps.Benchmark: elements are strictly increasing (sorted
// set, no duplicates).
func (l *List) Check(ctx context.Context, rt *stm.Runtime) error {
	vals, err := l.Snapshot(ctx, rt)
	if err != nil {
		return err
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1] >= vals[i] {
			return fmt.Errorf("list: order violated at %d: %v", i, vals)
		}
	}
	return nil
}
