package list

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"dstm/internal/testutil"
)

func TestAddRemoveContains(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	l := New(Options{KeyRange: 16, InitialSize: 1, Name: "t1"})
	ctx := context.Background()
	if err := l.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}

	added, err := l.Add(ctx, rts[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		// 5 may have been the seeded element; remove and re-add.
		if _, err := l.Remove(ctx, rts[0], 5); err != nil {
			t.Fatal(err)
		}
		if added, err = l.Add(ctx, rts[0], 5); err != nil || !added {
			t.Fatalf("re-add: %v %v", added, err)
		}
	}
	// Duplicate add is a no-op.
	if added, err := l.Add(ctx, rts[1], 5); err != nil || added {
		t.Fatalf("duplicate add = %v, %v", added, err)
	}
	if ok, err := l.Contains(ctx, rts[1], 5); err != nil || !ok {
		t.Fatalf("contains = %v, %v", ok, err)
	}
	if removed, err := l.Remove(ctx, rts[0], 5); err != nil || !removed {
		t.Fatalf("remove = %v, %v", removed, err)
	}
	if ok, err := l.Contains(ctx, rts[0], 5); err != nil || ok {
		t.Fatalf("contains after remove = %v, %v", ok, err)
	}
	if removed, err := l.Remove(ctx, rts[1], 5); err != nil || removed {
		t.Fatalf("double remove = %v, %v", removed, err)
	}
}

func TestSequentialOracle(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	l := New(Options{KeyRange: 24, InitialSize: 4, Name: "t2"})
	ctx := context.Background()
	if err := l.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	oracle := map[int64]bool{}
	snap, err := l.Snapshot(ctx, rts[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range snap {
		oracle[v] = true
	}

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		v := int64(rng.Intn(24))
		rt := rts[i%2]
		switch rng.Intn(3) {
		case 0:
			added, err := l.Add(ctx, rt, v)
			if err != nil {
				t.Fatal(err)
			}
			if added == oracle[v] {
				t.Fatalf("add(%d) = %v but oracle has %v", v, added, oracle[v])
			}
			oracle[v] = true
		case 1:
			removed, err := l.Remove(ctx, rt, v)
			if err != nil {
				t.Fatal(err)
			}
			if removed != oracle[v] {
				t.Fatalf("remove(%d) = %v but oracle has %v", v, removed, oracle[v])
			}
			delete(oracle, v)
		default:
			ok, err := l.Contains(ctx, rt, v)
			if err != nil {
				t.Fatal(err)
			}
			if ok != oracle[v] {
				t.Fatalf("contains(%d) = %v but oracle has %v", v, ok, oracle[v])
			}
		}
	}
	if err := l.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
	snap, err = l.Snapshot(ctx, rts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != len(oracle) {
		t.Fatalf("snapshot %v vs oracle %v", snap, oracle)
	}
	for _, v := range snap {
		if !oracle[v] {
			t.Fatalf("snapshot has %d not in oracle", v)
		}
	}
}

func TestConcurrentOpsKeepOrder(t *testing.T) {
	const nodes = 3
	rts := testutil.Cluster(t, nodes, nil, nil)
	l := New(Options{KeyRange: 20, InitialSize: 6, Name: "t3"})
	ctx := context.Background()
	if err := l.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + n)))
			for i := 0; i < 12; i++ {
				if err := l.Op(ctx, rts[n], rng, i%3 == 0); err != nil {
					errs <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestDefaults(t *testing.T) {
	l := New(Options{})
	if l.opts.KeyRange <= 0 || l.opts.InitialSize <= 0 || l.opts.MaxNested <= 0 {
		t.Fatalf("defaults: %+v", l.opts)
	}
	if l.Name() != "Linked-List" {
		t.Fatalf("name %q", l.Name())
	}
}
