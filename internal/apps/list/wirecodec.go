package list

import (
	"dstm/internal/object"
	"dstm/internal/wire"
)

// wireIDNode is list's slot in the application-value ID range 100–119 (see
// DESIGN.md "Wire format").
const wireIDNode wire.ID = 101

func init() {
	wire.Register(wireIDNode, &Node{},
		func(b []byte, v any) ([]byte, error) {
			n := v.(*Node)
			b = wire.AppendVarint(b, n.Val)
			return wire.AppendString(b, string(n.Next)), nil
		},
		func(r *wire.Reader, prev any) any {
			n, _ := prev.(*Node)
			if n == nil {
				n = new(Node)
			}
			n.Val = r.Varint()
			n.Next = object.ID(r.String())
			return n
		})
}
