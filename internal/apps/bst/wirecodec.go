package bst

import (
	"dstm/internal/object"
	"dstm/internal/wire"
)

// bst's slots in the application-value ID range 100–119 (see DESIGN.md
// "Wire format").
const (
	wireIDRoot wire.ID = 106
	wireIDNode wire.ID = 107
)

func init() {
	wire.Register(wireIDRoot, &Root{},
		func(b []byte, v any) ([]byte, error) {
			return wire.AppendString(b, string(v.(*Root).Child)), nil
		},
		func(r *wire.Reader, prev any) any {
			q, _ := prev.(*Root)
			if q == nil {
				q = new(Root)
			}
			q.Child = object.ID(r.String())
			return q
		})
	wire.Register(wireIDNode, &Node{},
		func(b []byte, v any) ([]byte, error) {
			n := v.(*Node)
			b = wire.AppendVarint(b, n.Val)
			b = wire.AppendString(b, string(n.Left))
			b = wire.AppendString(b, string(n.Right))
			return wire.AppendBool(b, n.Deleted), nil
		},
		func(r *wire.Reader, prev any) any {
			n, _ := prev.(*Node)
			if n == nil {
				n = new(Node)
			}
			n.Val = r.Varint()
			n.Left = object.ID(r.String())
			n.Right = object.ID(r.String())
			n.Deleted = r.Bool()
			return n
		})
}
