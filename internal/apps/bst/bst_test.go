package bst

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"dstm/internal/testutil"
)

func TestAddRemoveRevive(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	b := New(Options{KeyRange: 16, InitialSize: 1, Name: "bt1"})
	ctx := context.Background()
	if err := b.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}

	if _, err := b.Remove(ctx, rts[0], 9); err != nil {
		t.Fatal(err)
	}
	added, err := b.Add(ctx, rts[0], 9)
	if err != nil || !added {
		t.Fatalf("add = %v, %v", added, err)
	}
	if added, err := b.Add(ctx, rts[1], 9); err != nil || added {
		t.Fatalf("dup add = %v, %v", added, err)
	}
	if removed, err := b.Remove(ctx, rts[1], 9); err != nil || !removed {
		t.Fatalf("remove = %v, %v", removed, err)
	}
	if ok, err := b.Contains(ctx, rts[0], 9); err != nil || ok {
		t.Fatalf("contains tombstoned = %v, %v", ok, err)
	}
	// Revive: add after remove finds the tombstone and flips it.
	if added, err := b.Add(ctx, rts[0], 9); err != nil || !added {
		t.Fatalf("revive = %v, %v", added, err)
	}
	if ok, err := b.Contains(ctx, rts[1], 9); err != nil || !ok {
		t.Fatalf("contains revived = %v, %v", ok, err)
	}
}

func TestSequentialOracle(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	b := New(Options{KeyRange: 32, InitialSize: 5, Name: "bt2"})
	ctx := context.Background()
	if err := b.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	oracle := map[int64]bool{}
	snap, err := b.Snapshot(ctx, rts[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range snap {
		oracle[v] = true
	}

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 250; i++ {
		v := int64(rng.Intn(32))
		rt := rts[i%2]
		switch rng.Intn(3) {
		case 0:
			added, err := b.Add(ctx, rt, v)
			if err != nil {
				t.Fatal(err)
			}
			if added == oracle[v] {
				t.Fatalf("add(%d) = %v, oracle %v", v, added, oracle[v])
			}
			oracle[v] = true
		case 1:
			removed, err := b.Remove(ctx, rt, v)
			if err != nil {
				t.Fatal(err)
			}
			if removed != oracle[v] {
				t.Fatalf("remove(%d) = %v, oracle %v", v, removed, oracle[v])
			}
			delete(oracle, v)
		default:
			ok, err := b.Contains(ctx, rt, v)
			if err != nil {
				t.Fatal(err)
			}
			if ok != oracle[v] {
				t.Fatalf("contains(%d) = %v, oracle %v", v, ok, oracle[v])
			}
		}
	}
	if err := b.Check(ctx, rts[1]); err != nil {
		t.Fatal(err)
	}
	snap, err = b.Snapshot(ctx, rts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != len(oracle) {
		t.Fatalf("snapshot %v vs oracle %v", snap, oracle)
	}
}

func TestConcurrentOps(t *testing.T) {
	const nodes = 3
	rts := testutil.Cluster(t, nodes, nil, nil)
	b := New(Options{KeyRange: 24, InitialSize: 6, Name: "bt3"})
	ctx := context.Background()
	if err := b.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + n)))
			for i := 0; i < 12; i++ {
				if err := b.Op(ctx, rts[n], rng, i%3 == 0); err != nil {
					errs <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := b.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestDefaults(t *testing.T) {
	b := New(Options{})
	if b.opts.KeyRange <= 0 || b.opts.InitialSize <= 0 {
		t.Fatalf("defaults: %+v", b.opts)
	}
	if b.Name() != "BST" {
		t.Fatalf("name %q", b.Name())
	}
}
