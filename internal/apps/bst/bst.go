// Package bst implements the Binary-Search-Tree set microbenchmark: an
// unbalanced BST whose nodes are separate shared objects. Removal uses
// lazy deletion (a tombstone flag) so concurrent structural surgery is
// never needed; tombstoned values are revived in place by a later add.
package bst

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"dstm/internal/apps"
	"dstm/internal/object"
	"dstm/internal/stm"
)

// Root is the tree's entry-point object; Child is empty for an empty tree.
type Root struct {
	Child object.ID
}

// Copy implements object.Value.
func (r *Root) Copy() object.Value { c := *r; return &c }

// Node is one tree node.
type Node struct {
	Val     int64
	Left    object.ID
	Right   object.ID
	Deleted bool
}

// Copy implements object.Value.
func (n *Node) Copy() object.Value { c := *n; return &c }

func init() {
	object.Register(&Root{})
	object.Register(&Node{})
}

// Options configures the benchmark.
type Options struct {
	// KeyRange bounds element values. 0 means 64.
	KeyRange int
	// InitialSize elements are inserted at setup. 0 means KeyRange/2.
	InitialSize int
	// MaxNested bounds nested ops per transaction. 0 means 2.
	MaxNested int
	// Name distinguishes multiple trees. Empty means "bst".
	Name string
}

// BST is the benchmark instance.
type BST struct {
	opts Options
	root object.ID
	seq  atomic.Uint64
	pick apps.KeyPicker
}

// New returns a BST benchmark.
func New(opts Options) *BST {
	if opts.KeyRange <= 0 {
		opts.KeyRange = 64
	}
	if opts.InitialSize <= 0 {
		opts.InitialSize = opts.KeyRange / 2
	}
	if opts.MaxNested <= 0 {
		opts.MaxNested = 2
	}
	if opts.Name == "" {
		opts.Name = "bst"
	}
	b := &BST{opts: opts, pick: apps.UniformKeys}
	b.root = object.ID(opts.Name + "/root")
	return b
}

// SetKeyPicker implements apps.Skewable: element values drawn by Op go
// through p. Skewed values hammer one subtree of the (unbalanced) BST.
func (b *BST) SetKeyPicker(p apps.KeyPicker) { b.pick = apps.PickerOrUniform(p) }

// Name implements apps.Benchmark.
func (b *BST) Name() string { return "BST" }

func (b *BST) newNodeID(rt *stm.Runtime) object.ID {
	return object.ID(fmt.Sprintf("%s/n/%d-%d", b.opts.Name, rt.Self(), b.seq.Add(1)))
}

// Setup implements apps.Benchmark.
func (b *BST) Setup(ctx context.Context, rts []*stm.Runtime) error {
	if err := rts[0].CreateRoot(ctx, b.root, &Root{}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(43))
	inserted := 0
	for inserted < b.opts.InitialSize {
		rt := rts[inserted%len(rts)]
		added, err := b.Add(ctx, rt, int64(rng.Intn(b.opts.KeyRange)))
		if err != nil {
			return err
		}
		if added {
			inserted++
		}
	}
	return nil
}

// Op implements apps.Benchmark.
func (b *BST) Op(ctx context.Context, rt *stm.Runtime, rng *rand.Rand, read bool) error {
	n := 1 + rng.Intn(b.opts.MaxNested)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(b.pick(rng, b.opts.KeyRange))
	}
	if read {
		return rt.AtomicRead(ctx, "bst/contains", func(tx *stm.Txn) error {
			for _, v := range vals {
				val := v
				if err := tx.Atomic(ctx, "bst/contains/one", func(c *stm.Txn) error {
					_, err := b.containsIn(ctx, c, val)
					return err
				}); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return rt.Atomic(ctx, "bst/update", func(tx *stm.Txn) error {
		for i, v := range vals {
			val := v
			add := i%2 == 0
			if err := tx.Atomic(ctx, "bst/update/one", func(c *stm.Txn) error {
				var err error
				if add {
					_, err = b.addIn(ctx, c, rt, val)
				} else {
					_, err = b.removeIn(ctx, c, val)
				}
				return err
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// descend walks from the root to the node holding v or to the attachment
// point. It returns the node's ID ("" if absent), its value, the parent ID
// (root object when the tree is empty/at top) and whether v would go left.
func (b *BST) descend(ctx context.Context, tx *stm.Txn, v int64) (id object.ID, node *Node, parent object.ID, goLeft bool, err error) {
	rv, err := tx.Read(ctx, b.root)
	if err != nil {
		return "", nil, "", false, err
	}
	parent = b.root
	cur := rv.(*Root).Child
	for cur != "" {
		nv, err := tx.Read(ctx, cur)
		if err != nil {
			return "", nil, "", false, err
		}
		n := nv.(*Node)
		switch {
		case v == n.Val:
			return cur, n, parent, false, nil
		case v < n.Val:
			parent, goLeft, cur = cur, true, n.Left
		default:
			parent, goLeft, cur = cur, false, n.Right
		}
	}
	return "", nil, parent, goLeft, nil
}

func (b *BST) containsIn(ctx context.Context, tx *stm.Txn, v int64) (bool, error) {
	_, node, _, _, err := b.descend(ctx, tx, v)
	if err != nil {
		return false, err
	}
	return node != nil && !node.Deleted, nil
}

func (b *BST) addIn(ctx context.Context, tx *stm.Txn, rt *stm.Runtime, v int64) (bool, error) {
	id, node, parent, goLeft, err := b.descend(ctx, tx, v)
	if err != nil {
		return false, err
	}
	if node != nil {
		if !node.Deleted {
			return false, nil
		}
		// Revive the tombstoned node in place.
		err := tx.Update(ctx, id, func(val object.Value) object.Value {
			val.(*Node).Deleted = false
			return val
		})
		return err == nil, err
	}
	nid := b.newNodeID(rt)
	if err := tx.Create(nid, &Node{Val: v}); err != nil {
		return false, err
	}
	err = tx.Update(ctx, parent, func(val object.Value) object.Value {
		switch p := val.(type) {
		case *Root:
			p.Child = nid
		case *Node:
			if goLeft {
				p.Left = nid
			} else {
				p.Right = nid
			}
		}
		return val
	})
	return err == nil, err
}

func (b *BST) removeIn(ctx context.Context, tx *stm.Txn, v int64) (bool, error) {
	id, node, _, _, err := b.descend(ctx, tx, v)
	if err != nil {
		return false, err
	}
	if node == nil || node.Deleted {
		return false, nil
	}
	err = tx.Update(ctx, id, func(val object.Value) object.Value {
		val.(*Node).Deleted = true
		return val
	})
	return err == nil, err
}

// Add inserts v, reporting whether the set changed.
func (b *BST) Add(ctx context.Context, rt *stm.Runtime, v int64) (bool, error) {
	var added bool
	err := rt.Atomic(ctx, "bst/add", func(tx *stm.Txn) error {
		var err error
		added, err = b.addIn(ctx, tx, rt, v)
		return err
	})
	return added, err
}

// Remove deletes v, reporting whether the set changed.
func (b *BST) Remove(ctx context.Context, rt *stm.Runtime, v int64) (bool, error) {
	var removed bool
	err := rt.Atomic(ctx, "bst/remove", func(tx *stm.Txn) error {
		var err error
		removed, err = b.removeIn(ctx, tx, v)
		return err
	})
	return removed, err
}

// Contains reports membership of v.
func (b *BST) Contains(ctx context.Context, rt *stm.Runtime, v int64) (bool, error) {
	var found bool
	err := rt.AtomicRead(ctx, "bst/contains", func(tx *stm.Txn) error {
		var err error
		found, err = b.containsIn(ctx, tx, v)
		return err
	})
	return found, err
}

// Snapshot returns the live (non-tombstoned) elements in sorted order.
func (b *BST) Snapshot(ctx context.Context, rt *stm.Runtime) ([]int64, error) {
	var out []int64
	err := rt.AtomicRead(ctx, "bst/snapshot", func(tx *stm.Txn) error {
		out = out[:0]
		rv, err := tx.Read(ctx, b.root)
		if err != nil {
			return err
		}
		return b.inorder(ctx, tx, rv.(*Root).Child, &out)
	})
	return out, err
}

func (b *BST) inorder(ctx context.Context, tx *stm.Txn, id object.ID, out *[]int64) error {
	if id == "" {
		return nil
	}
	nv, err := tx.Read(ctx, id)
	if err != nil {
		return err
	}
	n := nv.(*Node)
	if err := b.inorder(ctx, tx, n.Left, out); err != nil {
		return err
	}
	if !n.Deleted {
		*out = append(*out, n.Val)
	}
	return b.inorder(ctx, tx, n.Right, out)
}

// Check implements apps.Benchmark: in-order traversal yields a strictly
// increasing sequence (BST order, set semantics).
func (b *BST) Check(ctx context.Context, rt *stm.Runtime) error {
	vals, err := b.Snapshot(ctx, rt)
	if err != nil {
		return err
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1] >= vals[i] {
			return fmt.Errorf("bst: order violated: %v", vals)
		}
	}
	return nil
}
