// Package rbtree implements the Red/Black-Tree set microbenchmark: a
// balanced binary search tree whose nodes are separate shared objects.
// Inserts perform the full red-black rebalancing (recolourings and
// rotations) transactionally, so one insert can write several nodes —
// the largest write sets of the paper's microbenchmarks. Removal uses lazy
// deletion (tombstones), keeping the red-black shape invariants intact.
package rbtree

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"dstm/internal/apps"
	"dstm/internal/object"
	"dstm/internal/stm"
)

// Root is the tree's entry point; Child is empty for an empty tree.
type Root struct {
	Child object.ID
}

// Copy implements object.Value.
func (r *Root) Copy() object.Value { c := *r; return &c }

// Node is one tree node. Red is the node colour; Deleted is the lazy-
// deletion tombstone.
type Node struct {
	Val     int64
	Red     bool
	Left    object.ID
	Right   object.ID
	Deleted bool
}

// Copy implements object.Value.
func (n *Node) Copy() object.Value { c := *n; return &c }

func init() {
	object.Register(&Root{})
	object.Register(&Node{})
}

// Options configures the benchmark.
type Options struct {
	// KeyRange bounds element values. 0 means 64.
	KeyRange int
	// InitialSize elements are inserted at setup. 0 means KeyRange/2.
	InitialSize int
	// MaxNested bounds nested ops per transaction. 0 means 2.
	MaxNested int
	// Name distinguishes multiple trees. Empty means "rb".
	Name string
}

// RBTree is the benchmark instance.
type RBTree struct {
	opts Options
	root object.ID
	seq  atomic.Uint64
	pick apps.KeyPicker
}

// New returns an RB-Tree benchmark.
func New(opts Options) *RBTree {
	if opts.KeyRange <= 0 {
		opts.KeyRange = 64
	}
	if opts.InitialSize <= 0 {
		opts.InitialSize = opts.KeyRange / 2
	}
	if opts.MaxNested <= 0 {
		opts.MaxNested = 2
	}
	if opts.Name == "" {
		opts.Name = "rb"
	}
	t := &RBTree{opts: opts, pick: apps.UniformKeys}
	t.root = object.ID(opts.Name + "/root")
	return t
}

// Name implements apps.Benchmark.
func (t *RBTree) Name() string { return "RB-Tree" }

// SetKeyPicker implements apps.Skewable: element values drawn by Op go
// through p.
func (t *RBTree) SetKeyPicker(p apps.KeyPicker) { t.pick = apps.PickerOrUniform(p) }

func (t *RBTree) newNodeID(rt *stm.Runtime) object.ID {
	return object.ID(fmt.Sprintf("%s/n/%d-%d", t.opts.Name, rt.Self(), t.seq.Add(1)))
}

// Setup implements apps.Benchmark.
func (t *RBTree) Setup(ctx context.Context, rts []*stm.Runtime) error {
	if err := rts[0].CreateRoot(ctx, t.root, &Root{}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(44))
	inserted := 0
	for inserted < t.opts.InitialSize {
		rt := rts[inserted%len(rts)]
		added, err := t.Add(ctx, rt, int64(rng.Intn(t.opts.KeyRange)))
		if err != nil {
			return err
		}
		if added {
			inserted++
		}
	}
	return nil
}

// Op implements apps.Benchmark.
func (t *RBTree) Op(ctx context.Context, rt *stm.Runtime, rng *rand.Rand, read bool) error {
	n := 1 + rng.Intn(t.opts.MaxNested)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(t.pick(rng, t.opts.KeyRange))
	}
	if read {
		return rt.AtomicRead(ctx, "rb/contains", func(tx *stm.Txn) error {
			for _, v := range vals {
				val := v
				if err := tx.Atomic(ctx, "rb/contains/one", func(c *stm.Txn) error {
					_, err := t.containsIn(ctx, c, val)
					return err
				}); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return rt.Atomic(ctx, "rb/update", func(tx *stm.Txn) error {
		for i, v := range vals {
			val := v
			add := i%2 == 0
			if err := tx.Atomic(ctx, "rb/update/one", func(c *stm.Txn) error {
				var err error
				if add {
					_, err = t.addIn(ctx, c, rt, val)
				} else {
					_, err = t.removeIn(ctx, c, val)
				}
				return err
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// workset is a transaction-local view of the tree: node working copies
// that can be mutated freely and flushed back in one pass.
type workset struct {
	t     *RBTree
	ctx   context.Context
	tx    *stm.Txn
	nodes map[object.ID]*Node
	dirty map[object.ID]bool
	fresh map[object.ID]bool // created in this operation

	rootChild object.ID
	rootDirty bool
}

func (t *RBTree) newWorkset(ctx context.Context, tx *stm.Txn) (*workset, error) {
	rv, err := tx.Read(ctx, t.root)
	if err != nil {
		return nil, err
	}
	return &workset{
		t:         t,
		ctx:       ctx,
		tx:        tx,
		nodes:     make(map[object.ID]*Node),
		dirty:     make(map[object.ID]bool),
		fresh:     make(map[object.ID]bool),
		rootChild: rv.(*Root).Child,
	}, nil
}

func (w *workset) get(id object.ID) (*Node, error) {
	if n, ok := w.nodes[id]; ok {
		return n, nil
	}
	v, err := w.tx.Read(w.ctx, id)
	if err != nil {
		return nil, err
	}
	n := v.(*Node).Copy().(*Node)
	w.nodes[id] = n
	return n, nil
}

func (w *workset) add(id object.ID, n *Node) {
	w.nodes[id] = n
	w.fresh[id] = true
}

func (w *workset) mark(id object.ID) { w.dirty[id] = true }

func (w *workset) setRoot(id object.ID) {
	w.rootChild = id
	w.rootDirty = true
}

func (w *workset) flush() error {
	for id := range w.fresh {
		if err := w.tx.Create(id, w.nodes[id]); err != nil {
			return err
		}
	}
	for id := range w.dirty {
		if w.fresh[id] {
			continue // Create already carries the final state
		}
		if err := w.tx.Write(w.ctx, id, w.nodes[id]); err != nil {
			return err
		}
	}
	if w.rootDirty {
		if err := w.tx.Write(w.ctx, w.t.root, &Root{Child: w.rootChild}); err != nil {
			return err
		}
	}
	return nil
}

// rotateLeft rotates the subtree rooted at x left and returns the new
// subtree root (x's former right child).
func (w *workset) rotateLeft(xid object.ID) (object.ID, error) {
	x, err := w.get(xid)
	if err != nil {
		return "", err
	}
	yid := x.Right
	y, err := w.get(yid)
	if err != nil {
		return "", err
	}
	x.Right = y.Left
	y.Left = xid
	w.mark(xid)
	w.mark(yid)
	return yid, nil
}

// rotateRight mirrors rotateLeft.
func (w *workset) rotateRight(xid object.ID) (object.ID, error) {
	x, err := w.get(xid)
	if err != nil {
		return "", err
	}
	yid := x.Left
	y, err := w.get(yid)
	if err != nil {
		return "", err
	}
	x.Left = y.Right
	y.Right = xid
	w.mark(xid)
	w.mark(yid)
	return yid, nil
}

// relink points the parent of a rotated subtree at its new root. parentID
// is "" when the subtree was the whole tree.
func (w *workset) relink(parentID, oldChild, newChild object.ID) error {
	if parentID == "" {
		w.setRoot(newChild)
		return nil
	}
	p, err := w.get(parentID)
	if err != nil {
		return err
	}
	if p.Left == oldChild {
		p.Left = newChild
	} else {
		p.Right = newChild
	}
	w.mark(parentID)
	return nil
}

func (t *RBTree) containsIn(ctx context.Context, tx *stm.Txn, v int64) (bool, error) {
	w, err := t.newWorkset(ctx, tx)
	if err != nil {
		return false, err
	}
	cur := w.rootChild
	for cur != "" {
		n, err := w.get(cur)
		if err != nil {
			return false, err
		}
		switch {
		case v == n.Val:
			return !n.Deleted, nil
		case v < n.Val:
			cur = n.Left
		default:
			cur = n.Right
		}
	}
	return false, nil
}

func (t *RBTree) removeIn(ctx context.Context, tx *stm.Txn, v int64) (bool, error) {
	w, err := t.newWorkset(ctx, tx)
	if err != nil {
		return false, err
	}
	cur := w.rootChild
	for cur != "" {
		n, err := w.get(cur)
		if err != nil {
			return false, err
		}
		switch {
		case v == n.Val:
			if n.Deleted {
				return false, nil
			}
			n.Deleted = true
			w.mark(cur)
			return true, w.flush()
		case v < n.Val:
			cur = n.Left
		default:
			cur = n.Right
		}
	}
	return false, nil
}

// addIn inserts v with full red-black insert fixup (CLRS, with an explicit
// ancestor stack instead of parent pointers).
func (t *RBTree) addIn(ctx context.Context, tx *stm.Txn, rt *stm.Runtime, v int64) (bool, error) {
	w, err := t.newWorkset(ctx, tx)
	if err != nil {
		return false, err
	}

	// Descend, recording the path root→parent.
	var path []object.ID
	cur := w.rootChild
	for cur != "" {
		n, err := w.get(cur)
		if err != nil {
			return false, err
		}
		if v == n.Val {
			if !n.Deleted {
				return false, nil
			}
			n.Deleted = false
			w.mark(cur)
			return true, w.flush()
		}
		path = append(path, cur)
		if v < n.Val {
			cur = n.Left
		} else {
			cur = n.Right
		}
	}

	// Attach the new red node.
	zid := t.newNodeID(rt)
	w.add(zid, &Node{Val: v, Red: true})
	if len(path) == 0 {
		w.setRoot(zid)
	} else {
		pid := path[len(path)-1]
		p := w.nodes[pid]
		if v < p.Val {
			p.Left = zid
		} else {
			p.Right = zid
		}
		w.mark(pid)
	}

	// Insert fixup.
	for len(path) > 0 {
		pid := path[len(path)-1]
		p := w.nodes[pid]
		if !p.Red {
			break
		}
		// A red parent implies a grandparent (the root is always black).
		gid := path[len(path)-2]
		g := w.nodes[gid]
		var ggid object.ID
		if len(path) >= 3 {
			ggid = path[len(path)-3]
		}

		if g.Left == pid {
			uncle, uncleID, err := w.child(g.Right)
			if err != nil {
				return false, err
			}
			if uncle != nil && uncle.Red {
				p.Red, uncle.Red, g.Red = false, false, true
				w.mark(pid)
				w.mark(uncleID)
				w.mark(gid)
				zid = gid
				path = path[:len(path)-2]
				continue
			}
			if p.Right == zid {
				newP, err := w.rotateLeft(pid)
				if err != nil {
					return false, err
				}
				g.Left = newP
				w.mark(gid)
				pid, zid = newP, pid
				p = w.nodes[pid]
			}
			newG, err := w.rotateRight(gid)
			if err != nil {
				return false, err
			}
			p.Red, g.Red = false, true
			w.mark(pid)
			w.mark(gid)
			if err := w.relink(ggid, gid, newG); err != nil {
				return false, err
			}
			break
		}

		// Mirror image: parent is the right child.
		uncle, uncleID, err := w.child(g.Left)
		if err != nil {
			return false, err
		}
		if uncle != nil && uncle.Red {
			p.Red, uncle.Red, g.Red = false, false, true
			w.mark(pid)
			w.mark(uncleID)
			w.mark(gid)
			zid = gid
			path = path[:len(path)-2]
			continue
		}
		if p.Left == zid {
			newP, err := w.rotateRight(pid)
			if err != nil {
				return false, err
			}
			g.Right = newP
			w.mark(gid)
			pid, zid = newP, pid
			p = w.nodes[pid]
		}
		newG, err := w.rotateLeft(gid)
		if err != nil {
			return false, err
		}
		p.Red, g.Red = false, true
		w.mark(pid)
		w.mark(gid)
		if err := w.relink(ggid, gid, newG); err != nil {
			return false, err
		}
		break
	}

	// The root is always black.
	if w.rootChild != "" {
		rn, err := w.get(w.rootChild)
		if err != nil {
			return false, err
		}
		if rn.Red {
			rn.Red = false
			w.mark(w.rootChild)
		}
	}
	return true, w.flush()
}

// child loads an optional child node ("" yields nil).
func (w *workset) child(id object.ID) (*Node, object.ID, error) {
	if id == "" {
		return nil, "", nil
	}
	n, err := w.get(id)
	return n, id, err
}

// Add inserts v, reporting whether the set changed.
func (t *RBTree) Add(ctx context.Context, rt *stm.Runtime, v int64) (bool, error) {
	var added bool
	err := rt.Atomic(ctx, "rb/add", func(tx *stm.Txn) error {
		var err error
		added, err = t.addIn(ctx, tx, rt, v)
		return err
	})
	return added, err
}

// Remove deletes v, reporting whether the set changed.
func (t *RBTree) Remove(ctx context.Context, rt *stm.Runtime, v int64) (bool, error) {
	var removed bool
	err := rt.Atomic(ctx, "rb/remove", func(tx *stm.Txn) error {
		var err error
		removed, err = t.removeIn(ctx, tx, v)
		return err
	})
	return removed, err
}

// Contains reports membership of v.
func (t *RBTree) Contains(ctx context.Context, rt *stm.Runtime, v int64) (bool, error) {
	var found bool
	err := rt.AtomicRead(ctx, "rb/contains", func(tx *stm.Txn) error {
		var err error
		found, err = t.containsIn(ctx, tx, v)
		return err
	})
	return found, err
}

// Snapshot returns the live elements in sorted order.
func (t *RBTree) Snapshot(ctx context.Context, rt *stm.Runtime) ([]int64, error) {
	var out []int64
	err := rt.AtomicRead(ctx, "rb/snapshot", func(tx *stm.Txn) error {
		out = out[:0]
		rv, err := tx.Read(ctx, t.root)
		if err != nil {
			return err
		}
		return t.inorder(ctx, tx, rv.(*Root).Child, &out)
	})
	return out, err
}

func (t *RBTree) inorder(ctx context.Context, tx *stm.Txn, id object.ID, out *[]int64) error {
	if id == "" {
		return nil
	}
	nv, err := tx.Read(ctx, id)
	if err != nil {
		return err
	}
	n := nv.(*Node)
	if err := t.inorder(ctx, tx, n.Left, out); err != nil {
		return err
	}
	if !n.Deleted {
		*out = append(*out, n.Val)
	}
	return t.inorder(ctx, tx, n.Right, out)
}

// Check implements apps.Benchmark: BST order plus the red-black shape
// invariants — the root is black, no red node has a red child, and every
// root-to-leaf path crosses the same number of black nodes.
func (t *RBTree) Check(ctx context.Context, rt *stm.Runtime) error {
	return rt.AtomicRead(ctx, "rb/check", func(tx *stm.Txn) error {
		rv, err := tx.Read(ctx, t.root)
		if err != nil {
			return err
		}
		rootID := rv.(*Root).Child
		if rootID == "" {
			return nil
		}
		rn, err := tx.Read(ctx, rootID)
		if err != nil {
			return err
		}
		if rn.(*Node).Red {
			return fmt.Errorf("rbtree: red root")
		}
		var prev *int64
		_, err = t.verify(ctx, tx, rootID, false, &prev)
		return err
	})
}

// verify walks the tree returning its black height and checking order and
// colour constraints.
func (t *RBTree) verify(ctx context.Context, tx *stm.Txn, id object.ID, parentRed bool, prev **int64) (int, error) {
	if id == "" {
		return 1, nil
	}
	nv, err := tx.Read(ctx, id)
	if err != nil {
		return 0, err
	}
	n := nv.(*Node)
	if parentRed && n.Red {
		return 0, fmt.Errorf("rbtree: red-red violation at %d", n.Val)
	}
	lh, err := t.verify(ctx, tx, n.Left, n.Red, prev)
	if err != nil {
		return 0, err
	}
	if *prev != nil && **prev >= n.Val {
		return 0, fmt.Errorf("rbtree: order violation at %d", n.Val)
	}
	v := n.Val
	*prev = &v
	rh, err := t.verify(ctx, tx, n.Right, n.Red, prev)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black-height mismatch at %d: %d vs %d", n.Val, lh, rh)
	}
	if n.Red {
		return lh, nil
	}
	return lh + 1, nil
}
