package rbtree

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"dstm/internal/testutil"
)

func TestAscendingInsertStaysBalanced(t *testing.T) {
	// Ascending inserts are the degenerate case for a plain BST; the RB
	// fixups must keep the shape invariants (checked by Check) intact.
	rts := testutil.Cluster(t, 2, nil, nil)
	tr := New(Options{KeyRange: 64, InitialSize: 1, Name: "rbt1"})
	ctx := context.Background()
	if err := tr.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 40; v++ {
		if _, err := tr.Add(ctx, rts[int(v)%2], v); err != nil {
			t.Fatal(err)
		}
		if err := tr.Check(ctx, rts[0]); err != nil {
			t.Fatalf("after insert %d: %v", v, err)
		}
	}
	snap, err := tr.Snapshot(ctx, rts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) < 40 {
		t.Fatalf("snapshot has %d elements, want >= 40", len(snap))
	}
}

func TestDescendingInsert(t *testing.T) {
	rts := testutil.Cluster(t, 1, nil, nil)
	tr := New(Options{KeyRange: 64, InitialSize: 1, Name: "rbt2"})
	ctx := context.Background()
	if err := tr.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	for v := int64(63); v >= 20; v-- {
		if _, err := tr.Add(ctx, rts[0], v); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOracle(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	tr := New(Options{KeyRange: 48, InitialSize: 6, Name: "rbt3"})
	ctx := context.Background()
	if err := tr.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	oracle := map[int64]bool{}
	snap, err := tr.Snapshot(ctx, rts[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range snap {
		oracle[v] = true
	}

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 250; i++ {
		v := int64(rng.Intn(48))
		rt := rts[i%2]
		switch rng.Intn(3) {
		case 0:
			added, err := tr.Add(ctx, rt, v)
			if err != nil {
				t.Fatal(err)
			}
			if added == oracle[v] {
				t.Fatalf("add(%d) = %v, oracle %v", v, added, oracle[v])
			}
			oracle[v] = true
		case 1:
			removed, err := tr.Remove(ctx, rt, v)
			if err != nil {
				t.Fatal(err)
			}
			if removed != oracle[v] {
				t.Fatalf("remove(%d) = %v, oracle %v", v, removed, oracle[v])
			}
			delete(oracle, v)
		default:
			ok, err := tr.Contains(ctx, rt, v)
			if err != nil {
				t.Fatal(err)
			}
			if ok != oracle[v] {
				t.Fatalf("contains(%d) = %v, oracle %v", v, ok, oracle[v])
			}
		}
		if i%50 == 0 {
			if err := tr.Check(ctx, rts[0]); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tr.Check(ctx, rts[1]); err != nil {
		t.Fatal(err)
	}
	snap, err = tr.Snapshot(ctx, rts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != len(oracle) {
		t.Fatalf("snapshot %d elements vs oracle %d", len(snap), len(oracle))
	}
	for _, v := range snap {
		if !oracle[v] {
			t.Fatalf("snapshot has %d not in oracle", v)
		}
	}
}

func TestConcurrentOps(t *testing.T) {
	const nodes = 3
	rts := testutil.Cluster(t, nodes, nil, nil)
	tr := New(Options{KeyRange: 32, InitialSize: 8, Name: "rbt4"})
	ctx := context.Background()
	if err := tr.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + n)))
			for i := 0; i < 12; i++ {
				if err := tr.Op(ctx, rts[n], rng, i%3 == 0); err != nil {
					errs <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tr.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestDefaults(t *testing.T) {
	tr := New(Options{})
	if tr.opts.KeyRange <= 0 || tr.opts.InitialSize <= 0 {
		t.Fatalf("defaults: %+v", tr.opts)
	}
	if tr.Name() != "RB-Tree" {
		t.Fatalf("name %q", tr.Name())
	}
}
