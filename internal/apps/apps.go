// Package apps defines the common shape of the paper's six benchmark
// applications (Vacation, Bank, Linked-List, BST, RB-Tree, DHT), each
// implemented as closed-nested transactional programs over the D-STM API.
package apps

import (
	"context"
	"math/rand"

	"dstm/internal/stm"
)

// Benchmark is one distributed application under test.
type Benchmark interface {
	// Name is the benchmark's display name ("Bank", "DHT", ...).
	Name() string

	// Setup seeds the shared objects across the cluster's runtimes
	// (paper: five to ten shared objects per node).
	Setup(ctx context.Context, rts []*stm.Runtime) error

	// Op executes one transaction on rt. read selects a read-only
	// operation (the paper's contention knob: 90 % reads = low contention,
	// 10 % = high). rng is per-worker.
	Op(ctx context.Context, rt *stm.Runtime, rng *rand.Rand, read bool) error

	// Check validates the application's global invariants after a run.
	Check(ctx context.Context, rt *stm.Runtime) error
}
