// Package apps defines the common shape of the paper's six benchmark
// applications (Vacation, Bank, Linked-List, BST, RB-Tree, DHT), each
// implemented as closed-nested transactional programs over the D-STM API.
package apps

import (
	"context"
	"math/rand"

	"dstm/internal/stm"
)

// KeyPicker chooses a key index in [0, n) from rng. Benchmarks route
// every random key draw through their picker so workload skew (Zipfian,
// hot-key storms — see internal/workload) is injectable from outside;
// the default picker is uniform.
type KeyPicker func(rng *rand.Rand, n int) int

// UniformKeys is the default KeyPicker.
func UniformKeys(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	return rng.Intn(n)
}

// PickerOrUniform returns p, or UniformKeys when p is nil — the helper
// every benchmark's SetKeyPicker uses so a nil reset restores the
// default.
func PickerOrUniform(p KeyPicker) KeyPicker {
	if p == nil {
		return UniformKeys
	}
	return p
}

// Skewable is implemented by benchmarks whose key distribution can be
// replaced. SetKeyPicker must be called before the op loops start; all
// six benchmarks implement it.
type Skewable interface {
	SetKeyPicker(KeyPicker)
}

// Benchmark is one distributed application under test.
type Benchmark interface {
	// Name is the benchmark's display name ("Bank", "DHT", ...).
	Name() string

	// Setup seeds the shared objects across the cluster's runtimes
	// (paper: five to ten shared objects per node).
	Setup(ctx context.Context, rts []*stm.Runtime) error

	// Op executes one transaction on rt. read selects a read-only
	// operation (the paper's contention knob: 90 % reads = low contention,
	// 10 % = high). rng is per-worker.
	Op(ctx context.Context, rt *stm.Runtime, rng *rand.Rand, read bool) error

	// Check validates the application's global invariants after a run.
	Check(ctx context.Context, rt *stm.Runtime) error
}
