package vacation

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"dstm/internal/stm"
	"dstm/internal/testutil"
)

func setupVac(t *testing.T, nodes int, opts Options) (*Vacation, []*stm.Runtime) {
	t.Helper()
	rts := testutil.Cluster(t, nodes, nil, nil)
	v := New(opts)
	if err := v.Setup(context.Background(), rts); err != nil {
		t.Fatal(err)
	}
	return v, rts
}

func TestReservationClaimsInventory(t *testing.T) {
	v, rts := setupVac(t, 2, Options{ResourcesPerKindPerNode: 2, CustomersPerNode: 1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))

	for i := 0; i < 10; i++ {
		if err := v.MakeReservation(ctx, rts[i%2], rng, i%v.customers); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
	// Someone must actually hold reservations.
	var held int
	err := rts[0].Atomic(ctx, "count", func(tx *stm.Txn) error {
		held = 0
		for i := 0; i < v.customers; i++ {
			val, err := tx.Read(ctx, CustomerID(i))
			if err != nil {
				return err
			}
			held += len(val.(*Customer).Reservations)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if held == 0 {
		t.Fatal("10 reservation transactions booked nothing")
	}
}

func TestCancelReleasesEverything(t *testing.T) {
	v, rts := setupVac(t, 2, Options{ResourcesPerKindPerNode: 2, CustomersPerNode: 1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2))

	for i := 0; i < 6; i++ {
		if err := v.MakeReservation(ctx, rts[0], rng, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.CancelCustomer(ctx, rts[1], 0); err != nil {
		t.Fatal(err)
	}
	// All inventory restored for customer 0's bookings; invariant holds.
	if err := v.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
	err := rts[0].Atomic(ctx, "verify", func(tx *stm.Txn) error {
		val, err := tx.Read(ctx, CustomerID(0))
		if err != nil {
			return err
		}
		if n := len(val.(*Customer).Reservations); n != 0 {
			t.Fatalf("customer still holds %d reservations", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedOpsKeepInvariant(t *testing.T) {
	const nodes = 3
	v, rts := setupVac(t, nodes, Options{ResourcesPerKindPerNode: 2, CustomersPerNode: 2, UnitsPerResource: 20})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + n)))
			for i := 0; i < 15; i++ {
				if err := v.Op(ctx, rts[n], rng, i%4 == 0); err != nil {
					errs <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := v.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestAvailabilityNeverNegative(t *testing.T) {
	// Tiny inventory, many reservations: availability must clamp at 0
	// (reservation skips the kind), never go negative.
	v, rts := setupVac(t, 2, Options{ResourcesPerKindPerNode: 1, CustomersPerNode: 1, UnitsPerResource: 2, ScanSpan: 2})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if err := v.MakeReservation(ctx, rts[i%2], rng, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsAndNames(t *testing.T) {
	v := New(Options{})
	if v.opts.ResourcesPerKindPerNode <= 0 || v.opts.CustomersPerNode <= 0 ||
		v.opts.UnitsPerResource <= 0 || v.opts.ScanSpan <= 0 {
		t.Fatalf("defaults: %+v", v.opts)
	}
	if v.Name() != "Vacation" {
		t.Fatalf("name %q", v.Name())
	}
	if Car.String() != "car" || Flight.String() != "flight" || Room.String() != "room" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}
