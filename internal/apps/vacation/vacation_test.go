package vacation

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"dstm/internal/object"
	"dstm/internal/stm"
	"dstm/internal/testutil"
)

func setupVac(t *testing.T, nodes int, opts Options) (*Vacation, []*stm.Runtime) {
	t.Helper()
	rts := testutil.Cluster(t, nodes, nil, nil)
	v := New(opts)
	if err := v.Setup(context.Background(), rts); err != nil {
		t.Fatal(err)
	}
	return v, rts
}

func TestReservationClaimsInventory(t *testing.T) {
	v, rts := setupVac(t, 2, Options{ResourcesPerKindPerNode: 2, CustomersPerNode: 1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))

	for i := 0; i < 10; i++ {
		if err := v.MakeReservation(ctx, rts[i%2], rng, i%v.customers); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
	// Someone must actually hold reservations.
	var held int
	err := rts[0].Atomic(ctx, "count", func(tx *stm.Txn) error {
		held = 0
		for i := 0; i < v.customers; i++ {
			val, err := tx.Read(ctx, CustomerID(i))
			if err != nil {
				return err
			}
			held += len(val.(*Customer).Reservations)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if held == 0 {
		t.Fatal("10 reservation transactions booked nothing")
	}
}

func TestCancelReleasesEverything(t *testing.T) {
	v, rts := setupVac(t, 2, Options{ResourcesPerKindPerNode: 2, CustomersPerNode: 1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2))

	for i := 0; i < 6; i++ {
		if err := v.MakeReservation(ctx, rts[0], rng, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.CancelCustomer(ctx, rts[1], 0); err != nil {
		t.Fatal(err)
	}
	// All inventory restored for customer 0's bookings; invariant holds.
	if err := v.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
	err := rts[0].Atomic(ctx, "verify", func(tx *stm.Txn) error {
		val, err := tx.Read(ctx, CustomerID(0))
		if err != nil {
			return err
		}
		if n := len(val.(*Customer).Reservations); n != 0 {
			t.Fatalf("customer still holds %d reservations", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedOpsKeepInvariant(t *testing.T) {
	const nodes = 3
	v, rts := setupVac(t, nodes, Options{ResourcesPerKindPerNode: 2, CustomersPerNode: 2, UnitsPerResource: 20})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + n)))
			for i := 0; i < 15; i++ {
				if err := v.Op(ctx, rts[n], rng, i%4 == 0); err != nil {
					errs <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := v.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestAvailabilityNeverNegative(t *testing.T) {
	// Tiny inventory, many reservations: availability must clamp at 0
	// (reservation skips the kind), never go negative.
	v, rts := setupVac(t, 2, Options{ResourcesPerKindPerNode: 1, CustomersPerNode: 1, UnitsPerResource: 2, ScanSpan: 2})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if err := v.MakeReservation(ctx, rts[i%2], rng, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsAndNames(t *testing.T) {
	v := New(Options{})
	if v.opts.ResourcesPerKindPerNode <= 0 || v.opts.CustomersPerNode <= 0 ||
		v.opts.UnitsPerResource <= 0 || v.opts.ScanSpan <= 0 {
		t.Fatalf("defaults: %+v", v.opts)
	}
	if v.Name() != "Vacation" {
		t.Fatalf("name %q", v.Name())
	}
	if Car.String() != "car" || Flight.String() != "flight" || Room.String() != "room" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}

// TestSkewedReadsAndWritesShareHotSet pins the read/write key correlation:
// with a degenerate picker (always rank 0), BOTH the read op (query) and
// the price-update write op draw kind AND index through the picker, so the
// whole workload concentrates on the single hot object ResourceID(0, 0).
// Before the fix the kind was drawn uniformly, decorrelating the read and
// write hot sets under skew.
func TestSkewedReadsAndWritesShareHotSet(t *testing.T) {
	v, rts := setupVac(t, 2, Options{ResourcesPerKindPerNode: 2, CustomersPerNode: 1, ScanSpan: 1})
	v.SetKeyPicker(func(rng *rand.Rand, n int) int { return 0 })
	ctx := context.Background()

	// Record every seeded price, hammer price updates, then diff: only the
	// hot entry may change.
	readPrice := func(k Kind, i int) int64 {
		t.Helper()
		var price int64
		if err := rts[0].Atomic(ctx, "p", func(tx *stm.Txn) error {
			val, err := tx.Read(ctx, ResourceID(k, i))
			if err != nil {
				return err
			}
			price = val.(*Resource).Price
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return price
	}
	seeded := make(map[object.ID]int64)
	for k := Kind(0); k < numKinds; k++ {
		for i := 0; i < v.resources; i++ {
			seeded[ResourceID(k, i)] = readPrice(k, i)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		if err := v.updateTables(ctx, rts[i%2], rng); err != nil {
			t.Fatal(err)
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		for i := 0; i < v.resources; i++ {
			if k == 0 && i == 0 {
				continue // the hot entry: updates allowed
			}
			if got := readPrice(k, i); got != seeded[ResourceID(k, i)] {
				t.Fatalf("cold entry %s price changed %d -> %d — writes escaped the hot set",
					ResourceID(k, i), seeded[ResourceID(k, i)], got)
			}
		}
	}

	// The read op draws through the same picker: count picker calls per
	// query and confirm determinism of the drawn targets across reruns.
	var calls int
	v.SetKeyPicker(func(rng *rand.Rand, n int) int { calls++; return 0 })
	if err := v.query(ctx, rts[0], rand.New(rand.NewSource(9))); err != nil {
		t.Fatal(err)
	}
	if calls != 3 { // customer, kind, offset — kind MUST go through the picker
		t.Fatalf("query made %d picker draws, want 3 (customer, kind, offset)", calls)
	}
}

// TestSkewDeterminism pins that a fixed seed yields an identical pick
// sequence for the mixed op stream — the harness relies on this for
// reproducible skewed cells.
func TestSkewDeterminism(t *testing.T) {
	run := func() []int {
		v, rts := setupVac(t, 1, Options{ResourcesPerKindPerNode: 2, CustomersPerNode: 2, ScanSpan: 1})
		var picks []int
		v.SetKeyPicker(func(rng *rand.Rand, n int) int {
			p := rng.Intn(n)
			picks = append(picks, p)
			return p
		})
		ctx := context.Background()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 15; i++ {
			if err := v.Op(ctx, rts[0], rng, i%3 == 0); err != nil {
				t.Fatal(err)
			}
		}
		return picks
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("pick streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}
