package vacation

import "dstm/internal/wire"

// vacation's slots in the application-value ID range 100–119 (see DESIGN.md
// "Wire format").
const (
	wireIDResource wire.ID = 102
	wireIDCustomer wire.ID = 103
)

func init() {
	wire.Register(wireIDResource, &Resource{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(*Resource)
			b = wire.AppendVarint(b, q.Total)
			b = wire.AppendVarint(b, q.Avail)
			return wire.AppendVarint(b, q.Price), nil
		},
		func(r *wire.Reader, prev any) any {
			q, _ := prev.(*Resource)
			if q == nil {
				q = new(Resource)
			}
			q.Total = r.Varint()
			q.Avail = r.Varint()
			q.Price = r.Varint()
			return q
		})
	wire.Register(wireIDCustomer, &Customer{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(*Customer)
			b = wire.AppendUvarint(b, uint64(len(q.Reservations)))
			for i := range q.Reservations {
				b = wire.AppendUvarint(b, uint64(q.Reservations[i].Kind))
				b = wire.AppendVarint(b, int64(q.Reservations[i].Index))
				b = wire.AppendVarint(b, q.Reservations[i].Price)
			}
			return b, nil
		},
		func(r *wire.Reader, prev any) any {
			q, _ := prev.(*Customer)
			if q == nil {
				q = new(Customer)
			}
			n := r.SliceLen(3)
			if cap(q.Reservations) >= n {
				q.Reservations = q.Reservations[:n]
			} else {
				q.Reservations = make([]Reservation, n)
			}
			for i := range q.Reservations {
				q.Reservations[i].Kind = Kind(r.Uvarint())
				q.Reservations[i].Index = int(r.Varint())
				q.Reservations[i].Price = r.Varint()
			}
			return q
		})
}
