// Package vacation ports the STAMP Vacation benchmark to the D-STM: a
// travel-reservation system with car/flight/room inventories and customer
// records spread over the cluster. A reservation transaction is a parent
// atomic action enclosing one closed-nested transaction per resource kind
// (find the cheapest available unit and claim it) plus a customer update —
// exactly the composition pattern the paper motivates. The benchmark's
// transactions are the longest-running of the suite.
package vacation

import (
	"context"
	"fmt"
	"math/rand"

	"dstm/internal/apps"
	"dstm/internal/object"
	"dstm/internal/stm"
)

// Kind enumerates resource tables.
type Kind uint8

// Resource kinds.
const (
	Car Kind = iota
	Flight
	Room
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Car:
		return "car"
	case Flight:
		return "flight"
	case Room:
		return "room"
	default:
		return "unknown"
	}
}

// Resource is one inventory entry.
type Resource struct {
	Total int64
	Avail int64
	Price int64
}

// Copy implements object.Value.
func (r *Resource) Copy() object.Value { c := *r; return &c }

// Reservation records one claimed resource unit.
type Reservation struct {
	Kind  Kind
	Index int
	Price int64
}

// Customer is a customer record with its reservations.
type Customer struct {
	Reservations []Reservation
}

// Copy implements object.Value (deep-copies the reservation list).
func (c *Customer) Copy() object.Value {
	n := &Customer{Reservations: make([]Reservation, len(c.Reservations))}
	copy(n.Reservations, c.Reservations)
	return n
}

func init() {
	object.Register(&Resource{})
	object.Register(&Customer{})
}

// Options configures the benchmark.
type Options struct {
	// ResourcesPerKindPerNode inventory entries of each kind per node.
	// 0 means 2 (×3 kinds + 2 customers = 8 objects/node, inside the
	// paper's 5–10 band).
	ResourcesPerKindPerNode int
	// CustomersPerNode customer records per node. 0 means 2.
	CustomersPerNode int
	// UnitsPerResource initial availability per inventory entry. 0 means 50.
	UnitsPerResource int64
	// ScanSpan is how many inventory entries a reservation scans per kind.
	// 0 means 4.
	ScanSpan int
}

// Vacation is the benchmark instance.
type Vacation struct {
	opts      Options
	resources int // per kind
	customers int
	pick      apps.KeyPicker
}

// New returns a Vacation benchmark.
func New(opts Options) *Vacation {
	if opts.ResourcesPerKindPerNode <= 0 {
		opts.ResourcesPerKindPerNode = 2
	}
	if opts.CustomersPerNode <= 0 {
		opts.CustomersPerNode = 2
	}
	if opts.UnitsPerResource <= 0 {
		opts.UnitsPerResource = 50
	}
	if opts.ScanSpan <= 0 {
		opts.ScanSpan = 4
	}
	return &Vacation{opts: opts, pick: apps.UniformKeys}
}

// SetKeyPicker implements apps.Skewable: customer and inventory-offset
// choices go through p, so skew concentrates reservations on a few hot
// customers and resource rows.
func (v *Vacation) SetKeyPicker(p apps.KeyPicker) { v.pick = apps.PickerOrUniform(p) }

// Name implements apps.Benchmark.
func (v *Vacation) Name() string { return "Vacation" }

// ResourceID returns the object ID of inventory entry i of kind k.
func ResourceID(k Kind, i int) object.ID {
	return object.ID(fmt.Sprintf("vac/%s/%d", k, i))
}

// CustomerID returns the object ID of customer i.
func CustomerID(i int) object.ID { return object.ID(fmt.Sprintf("vac/cust/%d", i)) }

// Setup implements apps.Benchmark.
func (v *Vacation) Setup(ctx context.Context, rts []*stm.Runtime) error {
	v.resources = v.opts.ResourcesPerKindPerNode * len(rts)
	v.customers = v.opts.CustomersPerNode * len(rts)
	rng := rand.New(rand.NewSource(45))
	for k := Kind(0); k < numKinds; k++ {
		for i := 0; i < v.resources; i++ {
			rt := rts[i%len(rts)]
			res := &Resource{
				Total: v.opts.UnitsPerResource,
				Avail: v.opts.UnitsPerResource,
				Price: 50 + int64(rng.Intn(450)),
			}
			if err := rt.CreateRoot(ctx, ResourceID(k, i), res); err != nil {
				return err
			}
		}
	}
	for i := 0; i < v.customers; i++ {
		rt := rts[i%len(rts)]
		if err := rt.CreateRoot(ctx, CustomerID(i), &Customer{}); err != nil {
			return err
		}
	}
	return nil
}

// Op implements apps.Benchmark. Writes split between making reservations
// (dominant, as in STAMP's default mix), cancelling a customer's
// reservations, and updating inventory prices.
func (v *Vacation) Op(ctx context.Context, rt *stm.Runtime, rng *rand.Rand, read bool) error {
	if read {
		return v.query(ctx, rt, rng)
	}
	switch r := rng.Intn(10); {
	case r < 7:
		return v.MakeReservation(ctx, rt, rng, v.pick(rng, v.customers))
	case r < 9:
		return v.CancelCustomer(ctx, rt, v.pick(rng, v.customers))
	default:
		return v.updateTables(ctx, rt, rng)
	}
}

// MakeReservation books the cheapest available unit of one to three
// resource kinds for the customer, each kind inside its own closed-nested
// transaction (the paper's "try an alternate remote device" pattern:
// a failed kind aborts only its inner transaction).
func (v *Vacation) MakeReservation(ctx context.Context, rt *stm.Runtime, rng *rand.Rand, cust int) error {
	kinds := make([]Kind, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		if rng.Intn(2) == 0 {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		kinds = append(kinds, Kind(rng.Intn(int(numKinds))))
	}
	offsets := make([]int, len(kinds))
	for i := range offsets {
		offsets[i] = v.pick(rng, v.resources)
	}

	return rt.Atomic(ctx, "vac/reserve", func(tx *stm.Txn) error {
		var booked []Reservation
		for i, k := range kinds {
			kind, off := k, offsets[i]
			// The inner transaction may retry: everything it assigns
			// outside itself must be overwrite-style (idempotent), never
			// accumulative — hence `chosen`, appended only after the inner
			// commit is final.
			var chosen *Reservation
			err := tx.Atomic(ctx, "vac/reserve/kind", func(c *stm.Txn) error {
				chosen = nil
				// Scan a window of the kind's inventory for the cheapest
				// available entry.
				best := -1
				var bestPrice int64
				for j := 0; j < v.opts.ScanSpan; j++ {
					idx := (off + j) % v.resources
					val, err := c.Read(ctx, ResourceID(kind, idx))
					if err != nil {
						return err
					}
					res := val.(*Resource)
					if res.Avail > 0 && (best < 0 || res.Price < bestPrice) {
						best, bestPrice = idx, res.Price
					}
				}
				if best < 0 {
					return nil // nothing available: skip this kind
				}
				if err := c.Update(ctx, ResourceID(kind, best), func(val object.Value) object.Value {
					val.(*Resource).Avail--
					return val
				}); err != nil {
					return err
				}
				chosen = &Reservation{Kind: kind, Index: best, Price: bestPrice}
				return nil
			})
			if err != nil {
				return err
			}
			if chosen != nil {
				booked = append(booked, *chosen)
			}
		}
		if len(booked) == 0 {
			return nil
		}
		return tx.Update(ctx, CustomerID(cust), func(val object.Value) object.Value {
			cu := val.(*Customer)
			cu.Reservations = append(cu.Reservations, booked...)
			return val
		})
	})
}

// CancelCustomer releases all of one customer's reservations (STAMP's
// delete-customer action), each release in a nested transaction.
func (v *Vacation) CancelCustomer(ctx context.Context, rt *stm.Runtime, cust int) error {
	return rt.Atomic(ctx, "vac/cancel", func(tx *stm.Txn) error {
		val, err := tx.Read(ctx, CustomerID(cust))
		if err != nil {
			return err
		}
		resv := val.(*Customer).Reservations
		for _, r := range resv {
			res := r
			if err := tx.Atomic(ctx, "vac/cancel/one", func(c *stm.Txn) error {
				return c.Update(ctx, ResourceID(res.Kind, res.Index), func(val object.Value) object.Value {
					val.(*Resource).Avail++
					return val
				})
			}); err != nil {
				return err
			}
		}
		return tx.Write(ctx, CustomerID(cust), &Customer{})
	})
}

// updateTables changes prices of a few random inventory entries (STAMP's
// update-tables action).
func (v *Vacation) updateTables(ctx context.Context, rt *stm.Runtime, rng *rand.Rand) error {
	n := 1 + rng.Intn(3)
	type target struct {
		k     Kind
		idx   int
		price int64
	}
	targets := make([]target, n)
	for i := range targets {
		targets[i] = target{
			// The kind goes through the key picker too: under a Zipfian
			// picker, price updates concentrate on the same (kind, index)
			// hot set that queries scan, instead of spreading uniformly
			// across kinds and decorrelating the read and write workloads.
			k:     Kind(v.pick(rng, int(numKinds))),
			idx:   v.pick(rng, v.resources),
			price: 50 + int64(rng.Intn(450)),
		}
	}
	return rt.Atomic(ctx, "vac/update", func(tx *stm.Txn) error {
		for _, tg := range targets {
			tgt := tg
			if err := tx.Atomic(ctx, "vac/update/one", func(c *stm.Txn) error {
				return c.Update(ctx, ResourceID(tgt.k, tgt.idx), func(val object.Value) object.Value {
					val.(*Resource).Price = tgt.price
					return val
				})
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// query reads a customer's itinerary and a window of inventory entries.
// The kind is drawn through the key picker so skewed cells query the same
// (kind, index) hot set the writers mutate (see updateTables), and the whole
// transaction rides the MVCC snapshot path when read-only reads are on.
func (v *Vacation) query(ctx context.Context, rt *stm.Runtime, rng *rand.Rand) error {
	cust := v.pick(rng, v.customers)
	kind := Kind(v.pick(rng, int(numKinds)))
	off := v.pick(rng, v.resources)
	return rt.AtomicRead(ctx, "vac/query", func(tx *stm.Txn) error {
		if err := tx.Atomic(ctx, "vac/query/cust", func(c *stm.Txn) error {
			_, err := c.Read(ctx, CustomerID(cust))
			return err
		}); err != nil {
			return err
		}
		return tx.Atomic(ctx, "vac/query/inv", func(c *stm.Txn) error {
			for j := 0; j < v.opts.ScanSpan; j++ {
				if _, err := c.Read(ctx, ResourceID(kind, (off+j)%v.resources)); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// Check implements apps.Benchmark: for every inventory entry,
// Total − Avail equals the number of reservations held against it, and
// 0 ≤ Avail ≤ Total.
func (v *Vacation) Check(ctx context.Context, rt *stm.Runtime) error {
	return rt.Atomic(ctx, "vac/check", func(tx *stm.Txn) error {
		claimed := make(map[object.ID]int64)
		for i := 0; i < v.customers; i++ {
			val, err := tx.Read(ctx, CustomerID(i))
			if err != nil {
				return err
			}
			for _, r := range val.(*Customer).Reservations {
				claimed[ResourceID(r.Kind, r.Index)]++
			}
		}
		for k := Kind(0); k < numKinds; k++ {
			for i := 0; i < v.resources; i++ {
				oid := ResourceID(k, i)
				val, err := tx.Read(ctx, oid)
				if err != nil {
					return err
				}
				res := val.(*Resource)
				if res.Avail < 0 || res.Avail > res.Total {
					return fmt.Errorf("vacation: %s has avail %d of total %d", oid, res.Avail, res.Total)
				}
				if got := res.Total - res.Avail; got != claimed[oid] {
					return fmt.Errorf("vacation: %s claims mismatch: inventory says %d, customers hold %d",
						oid, got, claimed[oid])
				}
			}
		}
		return nil
	})
}
