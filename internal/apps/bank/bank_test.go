package bank

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"dstm/internal/testutil"
)

func TestSetupSeedsAccounts(t *testing.T) {
	rts := testutil.Cluster(t, 3, nil, nil)
	b := New(Options{AccountsPerNode: 4})
	ctx := context.Background()
	if err := b.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	if b.Accounts() != 12 {
		t.Fatalf("accounts = %d", b.Accounts())
	}
	total, err := b.TotalBalance(ctx, rts[0])
	if err != nil {
		t.Fatal(err)
	}
	if total != 12*InitialBalance {
		t.Fatalf("total = %d", total)
	}
}

func TestTransfersConserveMoney(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	b := New(Options{AccountsPerNode: 3})
	ctx := context.Background()
	if err := b.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		if err := b.Op(ctx, rts[i%2], rng, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestReadOpRuns(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	b := New(Options{AccountsPerNode: 3})
	ctx := context.Background()
	if err := b.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		if err := b.Op(ctx, rts[i%2], rng, true); err != nil {
			t.Fatal(err)
		}
	}
	// Reads never change balances.
	if err := b.Check(ctx, rts[1]); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransfersConserveMoney(t *testing.T) {
	const nodes = 3
	rts := testutil.Cluster(t, nodes, nil, nil)
	b := New(Options{AccountsPerNode: 2, MaxNested: 3})
	ctx := context.Background()
	if err := b.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(n)))
			for i := 0; i < 15; i++ {
				if err := b.Op(ctx, rts[n], rng, i%4 == 0); err != nil {
					errs <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := b.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	b := New(Options{})
	if b.opts.AccountsPerNode <= 0 || b.opts.MaxNested <= 0 || b.opts.AuditSpan <= 0 {
		t.Fatalf("defaults not applied: %+v", b.opts)
	}
	if b.Name() != "Bank" {
		t.Fatalf("name %q", b.Name())
	}
}
