package bank

import "dstm/internal/wire"

// Wire type IDs 100–119 are reserved for application object values; bank
// takes 100 (see DESIGN.md "Wire format").
const wireIDAccount wire.ID = 100

func init() {
	wire.Register(wireIDAccount, &Account{},
		func(b []byte, v any) ([]byte, error) {
			return wire.AppendVarint(b, v.(*Account).Balance), nil
		},
		func(r *wire.Reader, prev any) any {
			a, _ := prev.(*Account)
			if a == nil {
				a = new(Account)
			}
			a.Balance = r.Varint()
			return a
		})
}
