// Package bank implements the paper's Bank monetary benchmark: accounts
// spread across the cluster, write transactions performing batches of
// transfers (each transfer a closed-nested transaction), and read
// transactions auditing account subsets. The global invariant is
// conservation of money.
package bank

import (
	"context"
	"fmt"
	"math/rand"

	"dstm/internal/apps"
	"dstm/internal/object"
	"dstm/internal/stm"
)

// InitialBalance is each account's starting balance.
const InitialBalance int64 = 1_000

// Account is the shared object: one bank account.
type Account struct {
	Balance int64
}

// Copy implements object.Value.
func (a *Account) Copy() object.Value { c := *a; return &c }

func init() { object.Register(&Account{}) }

// Options configures the benchmark.
type Options struct {
	// AccountsPerNode is the number of accounts seeded at each node
	// (paper: 5–10 shared objects per node). 0 means 8.
	AccountsPerNode int
	// MaxNested bounds the random number of nested transfers per write
	// transaction. 0 means 4.
	MaxNested int
	// AuditSpan is how many accounts a read transaction sums. 0 means 4.
	AuditSpan int
}

// Bank is the benchmark instance.
type Bank struct {
	opts     Options
	accounts int
	pick     apps.KeyPicker
}

// New returns a Bank benchmark.
func New(opts Options) *Bank {
	if opts.AccountsPerNode <= 0 {
		opts.AccountsPerNode = 8
	}
	if opts.MaxNested <= 0 {
		opts.MaxNested = 4
	}
	if opts.AuditSpan <= 0 {
		opts.AuditSpan = 4
	}
	return &Bank{opts: opts, pick: apps.UniformKeys}
}

// SetKeyPicker implements apps.Skewable: account choice for transfers and
// audits goes through p.
func (b *Bank) SetKeyPicker(p apps.KeyPicker) { b.pick = apps.PickerOrUniform(p) }

// Name implements apps.Benchmark.
func (b *Bank) Name() string { return "Bank" }

// AccountID returns the object ID of account i.
func AccountID(i int) object.ID { return object.ID(fmt.Sprintf("bank/acct/%d", i)) }

// Setup implements apps.Benchmark: account i lives on node i mod N.
func (b *Bank) Setup(ctx context.Context, rts []*stm.Runtime) error {
	b.accounts = b.opts.AccountsPerNode * len(rts)
	for i := 0; i < b.accounts; i++ {
		rt := rts[i%len(rts)]
		if err := rt.CreateRoot(ctx, AccountID(i), &Account{Balance: InitialBalance}); err != nil {
			return err
		}
	}
	return nil
}

// Accounts returns the number of seeded accounts.
func (b *Bank) Accounts() int { return b.accounts }

// Op implements apps.Benchmark.
func (b *Bank) Op(ctx context.Context, rt *stm.Runtime, rng *rand.Rand, read bool) error {
	if read {
		return b.audit(ctx, rt, rng)
	}
	return b.batchTransfer(ctx, rt, rng)
}

// batchTransfer is the write transaction: a parent enclosing a random
// number of nested transfers, composing independently atomic transfers
// into one larger atomic action.
func (b *Bank) batchTransfer(ctx context.Context, rt *stm.Runtime, rng *rand.Rand) error {
	n := 1 + rng.Intn(b.opts.MaxNested)
	transfers := make([][2]int, n)
	for i := range transfers {
		from := b.pick(rng, b.accounts)
		to := b.pick(rng, b.accounts)
		for to == from {
			to = (to + 1) % b.accounts
		}
		transfers[i] = [2]int{from, to}
	}
	const amount = 7
	return rt.Atomic(ctx, "bank/batch", func(tx *stm.Txn) error {
		for _, t := range transfers {
			from, to := AccountID(t[0]), AccountID(t[1])
			if err := tx.Atomic(ctx, "bank/transfer", func(c *stm.Txn) error {
				if err := c.Update(ctx, from, func(v object.Value) object.Value {
					v.(*Account).Balance -= amount
					return v
				}); err != nil {
					return err
				}
				return c.Update(ctx, to, func(v object.Value) object.Value {
					v.(*Account).Balance += amount
					return v
				})
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// audit is the read transaction: sum a window of accounts in one bulk read.
// AtomicRead routes it onto the MVCC snapshot path when the runtime's
// read-only-reads knob is on (one snapshot-read batch per owner, no locks)
// and onto the ownership protocol otherwise.
func (b *Bank) audit(ctx context.Context, rt *stm.Runtime, rng *rand.Rand) error {
	start := b.pick(rng, b.accounts)
	span := b.opts.AuditSpan
	oids := make([]object.ID, span)
	for i := range oids {
		oids[i] = AccountID((start + i) % b.accounts)
	}
	return rt.AtomicRead(ctx, "bank/audit", func(tx *stm.Txn) error {
		vals, err := tx.ReadMany(ctx, oids)
		if err != nil {
			return err
		}
		var sum int64
		for _, v := range vals {
			sum += v.(*Account).Balance
		}
		_ = sum
		return nil
	})
}

// TotalBalance sums every account in one transaction.
func (b *Bank) TotalBalance(ctx context.Context, rt *stm.Runtime) (int64, error) {
	var total int64
	err := rt.AtomicRead(ctx, "bank/total", func(tx *stm.Txn) error {
		total = 0
		for i := 0; i < b.accounts; i++ {
			v, err := tx.Read(ctx, AccountID(i))
			if err != nil {
				return err
			}
			total += v.(*Account).Balance
		}
		return nil
	})
	return total, err
}

// Check implements apps.Benchmark: money is conserved.
func (b *Bank) Check(ctx context.Context, rt *stm.Runtime) error {
	total, err := b.TotalBalance(ctx, rt)
	if err != nil {
		return err
	}
	want := int64(b.accounts) * InitialBalance
	if total != want {
		return fmt.Errorf("bank: total balance %d, want %d (money not conserved)", total, want)
	}
	return nil
}
