// Package dht implements the distributed-hash-table microbenchmark:
// key/value pairs sharded into bucket objects spread over the cluster.
// Write transactions put a few keys (one nested transaction per bucket
// touched); read transactions get keys. DHT transactions are the shortest
// of the paper's benchmarks.
package dht

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"

	"dstm/internal/apps"
	"dstm/internal/object"
	"dstm/internal/stm"
)

// Bucket is one hash-table shard.
type Bucket struct {
	M map[string]string
}

// Copy implements object.Value with a deep map copy.
func (b *Bucket) Copy() object.Value {
	c := &Bucket{M: make(map[string]string, len(b.M))}
	for k, v := range b.M {
		c.M[k] = v
	}
	return c
}

func init() { object.Register(&Bucket{}) }

// Options configures the benchmark.
type Options struct {
	// BucketsPerNode is the number of bucket objects per node. 0 means 8.
	BucketsPerNode int
	// KeySpace is the number of distinct keys. 0 means 256.
	KeySpace int
	// MaxNested bounds the puts/gets per transaction. 0 means 3.
	MaxNested int
}

// DHT is the benchmark instance.
type DHT struct {
	opts    Options
	buckets int
	pick    apps.KeyPicker
}

// New returns a DHT benchmark.
func New(opts Options) *DHT {
	if opts.BucketsPerNode <= 0 {
		opts.BucketsPerNode = 8
	}
	if opts.KeySpace <= 0 {
		opts.KeySpace = 256
	}
	if opts.MaxNested <= 0 {
		opts.MaxNested = 3
	}
	return &DHT{opts: opts, pick: apps.UniformKeys}
}

// SetKeyPicker implements apps.Skewable: the keys Op puts/gets go through
// p. Skewed keys concentrate traffic on the buckets the hot keys hash to.
func (d *DHT) SetKeyPicker(p apps.KeyPicker) { d.pick = apps.PickerOrUniform(p) }

// Name implements apps.Benchmark.
func (d *DHT) Name() string { return "DHT" }

// BucketID returns the object ID of bucket i.
func BucketID(i int) object.ID { return object.ID(fmt.Sprintf("dht/bucket/%d", i)) }

func (d *DHT) bucketOf(key string) object.ID {
	h := fnv.New32a()
	h.Write([]byte(key))
	return BucketID(int(h.Sum32()) % d.buckets)
}

func (d *DHT) key(i int) string { return fmt.Sprintf("k%d", i) }

// Setup implements apps.Benchmark.
func (d *DHT) Setup(ctx context.Context, rts []*stm.Runtime) error {
	d.buckets = d.opts.BucketsPerNode * len(rts)
	for i := 0; i < d.buckets; i++ {
		rt := rts[i%len(rts)]
		if err := rt.CreateRoot(ctx, BucketID(i), &Bucket{M: map[string]string{}}); err != nil {
			return err
		}
	}
	return nil
}

// Op implements apps.Benchmark.
func (d *DHT) Op(ctx context.Context, rt *stm.Runtime, rng *rand.Rand, read bool) error {
	n := 1 + rng.Intn(d.opts.MaxNested)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = d.key(d.pick(rng, d.opts.KeySpace))
	}
	if read {
		return d.gets(ctx, rt, keys)
	}
	val := fmt.Sprintf("v%d", rng.Int63())
	return d.puts(ctx, rt, keys, val)
}

// puts stores each key inside its own nested transaction.
func (d *DHT) puts(ctx context.Context, rt *stm.Runtime, keys []string, val string) error {
	return rt.Atomic(ctx, "dht/put", func(tx *stm.Txn) error {
		for _, k := range keys {
			oid := d.bucketOf(k)
			key := k
			if err := tx.Atomic(ctx, "dht/put/one", func(c *stm.Txn) error {
				return c.Update(ctx, oid, func(v object.Value) object.Value {
					v.(*Bucket).M[key] = val
					return v
				})
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// gets looks each key up inside its own nested transaction.
func (d *DHT) gets(ctx context.Context, rt *stm.Runtime, keys []string) error {
	return rt.AtomicRead(ctx, "dht/get", func(tx *stm.Txn) error {
		for _, k := range keys {
			oid := d.bucketOf(k)
			key := k
			if err := tx.Atomic(ctx, "dht/get/one", func(c *stm.Txn) error {
				v, err := c.Read(ctx, oid)
				if err != nil {
					return err
				}
				_ = v.(*Bucket).M[key]
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// Put stores key=val (public API convenience, used by examples).
func (d *DHT) Put(ctx context.Context, rt *stm.Runtime, key, val string) error {
	return d.puts(ctx, rt, []string{key}, val)
}

// Get reads a key. ok is false when absent.
func (d *DHT) Get(ctx context.Context, rt *stm.Runtime, key string) (string, bool, error) {
	var out string
	var ok bool
	err := rt.AtomicRead(ctx, "dht/get", func(tx *stm.Txn) error {
		v, err := tx.Read(ctx, d.bucketOf(key))
		if err != nil {
			return err
		}
		out, ok = v.(*Bucket).M[key]
		return nil
	})
	return out, ok, err
}

// Len counts stored keys across all buckets in one transaction.
func (d *DHT) Len(ctx context.Context, rt *stm.Runtime) (int, error) {
	total := 0
	err := rt.AtomicRead(ctx, "dht/len", func(tx *stm.Txn) error {
		total = 0
		for i := 0; i < d.buckets; i++ {
			v, err := tx.Read(ctx, BucketID(i))
			if err != nil {
				return err
			}
			total += len(v.(*Bucket).M)
		}
		return nil
	})
	return total, err
}

// Check implements apps.Benchmark: every stored key hashes to the bucket
// holding it.
func (d *DHT) Check(ctx context.Context, rt *stm.Runtime) error {
	return rt.AtomicRead(ctx, "dht/check", func(tx *stm.Txn) error {
		for i := 0; i < d.buckets; i++ {
			v, err := tx.Read(ctx, BucketID(i))
			if err != nil {
				return err
			}
			for k := range v.(*Bucket).M {
				if d.bucketOf(k) != BucketID(i) {
					return fmt.Errorf("dht: key %q stored in wrong bucket %d", k, i)
				}
			}
		}
		return nil
	})
}
