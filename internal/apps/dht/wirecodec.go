package dht

import "dstm/internal/wire"

// wireIDBucket is dht's slot in the application-value ID range 100–119
// (see DESIGN.md "Wire format").
const wireIDBucket wire.ID = 108

func init() {
	wire.Register(wireIDBucket, &Bucket{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(*Bucket)
			b = wire.AppendUvarint(b, uint64(len(q.M)))
			for k, val := range q.M {
				b = wire.AppendString(b, k)
				b = wire.AppendString(b, val)
			}
			return b, nil
		},
		func(r *wire.Reader, prev any) any {
			q, _ := prev.(*Bucket)
			if q == nil {
				q = new(Bucket)
			}
			n := r.SliceLen(2)
			if q.M == nil {
				q.M = make(map[string]string, n)
			} else {
				clear(q.M)
			}
			for i := 0; i < n; i++ {
				k := r.String()
				q.M[k] = r.String()
			}
			return q
		})
}
