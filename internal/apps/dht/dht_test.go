package dht

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dstm/internal/testutil"
)

func TestPutGetRoundTrip(t *testing.T) {
	rts := testutil.Cluster(t, 3, nil, nil)
	d := New(Options{BucketsPerNode: 2})
	ctx := context.Background()
	if err := d.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}

	if err := d.Put(ctx, rts[0], "alpha", "1"); err != nil {
		t.Fatal(err)
	}
	// Read from another node.
	v, ok, err := d.Get(ctx, rts[2], "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || v != "1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// Missing key.
	_, ok, err = d.Get(ctx, rts[1], "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ghost key found")
	}
}

func TestOverwrite(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	d := New(Options{BucketsPerNode: 2})
	ctx := context.Background()
	if err := d.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Put(ctx, rts[i%2], "k", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := d.Get(ctx, rts[0], "k")
	if err != nil || !ok || v != "v2" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	n, err := d.Len(ctx, rts[0])
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestSequentialOracle(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	d := New(Options{BucketsPerNode: 3, KeySpace: 32})
	ctx := context.Background()
	if err := d.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(32))
		v := fmt.Sprintf("v%d", i)
		if err := d.Put(ctx, rts[i%2], k, v); err != nil {
			t.Fatal(err)
		}
		oracle[k] = v
	}
	for k, want := range oracle {
		got, ok, err := d.Get(ctx, rts[0], k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != want {
			t.Fatalf("key %s = %q/%v, want %q", k, got, ok, want)
		}
	}
	n, err := d.Len(ctx, rts[1])
	if err != nil {
		t.Fatal(err)
	}
	if n != len(oracle) {
		t.Fatalf("Len = %d, want %d", n, len(oracle))
	}
	if err := d.Check(ctx, rts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	const nodes = 3
	rts := testutil.Cluster(t, nodes, nil, nil)
	d := New(Options{BucketsPerNode: 2})
	ctx := context.Background()
	if err := d.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := d.Put(ctx, rts[n], fmt.Sprintf("n%d-k%d", n, i), "x"); err != nil {
					errs <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cnt, err := d.Len(ctx, rts[0])
	if err != nil {
		t.Fatal(err)
	}
	if cnt != nodes*10 {
		t.Fatalf("Len = %d, want %d (lost puts)", cnt, nodes*10)
	}
}

func TestOpSmoke(t *testing.T) {
	rts := testutil.Cluster(t, 2, nil, nil)
	d := New(Options{BucketsPerNode: 2, KeySpace: 16})
	ctx := context.Background()
	if err := d.Setup(ctx, rts); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		if err := d.Op(ctx, rts[i%2], rng, i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Check(ctx, rts[1]); err != nil {
		t.Fatal(err)
	}
	if d.Name() != "DHT" {
		t.Fatalf("name %q", d.Name())
	}
}
