package sched

import (
	"math/rand"
	"sync"
	"time"

	"dstm/internal/object"
)

// noQueue provides the queue-related no-ops shared by policies that never
// enqueue requesters.
type noQueue struct{}

func (noQueue) OnRelease(object.ID) []Request        { return nil }
func (noQueue) QueueDepth() int                      { return 0 }
func (noQueue) ExtractQueue(object.ID) []Request     { return nil }
func (noQueue) AdoptQueue(object.ID, []Request)      {}
func (noQueue) OnDecline(object.ID) []Request        { return nil }
func (noQueue) OnConflict(Request) Decision          { return Decision{} }
func (noQueue) ObserveRequest(object.ID, uint64) int { return 0 }
func (noQueue) RetryDelay(int, string) time.Duration { return 0 }

// TFA is the scheduler-less baseline: conflicting requests are denied and
// aborted transactions restart immediately.
type TFA struct{ noQueue }

// NewTFA returns the plain-TFA policy.
func NewTFA() *TFA { return &TFA{} }

// Name implements Policy.
func (*TFA) Name() string { return "TFA" }

// Backoff is the TFA+Backoff baseline: conflicting requests are denied, and
// the aborted transaction stalls before restarting. The stall grows
// exponentially with the retry attempt, seeded by the transaction profile's
// expected execution time (from the stats table) so long transactions back
// off proportionally longer, and jittered to break synchronisation.
type Backoff struct {
	noQueue
	est Estimator
	max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff returns the TFA+Backoff policy. est may be nil, in which case
// a fixed 1 ms base is used. max caps the stall (0 means 100 ms).
func NewBackoff(est Estimator, max time.Duration) *Backoff {
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	return &Backoff{
		est: est,
		max: max,
		rng: rand.New(rand.NewSource(0x5eedb0ff)),
	}
}

// Name implements Policy.
func (*Backoff) Name() string { return "TFA+Backoff" }

// RetryDelay implements Policy: base × 2^(attempt-1), jittered ±50 %, capped.
func (b *Backoff) RetryDelay(attempt int, profile string) time.Duration {
	base := time.Millisecond
	if b.est != nil {
		if e := b.est.Expect(profile); e > 0 {
			base = e
		}
	}
	if attempt < 1 {
		attempt = 1
	}
	if attempt > 16 {
		attempt = 16
	}
	d := base << uint(attempt-1)
	if d > b.max || d <= 0 {
		d = b.max
	}
	b.mu.Lock()
	jitter := time.Duration(b.rng.Int63n(int64(d) + 1))
	b.mu.Unlock()
	d = d/2 + jitter/2
	if d > b.max {
		d = b.max
	}
	return d
}

// Compile-time interface checks.
var (
	_ Policy       = (*TFA)(nil)
	_ Policy       = (*Backoff)(nil)
	_ QueueDepther = (*TFA)(nil)
	_ QueueDepther = (*Backoff)(nil)
)
