package sched

import (
	"sync"
	"time"

	"dstm/internal/object"
)

// BiInterval implements (a single-node-queue variant of) Kim & Ravindran's
// Bi-interval scheduler (SSS 2010), which the paper discusses as related
// work: conflicting requests are enqueued and their future execution is
// grouped into reading and writing intervals — all queued readers are
// released together (one object copy broadcast serves the whole read
// interval), then writers one at a time. Unlike RTS it has no contention-
// level gate and no execution-time gate: every conflicting requester is
// enqueued (up to a cap), which is exactly the behaviour RTS's §VI argues
// against under high contention.
type BiInterval struct {
	est      Estimator
	maxQueue int

	mu    sync.Mutex
	queue map[object.ID][]Request
	// counts for interval bookkeeping (metrics/tests)
	readIntervals, writeIntervals uint64
}

// NewBiInterval returns a Bi-interval policy. est supplies expected
// execution times for backoff assignment (may be nil); maxQueue caps each
// object's queue (0 means 16).
func NewBiInterval(est Estimator, maxQueue int) *BiInterval {
	if maxQueue <= 0 {
		maxQueue = 16
	}
	return &BiInterval{
		est:      est,
		maxQueue: maxQueue,
		queue:    make(map[object.ID][]Request),
	}
}

var _ Policy = (*BiInterval)(nil)

// Name implements Policy.
func (b *BiInterval) Name() string { return "Bi-interval" }

// ObserveRequest implements Policy. Bi-interval does not track contention
// levels.
func (b *BiInterval) ObserveRequest(object.ID, uint64) int { return 0 }

// OnConflict implements Policy: enqueue unconditionally (reads sorted
// ahead of writes to form the reading interval), with a backoff that
// covers the expected remaining time of everything queued ahead.
func (b *BiInterval) OnConflict(req Request) Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queue[req.Oid]
	// Dedup a retrying transaction.
	for i, e := range q {
		if e.Node == req.Node && e.TxID == req.TxID {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) >= b.maxQueue {
		b.queue[req.Oid] = q
		return Decision{}
	}
	var backoff time.Duration
	for _, e := range q {
		backoff += e.ExpectedRemaining
	}
	backoff += req.ExpectedRemaining

	if req.Mode == Read {
		// Insert at the end of the read prefix: reads run as one interval.
		cut := 0
		for cut < len(q) && q[cut].Mode == Read {
			cut++
		}
		q = append(q[:cut], append([]Request{req}, q[cut:]...)...)
	} else {
		q = append(q, req)
	}
	b.queue[req.Oid] = q
	return Decision{Enqueue: true, Backoff: backoff}
}

// OnRelease implements Policy: pop the reading interval (all queued reads)
// if one is pending, otherwise the next writer.
func (b *BiInterval) OnRelease(oid object.ID) []Request {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.popLocked(oid)
}

// OnDecline implements Policy.
func (b *BiInterval) OnDecline(oid object.ID) []Request {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.popLocked(oid)
}

func (b *BiInterval) popLocked(oid object.ID) []Request {
	q := b.queue[oid]
	if len(q) == 0 {
		return nil
	}
	if q[0].Mode == Read {
		// Reading interval: every queued read goes at once.
		var reads []Request
		var rest []Request
		for _, e := range q {
			if e.Mode == Read {
				reads = append(reads, e)
			} else {
				rest = append(rest, e)
			}
		}
		b.setQueue(oid, rest)
		b.readIntervals++
		return reads
	}
	head := q[0]
	b.setQueue(oid, q[1:])
	b.writeIntervals++
	return []Request{head}
}

func (b *BiInterval) setQueue(oid object.ID, q []Request) {
	if len(q) == 0 {
		delete(b.queue, oid)
	} else {
		b.queue[oid] = q
	}
}

// ExtractQueue implements Policy.
func (b *BiInterval) ExtractQueue(oid object.ID) []Request {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queue[oid]
	delete(b.queue, oid)
	return q
}

// AdoptQueue implements Policy.
func (b *BiInterval) AdoptQueue(oid object.ID, reqs []Request) {
	if len(reqs) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.queue[oid] = append(reqs, b.queue[oid]...)
}

// RetryDelay implements Policy: aborted transactions restart immediately
// (scheduling happens via the queues).
func (b *BiInterval) RetryDelay(int, string) time.Duration { return 0 }

// Intervals reports how many reading and writing intervals have been
// dispatched (for tests and reports).
func (b *BiInterval) Intervals() (reads, writes uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.readIntervals, b.writeIntervals
}

// QueueLen reports oid's current queue length.
func (b *BiInterval) QueueLen(oid object.ID) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue[oid])
}
