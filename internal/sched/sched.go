// Package sched defines the transactional-scheduler plug-in point of the
// D-STM stack and the two baseline policies the paper evaluates against:
//
//   - TFA: no scheduler. A request that conflicts with a validating
//     transaction is denied; the requester aborts and retries immediately.
//   - TFA+Backoff: a proactive-style scheduler. The conflicting requester
//     aborts and backs off (stalls) before restarting, with the backoff
//     derived from the transaction's historical execution time.
//
// The paper's contribution, RTS, implements the same Policy interface in
// package core.
package sched

import (
	"time"

	"dstm/internal/object"
	"dstm/internal/transport"
)

// Mode distinguishes read from write object requests.
type Mode uint8

// Request access modes.
const (
	Read Mode = iota
	Write
)

func (m Mode) String() string {
	if m == Read {
		return "read"
	}
	return "write"
}

// Request describes an object retrieve request as seen by the owner-side
// scheduler. The three ETS timestamps of the paper (start, request,
// expected-commit) travel as two durations so nodes never compare wall
// clocks: Elapsed = ETS.r − ETS.s and ExpectedRemaining = ETS.c − ETS.r.
type Request struct {
	Oid  object.ID
	TxID uint64
	Node transport.NodeID
	Mode Mode

	// MyCL is the requester's remote contention level: the sum of the
	// local CLs of the objects the requesting transaction already holds.
	MyCL int

	Elapsed           time.Duration
	ExpectedRemaining time.Duration
}

// Decision is the owner-side verdict on a conflicting request.
type Decision struct {
	// Enqueue true parks the requester at the owner for up to Backoff,
	// waiting for the object to be handed over; false denies the request
	// (the requester aborts).
	Enqueue bool
	Backoff time.Duration
}

// Policy is the per-node transactional scheduler. Implementations must be
// safe for concurrent use. Methods that manage queues are no-ops for
// policies that never enqueue (the baselines).
type Policy interface {
	// Name identifies the policy in reports ("RTS", "TFA", "TFA+Backoff").
	Name() string

	// ObserveRequest records a retrieve request by transaction txid against
	// oid for contention accounting and returns the object's current local
	// contention level — the number of distinct transactions that have
	// requested oid in the current window — which the owner reports back
	// to the requester.
	ObserveRequest(oid object.ID, txid uint64) int

	// OnConflict decides the fate of a request that found oid commit-locked.
	OnConflict(req Request) Decision

	// OnRelease is invoked when oid's commit lock is released with the
	// object still owned here. It returns the queued requesters to hand
	// the object to now: the first write requester, or every queued read
	// requester (reads are mutually compatible, paper §III-B).
	OnRelease(oid object.ID) []Request

	// ExtractQueue removes and returns oid's entire queue; called when
	// ownership migrates so the queue can travel to the new owner.
	ExtractQueue(oid object.ID) []Request

	// AdoptQueue installs a queue received together with ownership.
	AdoptQueue(oid object.ID, reqs []Request)

	// OnDecline reports that a requester popped by OnRelease/OnDecline no
	// longer wanted the object (it aborted while parked). It returns the
	// next requesters to try.
	OnDecline(oid object.ID) []Request

	// RetryDelay returns how long an aborted transaction should stall
	// before its next attempt (client side). attempt counts from 1.
	RetryDelay(attempt int, profile string) time.Duration
}

// Estimator supplies expected execution times for transaction profiles;
// satisfied by *stats.Table.
type Estimator interface {
	Expect(profile string) time.Duration
}

// QueueDepther is an optional Policy extension: QueueDepth reports how
// many requesters the policy currently has parked across all objects.
// The open-loop stability driver samples it into the queue-depth time
// series, alongside the admission queue, so scheduler-internal queue
// growth (RTS's requester lists) is visible in the same trajectory as
// offered-load backlog. All in-tree policies implement it; the baselines
// report 0 (they never enqueue).
type QueueDepther interface {
	QueueDepth() int
}
