package sched

import (
	"testing"
	"time"

	"dstm/internal/object"
	"dstm/internal/transport"
)

func birq(oid string, tx uint64, node int32, mode Mode, remain time.Duration) Request {
	return Request{
		Oid:               object.ID("obj/" + oid),
		TxID:              tx,
		Node:              transport.NodeID(node),
		Mode:              mode,
		Elapsed:           time.Second,
		ExpectedRemaining: remain,
	}
}

func TestBiIntervalEnqueuesEverything(t *testing.T) {
	p := NewBiInterval(nil, 0)
	if p.Name() != "Bi-interval" {
		t.Fatalf("name %q", p.Name())
	}
	for i := uint64(1); i <= 5; i++ {
		d := p.OnConflict(birq("x", i, int32(i), Write, time.Millisecond))
		if !d.Enqueue {
			t.Fatalf("requester %d not enqueued", i)
		}
		if d.Backoff != time.Duration(i)*time.Millisecond {
			t.Fatalf("requester %d backoff %v", i, d.Backoff)
		}
	}
	if p.QueueLen("obj/x") != 5 {
		t.Fatalf("queue %d", p.QueueLen("obj/x"))
	}
}

func TestBiIntervalQueueCap(t *testing.T) {
	p := NewBiInterval(nil, 2)
	p.OnConflict(birq("x", 1, 1, Write, time.Millisecond))
	p.OnConflict(birq("x", 2, 2, Write, time.Millisecond))
	if d := p.OnConflict(birq("x", 3, 3, Write, time.Millisecond)); d.Enqueue {
		t.Fatal("cap not enforced")
	}
}

func TestBiIntervalReadsGroupAhead(t *testing.T) {
	p := NewBiInterval(nil, 0)
	p.OnConflict(birq("x", 1, 1, Write, time.Millisecond))
	p.OnConflict(birq("x", 2, 2, Read, time.Millisecond))
	p.OnConflict(birq("x", 3, 3, Write, time.Millisecond))
	p.OnConflict(birq("x", 4, 4, Read, time.Millisecond))

	// Reading interval pops first: both reads together.
	out := p.OnRelease("obj/x")
	if len(out) != 2 || out[0].Mode != Read || out[1].Mode != Read {
		t.Fatalf("reading interval = %+v", out)
	}
	reads, writes := p.Intervals()
	if reads != 1 || writes != 0 {
		t.Fatalf("intervals %d/%d", reads, writes)
	}
	// Then writers one at a time, FIFO.
	if out := p.OnDecline("obj/x"); len(out) != 1 || out[0].TxID != 1 {
		t.Fatalf("first writer = %+v", out)
	}
	if out := p.OnRelease("obj/x"); len(out) != 1 || out[0].TxID != 3 {
		t.Fatalf("second writer = %+v", out)
	}
	if out := p.OnRelease("obj/x"); out != nil {
		t.Fatalf("empty queue popped %+v", out)
	}
}

func TestBiIntervalDedup(t *testing.T) {
	p := NewBiInterval(nil, 0)
	req := birq("x", 7, 7, Write, time.Millisecond)
	p.OnConflict(req)
	d := p.OnConflict(req)
	if p.QueueLen("obj/x") != 1 {
		t.Fatalf("duplicate occupies %d slots", p.QueueLen("obj/x"))
	}
	if d.Backoff != time.Millisecond {
		t.Fatalf("backoff double-counted: %v", d.Backoff)
	}
}

func TestBiIntervalExtractAdopt(t *testing.T) {
	p := NewBiInterval(nil, 0)
	p.OnConflict(birq("x", 1, 1, Write, time.Millisecond))
	p.OnConflict(birq("x", 2, 2, Write, time.Millisecond))
	q := p.ExtractQueue("obj/x")
	if len(q) != 2 || p.QueueLen("obj/x") != 0 {
		t.Fatalf("extract: %+v, len %d", q, p.QueueLen("obj/x"))
	}
	p2 := NewBiInterval(nil, 0)
	p2.OnConflict(birq("x", 9, 9, Write, time.Millisecond))
	p2.AdoptQueue("obj/x", q)
	if p2.QueueLen("obj/x") != 3 {
		t.Fatalf("adopted len %d", p2.QueueLen("obj/x"))
	}
	out := p2.OnRelease("obj/x")
	if len(out) != 1 || out[0].TxID != 1 {
		t.Fatalf("adopted head %+v", out)
	}
	p2.AdoptQueue("obj/x", nil)
}

func TestBiIntervalMisc(t *testing.T) {
	p := NewBiInterval(nil, 0)
	if p.ObserveRequest("obj/x", 1) != 0 {
		t.Fatal("Bi-interval should not track CL")
	}
	if p.RetryDelay(3, "p") != 0 {
		t.Fatal("retry delay should be zero")
	}
	if q := p.ExtractQueue("obj/none"); q != nil {
		t.Fatalf("extract empty = %+v", q)
	}
}
