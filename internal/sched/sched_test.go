package sched

import (
	"testing"
	"time"
)

type fixedEst time.Duration

func (f fixedEst) Expect(string) time.Duration { return time.Duration(f) }

func TestModeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("Mode strings: %q %q", Read, Write)
	}
}

func TestTFADeniesAndRetriesImmediately(t *testing.T) {
	p := NewTFA()
	if p.Name() != "TFA" {
		t.Fatalf("name %q", p.Name())
	}
	d := p.OnConflict(Request{Oid: "x"})
	if d.Enqueue || d.Backoff != 0 {
		t.Fatalf("TFA decision %+v, want deny with zero backoff", d)
	}
	if got := p.RetryDelay(3, "any"); got != 0 {
		t.Fatalf("TFA retry delay %v, want 0", got)
	}
	if q := p.OnRelease("x"); q != nil {
		t.Fatalf("TFA OnRelease = %v", q)
	}
	if q := p.ExtractQueue("x"); q != nil {
		t.Fatalf("TFA ExtractQueue = %v", q)
	}
	p.AdoptQueue("x", []Request{{}}) // must not panic
	if q := p.OnDecline("x"); q != nil {
		t.Fatalf("TFA OnDecline = %v", q)
	}
	if cl := p.ObserveRequest("x", 1); cl != 0 {
		t.Fatalf("TFA ObserveRequest = %d", cl)
	}
}

func TestBackoffDenies(t *testing.T) {
	p := NewBackoff(nil, 0)
	if p.Name() != "TFA+Backoff" {
		t.Fatalf("name %q", p.Name())
	}
	if d := p.OnConflict(Request{}); d.Enqueue {
		t.Fatal("Backoff enqueued")
	}
}

func TestBackoffRetryDelayGrows(t *testing.T) {
	p := NewBackoff(fixedEst(time.Millisecond), time.Second)
	// With jitter in [d/2, d], attempt a's delay band is
	// [2^(a-1)/2 ms, 2^(a-1) ms]; check band membership and that the
	// ceiling of attempt 1 is below the floor of attempt 4.
	d1 := p.RetryDelay(1, "p")
	d4 := p.RetryDelay(4, "p")
	if d1 < 500*time.Microsecond || d1 > time.Millisecond {
		t.Fatalf("attempt1 delay %v out of band", d1)
	}
	if d4 < 4*time.Millisecond || d4 > 8*time.Millisecond {
		t.Fatalf("attempt4 delay %v out of band", d4)
	}
	if d1 >= d4 {
		t.Fatalf("delay did not grow: %v vs %v", d1, d4)
	}
}

func TestBackoffRetryDelayCapped(t *testing.T) {
	max := 5 * time.Millisecond
	p := NewBackoff(fixedEst(time.Millisecond), max)
	for a := 1; a <= 30; a++ {
		if d := p.RetryDelay(a, "p"); d > max {
			t.Fatalf("attempt %d delay %v exceeds cap %v", a, d, max)
		}
	}
}

func TestBackoffDefaultsWithoutEstimator(t *testing.T) {
	p := NewBackoff(nil, 0)
	d := p.RetryDelay(1, "p")
	if d <= 0 || d > 100*time.Millisecond {
		t.Fatalf("delay %v with nil estimator", d)
	}
}

func TestBackoffInvalidAttemptClamped(t *testing.T) {
	p := NewBackoff(fixedEst(time.Millisecond), time.Second)
	if d := p.RetryDelay(0, "p"); d <= 0 {
		t.Fatalf("attempt 0 delay %v", d)
	}
	if d := p.RetryDelay(-3, "p"); d <= 0 {
		t.Fatalf("negative attempt delay %v", d)
	}
	// Huge attempts must not overflow into negative durations.
	if d := p.RetryDelay(1000, "p"); d <= 0 || d > time.Second {
		t.Fatalf("attempt 1000 delay %v", d)
	}
}

func TestBackoffScalesWithProfileEstimate(t *testing.T) {
	slow := NewBackoff(fixedEst(10*time.Millisecond), time.Second)
	fast := NewBackoff(fixedEst(100*time.Microsecond), time.Second)
	// Bands don't overlap for attempt 1: fast ∈ [50µs,100µs], slow ∈ [5ms,10ms].
	if fd, sd := fast.RetryDelay(1, "p"), slow.RetryDelay(1, "p"); fd >= sd {
		t.Fatalf("fast profile delay %v >= slow profile delay %v", fd, sd)
	}
}
