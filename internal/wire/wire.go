// Package wire is the hand-rolled binary codec for everything that
// crosses a real socket: transport frames, the RPC envelope, the stm/cc
// protocol payloads, and the application object values they carry.
//
// Design goals, in order:
//
//  1. Zero allocations on the hot encode path: every encoder is an
//     append-style function growing a caller-owned []byte, so a transport
//     connection encodes straight into its coalescing buffer.
//  2. Zero steady-state allocations on decode: the Reader hands out
//     interned strings (object IDs recur; a bounded intern table makes
//     the second sight of an ID free) and payload decoders reuse the
//     slices and values of the struct they decode into.
//  3. Robustness: a malformed frame from a broken peer must produce an
//     error, never a panic or an unbounded allocation. Every read is
//     bounds-checked and every length is capped by the bytes remaining.
//
// Integers travel as LEB128 uvarints (signed values zig-zag first), so
// small clocks, counts, and node IDs cost one byte. Strings and byte
// blobs are length-prefixed. Interface-typed values (message payloads,
// object values) are tagged with a registered type ID; types without a
// registered codec fall back to an embedded encoding/gob blob, so custom
// application values keep working over TCP without hand-written codecs —
// they just pay gob's price.
package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/bits"
	"reflect"
)

// ID tags a registered payload type on the wire.
type ID uint64

// Reserved type IDs.
const (
	// IDNil encodes a nil interface value.
	IDNil ID = 0
	// IDGob wraps a gob-encoded blob: the escape hatch for types without
	// a registered binary codec.
	IDGob ID = 1
)

// ErrTruncated is reported when the input ends inside a value.
var ErrTruncated = errors.New("wire: truncated input")

// ErrMalformed is reported for structurally invalid input (bad lengths,
// unknown type IDs, invalid bools).
var ErrMalformed = errors.New("wire: malformed input")

// internCap bounds the Reader's string intern table so hostile input
// cannot grow it without bound.
const internCap = 4096

// maxInternedLen bounds the length of strings worth interning; longer
// ones are almost certainly payload data, not recurring identifiers.
const maxInternedLen = 256

// ---------------------------------------------------------------------------
// Append-style encoders. All are alloc-free given sufficient capacity.

// AppendUvarint appends v as a LEB128 uvarint.
func AppendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// AppendVarint appends v zig-zag encoded.
func AppendVarint(b []byte, v int64) []byte {
	return AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

// AppendBool appends a single 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a length-prefixed byte blob.
func AppendBytes(b []byte, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// UvarintLen returns the encoded size of v, for pre-sizing buffers.
func UvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// ---------------------------------------------------------------------------
// Reader.

// Reader decodes one buffer of wire data. It is reusable via Reset; the
// string intern table survives resets, so a long-lived Reader (one per
// connection) decodes recurring object IDs without allocating.
//
// All read methods are total: on malformed input they record the first
// error, return zero values, and every subsequent read short-circuits.
// Callers check Err once at the end of a payload.
type Reader struct {
	buf    []byte
	off    int
	err    error
	intern map[string]string
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset points the Reader at a new buffer, clearing the error but
// keeping the intern table.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.off = 0
	r.err = nil
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Fail records a decode error from a payload codec (first error wins),
// e.g. a type-level invariant the primitive readers cannot see.
func (r *Reader) Fail(err error) { r.fail(err) }

// Len returns the number of bytes not yet consumed.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads a LEB128 uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for {
		if r.off >= len(r.buf) {
			r.fail(ErrTruncated)
			return 0
		}
		c := r.buf[r.off]
		r.off++
		if shift == 63 && c > 1 {
			r.fail(fmt.Errorf("%w: uvarint overflow", ErrMalformed))
			return 0
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			r.fail(fmt.Errorf("%w: uvarint overflow", ErrMalformed))
			return 0
		}
	}
}

// Varint reads a zig-zag varint.
func (r *Reader) Varint() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Bool reads a strict 0/1 byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return false
	}
	c := r.buf[r.off]
	r.off++
	switch c {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("%w: bool byte %#x", ErrMalformed, c))
		return false
	}
}

// take consumes n bytes and returns a view into the buffer.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.fail(ErrTruncated)
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// String reads a length-prefixed string, interning short values: the
// second decode of a recurring object ID is a map hit, not an allocation.
func (r *Reader) String() string {
	n := int(r.Uvarint())
	p := r.take(n)
	if r.err != nil {
		return ""
	}
	if n == 0 {
		return ""
	}
	if n <= maxInternedLen {
		if r.intern == nil {
			r.intern = make(map[string]string, 64)
		}
		if s, ok := r.intern[string(p)]; ok { // compiler elides the conversion
			return s
		}
		s := string(p)
		if len(r.intern) < internCap {
			r.intern[s] = s
		}
		return s
	}
	return string(p)
}

// Bytes reads a length-prefixed blob, copying it out of the buffer (the
// buffer is reused by the transport read loop, so views must not escape).
func (r *Reader) Bytes() []byte {
	n := int(r.Uvarint())
	p := r.take(n)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

// SliceLen reads a slice length and validates it against the bytes
// remaining, with each element costing at least minElemBytes: a hostile
// length cannot force an oversized allocation.
func (r *Reader) SliceLen(minElemBytes int) int {
	n := int(r.Uvarint())
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n < 0 || n*minElemBytes > r.Len() {
		r.fail(fmt.Errorf("%w: slice length %d exceeds %d bytes remaining", ErrMalformed, n, r.Len()))
		return 0
	}
	return n
}

// ---------------------------------------------------------------------------
// Type registry: interface-typed values on the wire.

// EncodeFunc appends v (whose concrete type the codec was registered
// for) to b. It may fail only when an embedded interface value cannot be
// encoded (e.g. a gob fallback for an unregistrable type).
type EncodeFunc func(b []byte, v any) ([]byte, error)

// DecodeFunc decodes one value. prev, when non-nil, is a value of the
// same concrete type that may be overwritten and returned to avoid
// allocating (steady-state decode of a reused struct).
type DecodeFunc func(r *Reader, prev any) any

type codecEntry struct {
	id  ID
	typ reflect.Type
	enc EncodeFunc
	dec DecodeFunc
}

var (
	codecsByType = map[reflect.Type]*codecEntry{}
	codecsByID   = map[ID]*codecEntry{}
)

// Register installs the binary codec for prototype's concrete type under
// the given type ID. IDs are a static protocol (see DESIGN.md "Wire
// format"); duplicates panic. Call from init functions only.
func Register(id ID, prototype any, enc EncodeFunc, dec DecodeFunc) {
	if id == IDNil || id == IDGob {
		panic(fmt.Sprintf("wire: type ID %d is reserved", id))
	}
	t := reflect.TypeOf(prototype)
	if t == nil {
		panic("wire: cannot register nil prototype")
	}
	if _, dup := codecsByType[t]; dup {
		panic(fmt.Sprintf("wire: duplicate codec for type %v", t))
	}
	if prev, dup := codecsByID[id]; dup {
		panic(fmt.Sprintf("wire: type ID %d already used by %v", id, prev.typ))
	}
	e := &codecEntry{id: id, typ: t, enc: enc, dec: dec}
	codecsByType[t] = e
	codecsByID[id] = e
}

// RegisterGobFallbackType registers a concrete type with encoding/gob so
// it can travel through the IDGob escape hatch. transport.RegisterPayload
// and object.Register route here.
func RegisterGobFallbackType(v any) { gob.Register(v) }

// Registered reports whether v's concrete type has a binary codec (nil
// counts: it has a fixed encoding).
func Registered(v any) bool {
	if v == nil {
		return true
	}
	_, ok := codecsByType[reflect.TypeOf(v)]
	return ok
}

// AppendAny appends an interface value: a type ID followed by the
// registered encoding, or a gob blob for unregistered types. The
// registered path performs no allocations beyond growing b.
func AppendAny(b []byte, v any) ([]byte, error) {
	if v == nil {
		return AppendUvarint(b, uint64(IDNil)), nil
	}
	if e, ok := codecsByType[reflect.TypeOf(v)]; ok {
		b = AppendUvarint(b, uint64(e.id))
		return e.enc(b, v)
	}
	return appendGobFallback(b, v)
}

// appendGobFallback wraps v in a length-prefixed gob blob. It is kept out
// of AppendAny so taking &v here does not force AppendAny's parameter to
// escape (which would cost one allocation on the registered fast path).
func appendGobFallback(b []byte, v any) ([]byte, error) {
	var bb bytes.Buffer
	if err := gob.NewEncoder(&bb).Encode(&v); err != nil {
		return b, fmt.Errorf("wire: gob fallback for %T: %w", v, err)
	}
	b = AppendUvarint(b, uint64(IDGob))
	return AppendBytes(b, bb.Bytes()), nil
}

// Any decodes an interface value encoded by AppendAny. prev, when it has
// the same concrete type as the encoded value, may be reused by the
// registered decoder.
func (r *Reader) Any(prev any) any {
	id := ID(r.Uvarint())
	if r.err != nil {
		return nil
	}
	switch id {
	case IDNil:
		return nil
	case IDGob:
		n := int(r.Uvarint())
		p := r.take(n)
		if r.err != nil {
			return nil
		}
		var v any
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&v); err != nil {
			r.fail(fmt.Errorf("%w: gob payload: %v", ErrMalformed, err))
			return nil
		}
		return v
	}
	e, ok := codecsByID[id]
	if !ok {
		r.fail(fmt.Errorf("%w: unknown wire type ID %d", ErrMalformed, id))
		return nil
	}
	if prev != nil && reflect.TypeOf(prev) != e.typ {
		prev = nil
	}
	return e.dec(r, prev)
}
