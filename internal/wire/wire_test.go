package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<32 - 1, 1 << 62, math.MaxUint64}
	var b []byte
	for _, v := range vals {
		b = AppendUvarint(b, v)
	}
	r := NewReader(b)
	for _, want := range vals {
		if got := r.Uvarint(); got != want {
			t.Fatalf("uvarint %d decoded as %d", want, got)
		}
	}
	if r.Err() != nil || r.Len() != 0 {
		t.Fatalf("err=%v leftover=%d", r.Err(), r.Len())
	}
}

func TestVarintRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64}
	var b []byte
	for _, v := range vals {
		b = AppendVarint(b, v)
	}
	r := NewReader(b)
	for _, want := range vals {
		if got := r.Varint(); got != want {
			t.Fatalf("varint %d decoded as %d", want, got)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestStringBytesBool(t *testing.T) {
	var b []byte
	b = AppendString(b, "bank/acct/7")
	b = AppendString(b, "")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBytes(b, nil)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	r := NewReader(b)
	if s := r.String(); s != "bank/acct/7" {
		t.Fatalf("string: %q", s)
	}
	if s := r.String(); s != "" {
		t.Fatalf("empty string: %q", s)
	}
	if p := r.Bytes(); !bytes.Equal(p, []byte{1, 2, 3}) {
		t.Fatalf("bytes: %v", p)
	}
	if p := r.Bytes(); p != nil {
		t.Fatalf("nil bytes: %v", p)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool order")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// TestStringInterning: decoding the same string twice from separate
// buffers must return the identical backing string without allocating.
func TestStringInterning(t *testing.T) {
	enc := AppendString(nil, "obj/recurring")
	r := NewReader(enc)
	first := r.String()
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(enc)
		if s := r.String(); s != first {
			t.Fatalf("intern changed value: %q", s)
		}
	})
	if allocs != 0 {
		t.Fatalf("interned string decode allocates %.1f/op", allocs)
	}
}

func TestTruncatedInputs(t *testing.T) {
	full := AppendString(AppendUvarint(nil, 300), "hello")
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uvarint()
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
	}
}

func TestSliceLenBounds(t *testing.T) {
	// Claimed length far beyond the remaining bytes must fail, not
	// allocate.
	b := AppendUvarint(nil, 1<<40)
	r := NewReader(b)
	if n := r.SliceLen(4); n != 0 || r.Err() == nil {
		t.Fatalf("oversized slice len accepted: n=%d err=%v", n, r.Err())
	}
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", r.Err())
	}
}

func TestBoolStrictness(t *testing.T) {
	r := NewReader([]byte{2})
	if r.Bool() || r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestUvarintOverflow(t *testing.T) {
	// 10 continuation bytes with high bits: > 64 bits of payload.
	r := NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	r.Uvarint()
	if r.Err() == nil {
		t.Fatal("uvarint overflow accepted")
	}
}

type testVal struct {
	N int64
	S string
}

func init() {
	Register(9001, testVal{},
		func(b []byte, v any) ([]byte, error) {
			tv := v.(testVal)
			b = AppendVarint(b, tv.N)
			return AppendString(b, tv.S), nil
		},
		func(r *Reader, _ any) any {
			return testVal{N: r.Varint(), S: r.String()}
		})
}

type gobOnlyVal struct{ X int32 }

func TestAnyRegisteredRoundTrip(t *testing.T) {
	in := testVal{N: -7, S: "x"}
	b, err := AppendAny(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(b)
	out := r.Any(nil)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if got, ok := out.(testVal); !ok || got != in {
		t.Fatalf("any round trip: %#v -> %#v", in, out)
	}
}

func TestAnyNil(t *testing.T) {
	b, err := AppendAny(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(b)
	if out := r.Any(nil); out != nil || r.Err() != nil {
		t.Fatalf("nil any: %v err=%v", out, r.Err())
	}
}

func TestAnyGobFallback(t *testing.T) {
	RegisterGobFallbackType(gobOnlyVal{})
	in := gobOnlyVal{X: 42}
	b, err := AppendAny(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(b)
	out := r.Any(nil)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if got, ok := out.(gobOnlyVal); !ok || got != in {
		t.Fatalf("gob fallback round trip: %#v -> %#v", in, out)
	}
}

func TestAnyUnknownID(t *testing.T) {
	b := AppendUvarint(nil, 54321)
	r := NewReader(b)
	if out := r.Any(nil); out != nil || r.Err() == nil {
		t.Fatalf("unknown id: out=%v err=%v", out, r.Err())
	}
}

// TestAppendAnyZeroAlloc: the registered encode path must not allocate
// beyond growing the destination buffer.
func TestAppendAnyZeroAlloc(t *testing.T) {
	var v any = testVal{N: 3, S: "steady"}
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(200, func() {
		b, err := AppendAny(buf[:0], v)
		if err != nil || len(b) == 0 {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendAny allocates %.1f/op on the registered path", allocs)
	}
}
