package object

import "testing"

// commitVersions drives id through committed versions at the given clocks
// (node 0), locking with the expected current version each time.
func commitVersions(t *testing.T, s *Store, id ID, clocks ...uint64) {
	t.Helper()
	for i, c := range clocks {
		cur, _ := s.Version(id)
		if res := s.Lock(id, uint64(i+1), cur); res != LockOK {
			t.Fatalf("lock for clock %d: %v", c, res)
		}
		if err := s.UpdateCommitted(id, &intBox{N: int64(c)}, Version{Clock: c}, uint64(i+1)); err != nil {
			t.Fatalf("commit clock %d: %v", c, err)
		}
	}
}

func TestSnapshotAtServesNewestAtOrBelow(t *testing.T) {
	s := NewStore()
	s.Install("x", &intBox{N: 10}, Version{Clock: 10})
	commitVersions(t, s, "x", 20, 30, 40)

	cases := []struct {
		at     uint64
		want   int64 // value == its version clock in this fixture
		status SnapStatus
	}{
		{at: 45, want: 40, status: SnapOK}, // tip at or below snapshot
		{at: 40, want: 40, status: SnapOK},
		{at: 35, want: 30, status: SnapOK}, // chain serves
		{at: 20, want: 20, status: SnapOK},
		{at: 10, want: 10, status: SnapOK}, // chain tail (limit 3 holds 30,20,10)
		{at: 5, status: SnapTooOld},        // predates everything retained
	}
	for _, c := range cases {
		val, ver, st := s.SnapshotAt("x", c.at, 99)
		if st != c.status {
			t.Fatalf("at=%d: status %v, want %v", c.at, st, c.status)
		}
		if st != SnapOK {
			continue
		}
		if ver.Clock != uint64(c.want) || val.(*intBox).N != c.want {
			t.Fatalf("at=%d: served clock %d value %d, want %d", c.at, ver.Clock, val.(*intBox).N, c.want)
		}
	}
}

func TestSnapshotChainBounded(t *testing.T) {
	s := NewStore()
	s.SetChainLimit(2)
	s.Install("x", &intBox{N: 1}, Version{Clock: 1})
	commitVersions(t, s, "x", 2, 3, 4, 5)
	// Chain holds only {4, 3}: version 2 was evicted, so snapshot 2 is gone.
	if _, _, st := s.SnapshotAt("x", 2, 0); st != SnapTooOld {
		t.Fatalf("evicted version still served: %v", st)
	}
	if _, ver, st := s.SnapshotAt("x", 3, 0); st != SnapOK || ver.Clock != 3 {
		t.Fatalf("chain entry 3: status %v clock %d", st, ver.Clock)
	}
}

func TestSnapshotChainLimitZeroDisablesRetention(t *testing.T) {
	s := NewStore()
	s.SetChainLimit(0)
	s.Install("x", &intBox{N: 1}, Version{Clock: 1})
	commitVersions(t, s, "x", 2, 3)
	if _, _, st := s.SnapshotAt("x", 2, 0); st != SnapTooOld {
		t.Fatalf("retention disabled but old version served: %v", st)
	}
	if _, ver, st := s.SnapshotAt("x", 3, 0); st != SnapOK || ver.Clock != 3 {
		t.Fatalf("tip must still serve: %v clock %d", st, ver.Clock)
	}
	// Negative limits clamp to 0.
	s.SetChainLimit(-7)
	if got := s.ChainLimit(); got != 0 {
		t.Fatalf("negative limit clamped to %d, want 0", got)
	}
}

func TestSnapshotRetryWhileTipLockedAtOrBelow(t *testing.T) {
	s := NewStore()
	s.Install("x", &intBox{N: 1}, Version{Clock: 5})
	if res := s.Lock("x", 7, Version{Clock: 5}); res != LockOK {
		t.Fatalf("lock: %v", res)
	}
	// Tip (5) qualifies for snapshot 9, but a pending install could still
	// land at clock <= 9: the store must refuse rather than risk serving a
	// version that stops being the newest-at-or-below.
	if _, _, st := s.SnapshotAt("x", 9, 0); st != SnapRetry {
		t.Fatalf("locked qualifying tip served: %v, want retry", st)
	}
	// Chain entries are stable history: they serve even while locked.
	s2 := NewStore()
	s2.Install("y", &intBox{N: 1}, Version{Clock: 1})
	commitVersions(t, s2, "y", 2, 8)
	if res := s2.Lock("y", 9, Version{Clock: 8}); res != LockOK {
		t.Fatalf("lock y: %v", res)
	}
	if _, ver, st := s2.SnapshotAt("y", 5, 0); st != SnapOK || ver.Clock != 2 {
		t.Fatalf("chain serve while locked: %v clock %d, want ok clock 2", st, ver.Clock)
	}
}

func TestSnapshotNotOwner(t *testing.T) {
	s := NewStore()
	if _, _, st := s.SnapshotAt("missing", 5, 0); st != SnapNotOwner {
		t.Fatalf("status %v, want not-owner", st)
	}
}

func TestReadAtOrLatestAdvances(t *testing.T) {
	s := NewStore()
	s.SetChainLimit(1)
	s.Install("x", &intBox{N: 1}, Version{Clock: 10})
	commitVersions(t, s, "x", 20)
	// Snapshot 5 predates everything: strict read refuses, advance serves
	// the tip so a first read can re-pin its snapshot.
	if _, _, st := s.SnapshotAt("x", 5, 0); st != SnapTooOld {
		t.Fatalf("strict read: %v, want too-old", st)
	}
	val, ver, st := s.ReadAtOrLatest("x", 5, 0)
	if st != SnapOK || ver.Clock != 20 || val.(*intBox).N != 20 {
		t.Fatalf("advance: %v clock %d, want ok clock 20", st, ver.Clock)
	}
	// The advance path never serves a locked tip.
	if res := s.Lock("x", 3, ver); res != LockOK {
		t.Fatalf("lock: %v", res)
	}
	if _, _, st := s.ReadAtOrLatest("x", 5, 0); st != SnapTooOld {
		t.Fatalf("advance served a locked tip: %v", st)
	}
}

func TestSnapshotServesDeepCopies(t *testing.T) {
	s := NewStore()
	s.Install("x", &intBox{N: 1}, Version{Clock: 1})
	commitVersions(t, s, "x", 2)
	// Mutating a served copy must not corrupt the retained chain.
	val, _, st := s.SnapshotAt("x", 1, 0)
	if st != SnapOK {
		t.Fatalf("status %v", st)
	}
	val.(*intBox).N = 999
	val2, _, _ := s.SnapshotAt("x", 1, 0)
	if val2.(*intBox).N != 1 {
		t.Fatalf("chain entry corrupted through served copy: %d", val2.(*intBox).N)
	}
}

func TestSnapshotTraceEmitsUnderOrder(t *testing.T) {
	s := NewStore()
	var ops []string
	var served []uint64
	s.SetTrace(func(op string, id ID, tx, a, b uint64) {
		ops = append(ops, op)
		if op == "snap-read" || op == "snap-advance" {
			served = append(served, b)
		}
	})
	s.Install("x", &intBox{N: 1}, Version{Clock: 1})
	commitVersions(t, s, "x", 2)
	s.SnapshotAt("x", 2, 0)
	s.ReadAtOrLatest("x", 0, 0)
	wantOps := map[string]bool{"install": false, "commit": false, "snap-read": false, "snap-advance": false}
	for _, op := range ops {
		if _, ok := wantOps[op]; ok {
			wantOps[op] = true
		}
	}
	for op, seen := range wantOps {
		if !seen {
			t.Fatalf("trace op %q never emitted (got %v)", op, ops)
		}
	}
	if len(served) != 2 || served[0] != 2 || served[1] != 2 {
		t.Fatalf("served clocks %v, want [2 2]", served)
	}
}
