package object

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// storeShards is the number of independently locked shards in a Store. A
// power of two so the shard index is a mask of the ID hash. 16 shards keep
// lock hold times short under the batched commit path, where one handler
// applies a whole per-owner batch while retrieves for unrelated objects
// keep flowing on other shards.
const storeShards = 16

// TraceFn is the store's debug callback type; see Store.SetTrace. a and b
// carry op-specific payloads: the installed version clock for "install" and
// "commit", and the (requested, served) snapshot clocks for "snap-read" /
// "snap-advance". All other ops pass zeros.
type TraceFn func(op string, id ID, tx, a, b uint64)

// Store holds the authoritative copies of the objects currently owned by
// one node, together with per-object commit-lock state. All methods are
// safe for concurrent use.
//
// The commit lock is what creates the scheduling window the paper exploits:
// while a committing transaction validates an object (holds its lock),
// every incoming retrieve request for that object is a conflict that the
// node's scheduler must resolve (abort vs enqueue).
//
// The store is sharded by ID hash: independent objects contend on
// different mutexes, and the batched commit protocol (LockBatch) takes the
// union of its entries' shard locks — in ascending shard order, so
// concurrent batches cannot deadlock — to apply a whole batch as one
// atomic step.
type Store struct {
	shards     [storeShards]shard
	trace      atomic.Pointer[TraceFn]
	chainLimit atomic.Int32
}

type shard struct {
	mu   sync.Mutex
	objs map[ID]*record
}

func (s *Store) shardOf(id ID) *shard {
	return &s.shards[id.Hash()&(storeShards-1)]
}

// SetTrace installs a debug callback invoked (under the owning shard's
// lock) for every lock-state transition: "lock-ok", "lock-busy",
// "lock-stale", "lock-refused", "lock-expired", "unlock", "unlock-miss",
// "remove", "commit", "install", "install-locked" — and for every served
// snapshot read: "snap-read", "snap-advance". Pass nil to disable.
// Intended for tests and debugging.
func (s *Store) SetTrace(f TraceFn) {
	if f == nil {
		s.trace.Store(nil)
		return
	}
	s.trace.Store(&f)
}

func (s *Store) emit(op string, id ID, tx, a, b uint64) {
	if f := s.trace.Load(); f != nil {
		(*f)(op, id, tx, a, b)
	}
}

type record struct {
	val    Value
	ver    Version
	lockTx uint64    // transaction ID holding the commit lock; 0 = unlocked
	lockAt time.Time // when the commit lock was taken (lease accounting)
	// chain holds recently superseded (value, version) pairs, newest
	// first, bounded by the store's chain limit. Snapshot readers whose
	// pinned clock predates the current version are served from here
	// without touching the commit lock.
	chain []verVal
	// refused is a small ring of one-shot tombstones: Unlock by a
	// transaction that does not hold the lock records its ID here, so a
	// stale Lock request from that transaction arriving *after* its
	// release (request/handler reordering, or a lock reply lost to
	// cancellation) is denied instead of orphaning the lock forever.
	refused    [4]uint64
	refusedIdx uint8
}

// refuse records tx in the tombstone ring.
func (r *record) refuse(tx uint64) {
	r.refused[r.refusedIdx%4] = tx
	r.refusedIdx++
}

// consumeRefusal reports whether tx was tombstoned, clearing the entry.
func (r *record) consumeRefusal(tx uint64) bool {
	for i := range r.refused {
		if r.refused[i] == tx {
			r.refused[i] = 0
			return true
		}
	}
	return false
}

// refusedFor reports whether tx is tombstoned without consuming the entry
// (used by the read-only evaluation pass of LockBatch).
func (r *record) refusedFor(tx uint64) bool {
	for i := range r.refused {
		if r.refused[i] == tx {
			return true
		}
	}
	return false
}

// verVal is one retained historical version of an object.
type verVal struct {
	val Value
	ver Version
}

// DefaultChainLimit is how many superseded versions a record retains when
// SetChainLimit has not been called.
const DefaultChainLimit = 3

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	s.chainLimit.Store(DefaultChainLimit)
	for i := range s.shards {
		s.shards[i].objs = make(map[ID]*record)
	}
	return s
}

// SetChainLimit bounds how many superseded versions each record retains
// for snapshot readers. 0 disables version retention (every snapshot read
// must hit the current version); negative values are clamped to 0. The
// limit applies to future installs — existing chains shrink lazily on the
// next supersession.
func (s *Store) SetChainLimit(n int) {
	if n < 0 {
		n = 0
	}
	s.chainLimit.Store(int32(n))
}

// ChainLimit returns the current version-chain retention bound.
func (s *Store) ChainLimit() int { return int(s.chainLimit.Load()) }

// retain pushes (val, ver) onto the front of chain, bounded by limit.
func retain(chain []verVal, val Value, ver Version, limit int) []verVal {
	if limit == 0 {
		return nil
	}
	chain = append(chain, verVal{})
	copy(chain[1:], chain)
	chain[0] = verVal{val: val, ver: ver}
	if len(chain) > limit {
		chain = chain[:limit]
	}
	return chain
}

// Install inserts or replaces the authoritative copy of an object,
// unlocked. Used at object creation and when ownership migrates to this
// node after a commit. If a prior copy exists here its (value, version)
// pair is retained on the new record's version chain so concurrent
// snapshot readers pinned below the new version stay servable.
func (s *Store) Install(id ID, val Value, ver Version) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.emit("install", id, 0, ver.Clock, 0)
	nr := &record{val: val, ver: ver}
	if old, ok := sh.objs[id]; ok && old.ver.Less(ver) {
		nr.chain = retain(old.chain, old.val, old.ver, int(s.chainLimit.Load()))
	}
	sh.objs[id] = nr
}

// Snapshot returns a deep copy of the object's value plus its version and
// lock state. ok is false when this node does not own the object.
func (s *Store) Snapshot(id ID) (val Value, ver Version, locked bool, ok bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.objs[id]
	if !ok {
		return nil, Version{}, false, false
	}
	return r.val.Copy(), r.ver, r.lockTx != 0, true
}

// Version returns the object's current version. ok is false when the object
// is not owned here.
func (s *Store) Version(id ID) (Version, bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.objs[id]
	if !ok {
		return Version{}, false
	}
	return r.ver, true
}

// State returns the object's version and the transaction holding its commit
// lock (0 when unlocked). ok is false when the object is not owned here.
func (s *Store) State(id ID) (ver Version, lockedBy uint64, ok bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.objs[id]
	if !ok {
		return Version{}, 0, false
	}
	return r.ver, r.lockTx, true
}

// Lock acquires the commit lock on id for transaction tx if the object is
// owned here, currently unlocked (or already locked by tx), and its version
// still equals expect. It returns:
//
//	LockOK       – lock acquired (or re-entered)
//	LockStale    – version mismatch: the caller read a stale copy
//	LockBusy     – another transaction holds the commit lock
//	LockNotOwner – this node does not own the object
func (s *Store) Lock(id ID, tx uint64, expect Version) LockResult {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.lockLocked(sh, id, tx, expect)
}

// lockLocked is Lock's body; the caller holds sh.mu.
func (s *Store) lockLocked(sh *shard, id ID, tx uint64, expect Version) LockResult {
	r, ok := sh.objs[id]
	if !ok {
		return LockNotOwner
	}
	if tx != 0 && r.consumeRefusal(tx) {
		// The transaction already released (or abandoned) this lock; its
		// stale acquire must not resurrect it.
		s.emit("lock-refused", id, tx, 0, 0)
		return LockBusy
	}
	if r.lockTx != 0 && r.lockTx != tx {
		s.emit("lock-busy", id, tx, 0, 0)
		return LockBusy
	}
	if !r.ver.Equal(expect) {
		s.emit("lock-stale", id, tx, 0, 0)
		return LockStale
	}
	r.lockTx = tx
	r.lockAt = time.Now()
	s.emit("lock-ok", id, tx, 0, 0)
	return LockOK
}

// LockEntry is one object of a LockBatch request.
type LockEntry struct {
	ID     ID
	Expect Version
}

// LockBatch attempts to commit-lock every entry for tx as one atomic step:
// it holds the union of the entries' shard locks (acquired in ascending
// shard order, so concurrent batches cannot deadlock) while evaluating all
// entries, and applies the locks only when every entry would succeed.
//
// applied reports whether the locks were taken. When applied is false, NO
// lock was taken — the per-entry results tell the caller which entries
// failed (stale / busy / not-owner) and which would have succeeded
// (LockOK), so a single bad entry aborts the commit precisely while its
// sibling entries roll back for free. All-or-nothing acquisition also
// means a racing batch never observes a half-locked prefix of this one.
func (s *Store) LockBatch(tx uint64, entries []LockEntry) (results []LockResult, applied bool) {
	results = make([]LockResult, len(entries))
	if len(entries) == 0 {
		return results, true
	}

	s.lockShardsFor(entries)
	defer s.unlockShardsFor(entries)

	// Evaluation pass: no mutation, so a failed batch leaves the store
	// exactly as it found it (tombstones included).
	applied = true
	for i, e := range entries {
		r, ok := s.shardOf(e.ID).objs[e.ID]
		switch {
		case !ok:
			results[i] = LockNotOwner
		case tx != 0 && r.refusedFor(tx):
			results[i] = LockBusy
		case r.lockTx != 0 && r.lockTx != tx:
			results[i] = LockBusy
		case !r.ver.Equal(e.Expect):
			results[i] = LockStale
		default:
			results[i] = LockOK
		}
		if results[i] != LockOK {
			applied = false
		}
	}
	if !applied {
		// Narrate the failures (but not the would-have-succeeded entries:
		// nothing was locked, so emitting lock-ok would lie to the trace).
		for i, e := range entries {
			switch results[i] {
			case LockBusy:
				s.emit("lock-busy", e.ID, tx, 0, 0)
			case LockStale:
				s.emit("lock-stale", e.ID, tx, 0, 0)
			}
		}
		return results, false
	}
	now := time.Now()
	for _, e := range entries {
		r := s.shardOf(e.ID).objs[e.ID]
		if tx != 0 {
			// Consume matching tombstones only on the apply path; the
			// evaluation pass proved none exists for tx.
			r.consumeRefusal(tx)
		}
		r.lockTx = tx
		r.lockAt = now
		s.emit("lock-ok", e.ID, tx, 0, 0)
	}
	return results, true
}

// lockShardsFor locks the union of the entries' shards in ascending order.
func (s *Store) lockShardsFor(entries []LockEntry) {
	for _, idx := range shardSet(entries) {
		s.shards[idx].mu.Lock()
	}
}

// unlockShardsFor releases what lockShardsFor took.
func (s *Store) unlockShardsFor(entries []LockEntry) {
	for _, idx := range shardSet(entries) {
		s.shards[idx].mu.Unlock()
	}
}

// shardSet returns the sorted, deduplicated shard indices of entries.
func shardSet(entries []LockEntry) []int {
	var mask uint32
	for _, e := range entries {
		mask |= 1 << (e.ID.Hash() & (storeShards - 1))
	}
	out := make([]int, 0, storeShards)
	for i := 0; i < storeShards; i++ {
		if mask&(1<<i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// ExpireLocks force-releases every commit lock held for at least lease,
// returning the affected object IDs. The expired holder is tombstoned (see
// record.refuse) so its delayed lock, commit, or unlock messages cannot
// resurrect or corrupt the lock state. This is the abort-on-owner-crash
// path: a committer that died (or was partitioned away) mid-commit cannot
// wedge the objects it had locked — after the lease they return to
// circulation and queued requesters get served.
func (s *Store) ExpireLocks(lease time.Duration) []ID {
	now := time.Now()
	var expired []ID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, r := range sh.objs {
			if r.lockTx != 0 && now.Sub(r.lockAt) >= lease {
				s.emit("lock-expired", id, r.lockTx, 0, 0)
				r.refuse(r.lockTx)
				r.lockTx = 0
				expired = append(expired, id)
			}
		}
		sh.mu.Unlock()
	}
	return expired
}

// Unlock releases the commit lock on id if held by tx. Releasing a lock
// that tx does not hold plants a one-shot refusal marker instead (see
// record.refused), so a delayed Lock request from tx cannot orphan the
// object after its owner already processed the release.
func (s *Store) Unlock(id ID, tx uint64) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.objs[id]
	if !ok {
		s.emit("unlock-noobj", id, tx, 0, 0)
		return
	}
	if r.lockTx == tx {
		r.lockTx = 0
		s.emit("unlock", id, tx, 0, 0)
		return
	}
	s.emit("unlock-miss", id, tx, 0, 0)
	r.refuse(tx)
}

// InstallLocked inserts an object already commit-locked by tx, so it is
// invisible to plain snapshots' unlocked path until the creating
// transaction commits (UpdateCommitted) or rolls back (Remove).
func (s *Store) InstallLocked(id ID, val Value, ver Version, tx uint64) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.emit("install-locked", id, tx, 0, 0)
	sh.objs[id] = &record{val: val, ver: ver, lockTx: tx, lockAt: time.Now()}
}

// UpdateCommitted installs a new committed value and version for an object
// whose commit lock is held by tx, then releases the lock. Used when the
// committing transaction's node already owns the object (no migration).
func (s *Store) UpdateCommitted(id ID, val Value, ver Version, tx uint64) error {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.objs[id]
	if !ok {
		return fmt.Errorf("store: update %q: not owned", id)
	}
	if r.lockTx != tx {
		return fmt.Errorf("store: update %q: lock held by tx %d, not %d", id, r.lockTx, tx)
	}
	if r.ver.Less(ver) {
		r.chain = retain(r.chain, r.val, r.ver, int(s.chainLimit.Load()))
	}
	r.val = val
	r.ver = ver
	r.lockTx = 0
	s.emit("commit", id, tx, ver.Clock, 0)
	return nil
}

// SnapStatus is the outcome of a snapshot read; see SnapshotAt.
type SnapStatus uint8

// Snapshot-read outcomes.
const (
	// SnapOK: the returned value is the newest version at or below the
	// requested clock (or, via ReadAtOrLatest's advance path, the current
	// version with a clock above it).
	SnapOK SnapStatus = iota
	// SnapNotOwner: this node does not own the object.
	SnapNotOwner
	// SnapRetry: the current version qualifies but the object is
	// commit-locked — a pending install could still slide a newer version
	// under the requested clock, so serving now could violate the
	// newest-at-or-below rule. The reader should retry with a fresh
	// snapshot.
	SnapRetry
	// SnapTooOld: no retained version sits at or below the requested
	// clock; the reader's snapshot predates the chain's tail.
	SnapTooOld
)

func (st SnapStatus) String() string {
	switch st {
	case SnapOK:
		return "ok"
	case SnapNotOwner:
		return "not-owner"
	case SnapRetry:
		return "retry"
	case SnapTooOld:
		return "too-old"
	default:
		return fmt.Sprintf("SnapStatus(%d)", uint8(st))
	}
}

// SnapshotAt returns a deep copy of the newest version of id whose clock
// is at or below at, searching the current version and the retained
// chain. tx identifies the reading transaction (trace only). The commit
// lock is never taken and never blocks the caller; the only interaction
// with a pending commit is the SnapRetry refusal described on SnapStatus.
func (s *Store) SnapshotAt(id ID, at, tx uint64) (Value, Version, SnapStatus) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.snapshotLocked(sh, id, at, tx, false)
}

// ReadAtOrLatest is SnapshotAt with a first-read escape hatch: when no
// retained version sits at or below at and the object is unlocked, the
// current version is served instead (status SnapOK) and the caller must
// advance its snapshot to the returned version's clock. Only sound when
// the reading transaction has observed nothing else yet.
func (s *Store) ReadAtOrLatest(id ID, at, tx uint64) (Value, Version, SnapStatus) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.snapshotLocked(sh, id, at, tx, true)
}

// snapshotLocked is the shared body of SnapshotAt/ReadAtOrLatest; the
// caller holds sh.mu.
func (s *Store) snapshotLocked(sh *shard, id ID, at, tx uint64, advanceOK bool) (Value, Version, SnapStatus) {
	r, ok := sh.objs[id]
	if !ok {
		return nil, Version{}, SnapNotOwner
	}
	if r.ver.Clock <= at {
		if r.lockTx != 0 {
			// A commit in flight may install a version that is still at
			// or below at; serving the current tip now could retroactively
			// break the newest-at-or-below rule.
			return nil, Version{}, SnapRetry
		}
		s.emit("snap-read", id, tx, at, r.ver.Clock)
		return r.val.Copy(), r.ver, SnapOK
	}
	// The tip is above the snapshot. Any in-flight install lands above the
	// tip, so chain entries are stable history and safe to serve even
	// while the object is commit-locked.
	for _, e := range r.chain {
		if e.ver.Clock <= at {
			s.emit("snap-read", id, tx, at, e.ver.Clock)
			return e.val.Copy(), e.ver, SnapOK
		}
	}
	if advanceOK && r.lockTx == 0 {
		s.emit("snap-advance", id, tx, at, r.ver.Clock)
		return r.val.Copy(), r.ver, SnapOK
	}
	return nil, Version{}, SnapTooOld
}

// Remove deletes the object if the caller transaction holds its commit lock
// (ownership is migrating away as part of tx's commit). It returns an error
// if the object is absent or locked by someone else.
func (s *Store) Remove(id ID, tx uint64) error {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.objs[id]
	if !ok {
		return fmt.Errorf("store: remove %q: not owned", id)
	}
	if r.lockTx != tx {
		return fmt.Errorf("store: remove %q: lock held by tx %d, not %d", id, r.lockTx, tx)
	}
	s.emit("remove", id, tx, 0, 0)
	delete(sh.objs, id)
	return nil
}

// Owns reports whether this node currently owns id.
func (s *Store) Owns(id ID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.objs[id]
	return ok
}

// Locked reports whether id is owned here and commit-locked.
func (s *Store) Locked(id ID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.objs[id]
	return ok && r.lockTx != 0
}

// Len returns the number of objects owned by this node.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.objs)
		sh.mu.Unlock()
	}
	return n
}

// IDs returns the IDs of all objects owned here (unordered snapshot).
func (s *Store) IDs() []ID {
	var out []ID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id := range sh.objs {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	return out
}

// SortIDs orders ids ascending — the cluster-wide deterministic lock order
// used by the commit protocol, within and across per-owner batches.
func SortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// LockResult is the outcome of a Store.Lock attempt.
type LockResult uint8

// Lock outcomes; see Store.Lock.
const (
	LockOK LockResult = iota
	LockStale
	LockBusy
	LockNotOwner
)

func (lr LockResult) String() string {
	switch lr {
	case LockOK:
		return "ok"
	case LockStale:
		return "stale"
	case LockBusy:
		return "busy"
	case LockNotOwner:
		return "not-owner"
	default:
		return fmt.Sprintf("LockResult(%d)", uint8(lr))
	}
}
