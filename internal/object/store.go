package object

import (
	"fmt"
	"sync"
	"time"
)

// Store holds the authoritative copies of the objects currently owned by
// one node, together with per-object commit-lock state. All methods are
// safe for concurrent use.
//
// The commit lock is what creates the scheduling window the paper exploits:
// while a committing transaction validates an object (holds its lock),
// every incoming retrieve request for that object is a conflict that the
// node's scheduler must resolve (abort vs enqueue).
type Store struct {
	mu    sync.Mutex
	objs  map[ID]*record
	trace func(op string, id ID, tx uint64)
}

// SetTrace installs a debug callback invoked (under the store lock) for
// every lock-state transition: "lock-ok", "lock-busy", "lock-stale",
// "lock-refused", "lock-expired", "unlock", "unlock-miss", "remove",
// "commit", "install", "install-locked". Pass nil to disable. Intended for
// tests and debugging.
func (s *Store) SetTrace(f func(op string, id ID, tx uint64)) {
	s.mu.Lock()
	s.trace = f
	s.mu.Unlock()
}

func (s *Store) emit(op string, id ID, tx uint64) {
	if s.trace != nil {
		s.trace(op, id, tx)
	}
}

type record struct {
	val    Value
	ver    Version
	lockTx uint64    // transaction ID holding the commit lock; 0 = unlocked
	lockAt time.Time // when the commit lock was taken (lease accounting)
	// refused is a small ring of one-shot tombstones: Unlock by a
	// transaction that does not hold the lock records its ID here, so a
	// stale Lock request from that transaction arriving *after* its
	// release (request/handler reordering, or a lock reply lost to
	// cancellation) is denied instead of orphaning the lock forever.
	refused    [4]uint64
	refusedIdx uint8
}

// refuse records tx in the tombstone ring.
func (r *record) refuse(tx uint64) {
	r.refused[r.refusedIdx%4] = tx
	r.refusedIdx++
}

// consumeRefusal reports whether tx was tombstoned, clearing the entry.
func (r *record) consumeRefusal(tx uint64) bool {
	for i := range r.refused {
		if r.refused[i] == tx {
			r.refused[i] = 0
			return true
		}
	}
	return false
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{objs: make(map[ID]*record)}
}

// Install inserts or replaces the authoritative copy of an object,
// unlocked. Used at object creation and when ownership migrates to this
// node after a commit.
func (s *Store) Install(id ID, val Value, ver Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit("install", id, 0)
	s.objs[id] = &record{val: val, ver: ver}
}

// Snapshot returns a deep copy of the object's value plus its version and
// lock state. ok is false when this node does not own the object.
func (s *Store) Snapshot(id ID) (val Value, ver Version, locked bool, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.objs[id]
	if !ok {
		return nil, Version{}, false, false
	}
	return r.val.Copy(), r.ver, r.lockTx != 0, true
}

// Version returns the object's current version. ok is false when the object
// is not owned here.
func (s *Store) Version(id ID) (Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.objs[id]
	if !ok {
		return Version{}, false
	}
	return r.ver, true
}

// State returns the object's version and the transaction holding its commit
// lock (0 when unlocked). ok is false when the object is not owned here.
func (s *Store) State(id ID) (ver Version, lockedBy uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.objs[id]
	if !ok {
		return Version{}, 0, false
	}
	return r.ver, r.lockTx, true
}

// Lock acquires the commit lock on id for transaction tx if the object is
// owned here, currently unlocked (or already locked by tx), and its version
// still equals expect. It returns:
//
//	LockOK       – lock acquired (or re-entered)
//	LockStale    – version mismatch: the caller read a stale copy
//	LockBusy     – another transaction holds the commit lock
//	LockNotOwner – this node does not own the object
func (s *Store) Lock(id ID, tx uint64, expect Version) LockResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.objs[id]
	if !ok {
		return LockNotOwner
	}
	if tx != 0 && r.consumeRefusal(tx) {
		// The transaction already released (or abandoned) this lock; its
		// stale acquire must not resurrect it.
		s.emit("lock-refused", id, tx)
		return LockBusy
	}
	if r.lockTx != 0 && r.lockTx != tx {
		s.emit("lock-busy", id, tx)
		return LockBusy
	}
	if !r.ver.Equal(expect) {
		s.emit("lock-stale", id, tx)
		return LockStale
	}
	r.lockTx = tx
	r.lockAt = time.Now()
	s.emit("lock-ok", id, tx)
	return LockOK
}

// ExpireLocks force-releases every commit lock held for at least lease,
// returning the affected object IDs. The expired holder is tombstoned (see
// record.refuse) so its delayed lock, commit, or unlock messages cannot
// resurrect or corrupt the lock state. This is the abort-on-owner-crash
// path: a committer that died (or was partitioned away) mid-commit cannot
// wedge the objects it had locked — after the lease they return to
// circulation and queued requesters get served.
func (s *Store) ExpireLocks(lease time.Duration) []ID {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var expired []ID
	for id, r := range s.objs {
		if r.lockTx != 0 && now.Sub(r.lockAt) >= lease {
			s.emit("lock-expired", id, r.lockTx)
			r.refuse(r.lockTx)
			r.lockTx = 0
			expired = append(expired, id)
		}
	}
	return expired
}

// Unlock releases the commit lock on id if held by tx. Releasing a lock
// that tx does not hold plants a one-shot refusal marker instead (see
// record.refusedTx), so a delayed Lock request from tx cannot orphan the
// object after its owner already processed the release.
func (s *Store) Unlock(id ID, tx uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.objs[id]
	if !ok {
		s.emit("unlock-noobj", id, tx)
		return
	}
	if r.lockTx == tx {
		r.lockTx = 0
		s.emit("unlock", id, tx)
		return
	}
	s.emit("unlock-miss", id, tx)
	r.refuse(tx)
}

// InstallLocked inserts an object already commit-locked by tx, so it is
// invisible to plain snapshots' unlocked path until the creating
// transaction commits (UpdateCommitted) or rolls back (Remove).
func (s *Store) InstallLocked(id ID, val Value, ver Version, tx uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit("install-locked", id, tx)
	s.objs[id] = &record{val: val, ver: ver, lockTx: tx, lockAt: time.Now()}
}

// UpdateCommitted installs a new committed value and version for an object
// whose commit lock is held by tx, then releases the lock. Used when the
// committing transaction's node already owns the object (no migration).
func (s *Store) UpdateCommitted(id ID, val Value, ver Version, tx uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.objs[id]
	if !ok {
		return fmt.Errorf("store: update %q: not owned", id)
	}
	if r.lockTx != tx {
		return fmt.Errorf("store: update %q: lock held by tx %d, not %d", id, r.lockTx, tx)
	}
	r.val = val
	r.ver = ver
	r.lockTx = 0
	s.emit("commit", id, tx)
	return nil
}

// Remove deletes the object if the caller transaction holds its commit lock
// (ownership is migrating away as part of tx's commit). It returns an error
// if the object is absent or locked by someone else.
func (s *Store) Remove(id ID, tx uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.objs[id]
	if !ok {
		return fmt.Errorf("store: remove %q: not owned", id)
	}
	if r.lockTx != tx {
		return fmt.Errorf("store: remove %q: lock held by tx %d, not %d", id, r.lockTx, tx)
	}
	s.emit("remove", id, tx)
	delete(s.objs, id)
	return nil
}

// Owns reports whether this node currently owns id.
func (s *Store) Owns(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objs[id]
	return ok
}

// Locked reports whether id is owned here and commit-locked.
func (s *Store) Locked(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.objs[id]
	return ok && r.lockTx != 0
}

// Len returns the number of objects owned by this node.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objs)
}

// IDs returns the IDs of all objects owned here (unordered snapshot).
func (s *Store) IDs() []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ID, 0, len(s.objs))
	for id := range s.objs {
		out = append(out, id)
	}
	return out
}

// LockResult is the outcome of a Store.Lock attempt.
type LockResult uint8

// Lock outcomes; see Store.Lock.
const (
	LockOK LockResult = iota
	LockStale
	LockBusy
	LockNotOwner
)

func (lr LockResult) String() string {
	switch lr {
	case LockOK:
		return "ok"
	case LockStale:
		return "stale"
	case LockBusy:
		return "busy"
	case LockNotOwner:
		return "not-owner"
	default:
		return fmt.Sprintf("LockResult(%d)", uint8(lr))
	}
}
