package object

import (
	"testing"
	"testing/quick"
	"time"
)

// intBox is a minimal Value for tests.
type intBox struct{ N int64 }

func (b *intBox) Copy() Value { c := *b; return &c }

func TestIDHashStable(t *testing.T) {
	a := ID("bank/acct/1").Hash()
	b := ID("bank/acct/1").Hash()
	if a != b {
		t.Fatal("same ID hashed to different values")
	}
	if ID("bank/acct/1").Hash() == ID("bank/acct/2").Hash() {
		t.Fatal("suspicious collision between adjacent IDs")
	}
}

func TestVersionOrdering(t *testing.T) {
	cases := []struct {
		a, b Version
		less bool
	}{
		{Version{1, 0}, Version{2, 0}, true},
		{Version{2, 0}, Version{1, 0}, false},
		{Version{1, 1}, Version{1, 2}, true},
		{Version{1, 2}, Version{1, 1}, false},
		{Version{1, 1}, Version{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Version{3, 1}).Equal(Version{3, 1}) {
		t.Fatal("Equal failed on identical versions")
	}
}

// Property: Less is a strict weak ordering (irreflexive, asymmetric,
// transitive over random triples).
func TestVersionLessStrictOrder(t *testing.T) {
	f := func(c1, c2, c3 uint64, n1, n2, n3 int32) bool {
		a, b, c := Version{c1, n1}, Version{c2, n2}, Version{c3, n3}
		if a.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		// Totality: exactly one of a<b, b<a, a==b.
		lt, gt, eq := a.Less(b), b.Less(a), a.Equal(b)
		cnt := 0
		for _, x := range []bool{lt, gt, eq} {
			if x {
				cnt++
			}
		}
		return cnt == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreInstallSnapshot(t *testing.T) {
	s := NewStore()
	s.Install("x", &intBox{7}, Version{1, 0})
	val, ver, locked, ok := s.Snapshot("x")
	if !ok || locked {
		t.Fatalf("Snapshot: ok=%v locked=%v", ok, locked)
	}
	if ver != (Version{1, 0}) {
		t.Fatalf("version %v", ver)
	}
	if val.(*intBox).N != 7 {
		t.Fatalf("value %v", val)
	}
	// The snapshot must be a deep copy.
	val.(*intBox).N = 99
	val2, _, _, _ := s.Snapshot("x")
	if val2.(*intBox).N != 7 {
		t.Fatal("Snapshot aliases the authoritative copy")
	}
}

func TestSnapshotMissing(t *testing.T) {
	s := NewStore()
	if _, _, _, ok := s.Snapshot("nope"); ok {
		t.Fatal("Snapshot of missing object returned ok")
	}
	if _, ok := s.Version("nope"); ok {
		t.Fatal("Version of missing object returned ok")
	}
}

func TestLockSemantics(t *testing.T) {
	s := NewStore()
	s.Install("x", &intBox{1}, Version{5, 2})

	if got := s.Lock("y", 10, Version{}); got != LockNotOwner {
		t.Fatalf("lock unowned: %v", got)
	}
	if got := s.Lock("x", 10, Version{4, 2}); got != LockStale {
		t.Fatalf("stale lock: %v", got)
	}
	if got := s.Lock("x", 10, Version{5, 2}); got != LockOK {
		t.Fatalf("lock: %v", got)
	}
	if !s.Locked("x") {
		t.Fatal("Locked false after Lock")
	}
	// Re-entrant for the same tx.
	if got := s.Lock("x", 10, Version{5, 2}); got != LockOK {
		t.Fatalf("re-entrant lock: %v", got)
	}
	// Busy for another tx, even with correct version.
	if got := s.Lock("x", 11, Version{5, 2}); got != LockBusy {
		t.Fatalf("busy lock: %v", got)
	}
	// Unlock by non-holder is a no-op.
	s.Unlock("x", 11)
	if !s.Locked("x") {
		t.Fatal("non-holder unlock released the lock")
	}
	s.Unlock("x", 10)
	if s.Locked("x") {
		t.Fatal("still locked after holder unlock")
	}
	// Unlock when unlocked is a no-op.
	s.Unlock("x", 10)
}

func TestRemoveRequiresLock(t *testing.T) {
	s := NewStore()
	s.Install("x", &intBox{1}, Version{1, 0})
	if err := s.Remove("x", 10); err == nil {
		t.Fatal("Remove without lock succeeded")
	}
	if s.Lock("x", 10, Version{1, 0}) != LockOK {
		t.Fatal("lock failed")
	}
	if err := s.Remove("x", 11); err == nil {
		t.Fatal("Remove by non-holder succeeded")
	}
	if err := s.Remove("x", 10); err != nil {
		t.Fatalf("Remove by holder: %v", err)
	}
	if s.Owns("x") {
		t.Fatal("object still owned after Remove")
	}
	if err := s.Remove("x", 10); err == nil {
		t.Fatal("double Remove succeeded")
	}
}

func TestStoreLenIDs(t *testing.T) {
	s := NewStore()
	s.Install("a", &intBox{1}, Version{})
	s.Install("b", &intBox{2}, Version{})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	ids := s.IDs()
	seen := map[ID]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen["a"] || !seen["b"] || len(ids) != 2 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestLockResultString(t *testing.T) {
	for lr, want := range map[LockResult]string{
		LockOK: "ok", LockStale: "stale", LockBusy: "busy", LockNotOwner: "not-owner",
	} {
		if lr.String() != want {
			t.Errorf("%d.String() = %q, want %q", lr, lr.String(), want)
		}
	}
	if LockResult(99).String() == "" {
		t.Error("unknown LockResult produced empty string")
	}
}

func TestUnlockBeforeLockRefusesStaleAcquire(t *testing.T) {
	// A release processed before its own (delayed) acquire must tombstone
	// the transaction so the late acquire cannot orphan the lock.
	s := NewStore()
	s.Install("x", &intBox{1}, Version{})

	s.Unlock("x", 42) // release arrives first (reordered handlers)
	if got := s.Lock("x", 42, Version{}); got != LockBusy {
		t.Fatalf("stale acquire after release = %v, want LockBusy", got)
	}
	if s.Locked("x") {
		t.Fatal("stale acquire locked the object")
	}
	// The tombstone is one-shot: a later, legitimate acquire from the same
	// ID (not possible with per-attempt lock IDs, but defensively) works.
	if got := s.Lock("x", 42, Version{}); got != LockOK {
		t.Fatalf("second acquire = %v, want LockOK", got)
	}
	s.Unlock("x", 42)

	// The ring tolerates several racing transactions.
	for tx := uint64(100); tx < 104; tx++ {
		s.Unlock("x", tx)
	}
	for tx := uint64(100); tx < 104; tx++ {
		if got := s.Lock("x", tx, Version{}); got != LockBusy {
			t.Fatalf("tx %d stale acquire = %v, want LockBusy", tx, got)
		}
	}
}

func TestStoreConcurrentLocking(t *testing.T) {
	s := NewStore()
	s.Install("x", &intBox{0}, Version{})
	const goroutines = 8
	acquired := make(chan uint64, goroutines)
	done := make(chan struct{})
	for g := 1; g <= goroutines; g++ {
		go func(tx uint64) {
			if s.Lock("x", tx, Version{}) == LockOK {
				acquired <- tx
			}
			done <- struct{}{}
		}(uint64(g))
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	close(acquired)
	n := 0
	for range acquired {
		n++
	}
	if n != 1 {
		t.Fatalf("%d goroutines acquired the commit lock, want exactly 1", n)
	}
}

func TestExpireLocks(t *testing.T) {
	s := NewStore()
	s.Install("a", &intBox{1}, Version{1, 0})
	s.Install("b", &intBox{2}, Version{1, 0})
	s.Install("c", &intBox{3}, Version{1, 0})

	if got := s.Lock("a", 7, Version{1, 0}); got != LockOK {
		t.Fatalf("lock a: %v", got)
	}
	if got := s.Lock("b", 8, Version{1, 0}); got != LockOK {
		t.Fatalf("lock b: %v", got)
	}
	// "c" stays unlocked.

	// A generous lease expires nothing.
	if exp := s.ExpireLocks(time.Hour); len(exp) != 0 {
		t.Fatalf("expired %v under a 1h lease", exp)
	}
	if !s.Locked("a") || !s.Locked("b") {
		t.Fatal("locks released under a generous lease")
	}

	// A zero lease expires every held lock, and only held locks.
	exp := s.ExpireLocks(0)
	if len(exp) != 2 {
		t.Fatalf("expired %v, want exactly the two locked objects", exp)
	}
	seen := map[ID]bool{}
	for _, id := range exp {
		seen[id] = true
	}
	if !seen["a"] || !seen["b"] || seen["c"] {
		t.Fatalf("expired set %v, want {a, b}", exp)
	}
	if s.Locked("a") || s.Locked("b") {
		t.Fatal("objects still locked after expiry")
	}

	// The expired holders are tombstoned: their delayed lock requests must
	// not resurrect the lock.
	if got := s.Lock("a", 7, Version{1, 0}); got != LockBusy {
		t.Fatalf("expired holder re-lock: %v, want LockBusy (refused)", got)
	}
	if got := s.Lock("b", 8, Version{1, 0}); got != LockBusy {
		t.Fatalf("expired holder re-lock: %v, want LockBusy (refused)", got)
	}
	// A fresh transaction can take the freed lock.
	if got := s.Lock("a", 9, Version{1, 0}); got != LockOK {
		t.Fatalf("fresh lock after expiry: %v", got)
	}
	// Expiring again releases the fresh holder too (zero lease), proving
	// expiry is repeatable.
	if exp := s.ExpireLocks(0); len(exp) != 1 || exp[0] != "a" {
		t.Fatalf("second expiry %v, want [a]", exp)
	}
}
