// Package object defines the shared-object model of the dataflow D-STM:
// identifiers, versions, copyable values, and the owner-side Store that
// holds the single authoritative (writable) copy of each object together
// with its commit-lock state.
package object

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
)

// ID names a shared object cluster-wide, e.g. "bank/acct/42".
type ID string

// Hash returns a stable hash of the ID, used to place the object's home
// (directory) node.
func (id ID) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// Version identifies a committed state of an object: the TFA clock value of
// the committing node at its commit point, plus the node ID as tie-breaker.
// The zero Version denotes the initial (creation) state.
type Version struct {
	Clock uint64
	Node  int32
}

// Less orders versions by clock, then node.
func (v Version) Less(o Version) bool {
	if v.Clock != o.Clock {
		return v.Clock < o.Clock
	}
	return v.Node < o.Node
}

// Equal reports whether two versions are identical.
func (v Version) Equal(o Version) bool { return v == o }

func (v Version) String() string { return fmt.Sprintf("v%d@n%d", v.Clock, v.Node) }

// Value is the interface shared objects implement. Copy must return a deep
// copy so that transaction-local buffers never alias the authoritative
// copy. Values travelling over the TCP transport must also be registered
// with Register so encoding/gob can marshal them through interface fields.
type Value interface {
	Copy() Value
}

// Register makes a concrete Value type known to encoding/gob, for use with
// the TCP transport. It is safe to call from init functions.
func Register(v Value) { gob.Register(v) }
