package stats

import (
	"sync"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 1},
		{1024, 10},
		{time.Duration(1) << 60, histBuckets - 1}, // beyond range clamps to last
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistObserveAndQuantile(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond) // bucket 9 (512ns..1024ns): ~1µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count() != 100 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() < 90*time.Microsecond || s.Mean() > 120*time.Microsecond {
		t.Fatalf("mean = %v", s.Mean())
	}
	if q := s.Quantile(0.5); q > 4*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs bucket bound", q)
	}
	if q := s.Quantile(0.99); q < time.Millisecond || q > 4*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1ms bucket bound", q)
	}
	if s.Quantile(0.99) < s.Quantile(0.5) {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistEmpty(t *testing.T) {
	var s HistSnapshot
	if s.Count() != 0 || s.Mean() != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("empty snapshot not all-zero: %v", s)
	}
	if s.String() != "n=0" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestHistMergeAndSub(t *testing.T) {
	var a, b LatencyHist
	a.Observe(time.Microsecond)
	a.Observe(time.Millisecond)
	b.Observe(time.Microsecond)

	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count() != 3 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	if merged.SumNs != sa.SumNs+sb.SumNs {
		t.Fatalf("merged sum = %d", merged.SumNs)
	}

	merged.Sub(sb)
	if merged != sa {
		t.Fatalf("sub did not invert merge: %+v != %+v", merged, sa)
	}
	// Saturating: subtracting more than present clamps at zero.
	under := sb
	under.Sub(sa)
	if under.SumNs != 0 {
		t.Fatalf("saturating sub: sum = %d", under.SumNs)
	}
}

func TestHistConcurrentObserve(t *testing.T) {
	var h LatencyHist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if n := h.Snapshot().Count(); n != 8000 {
		t.Fatalf("count = %d", n)
	}
}
