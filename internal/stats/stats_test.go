package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestExpectFallback(t *testing.T) {
	tb := NewTable(3 * time.Millisecond)
	if got := tb.Expect("unknown"); got != 3*time.Millisecond {
		t.Fatalf("Expect on empty table = %v, want fallback", got)
	}
}

func TestNewTableClampsFallback(t *testing.T) {
	tb := NewTable(0)
	if got := tb.Expect("x"); got <= 0 {
		t.Fatalf("fallback not clamped: %v", got)
	}
}

func TestExpectAverages(t *testing.T) {
	tb := NewTable(time.Millisecond)
	tb.RecordCommit("tx", 100*time.Microsecond)
	tb.RecordCommit("tx", 300*time.Microsecond)
	if got := tb.Expect("tx"); got != 200*time.Microsecond {
		t.Fatalf("Expect = %v, want 200µs", got)
	}
}

func TestProfilesIndependent(t *testing.T) {
	tb := NewTable(time.Millisecond)
	tb.RecordCommit("a", 100*time.Microsecond)
	tb.RecordCommit("b", 900*time.Microsecond)
	if got := tb.Expect("a"); got != 100*time.Microsecond {
		t.Fatalf("profile a polluted: %v", got)
	}
	if got := tb.Expect("b"); got != 900*time.Microsecond {
		t.Fatalf("profile b polluted: %v", got)
	}
	if tb.Profiles() != 2 {
		t.Fatalf("Profiles() = %d", tb.Profiles())
	}
}

func TestSeenUsesBloomFilter(t *testing.T) {
	tb := NewTable(time.Millisecond)
	d := 500 * time.Microsecond
	if tb.Seen("tx", d) {
		t.Fatal("Seen true before any record")
	}
	tb.RecordCommit("tx", d)
	if !tb.Seen("tx", d) {
		t.Fatal("Seen false for just-recorded duration (false negative)")
	}
	// Same bucket (resolution 50µs): 510µs buckets with 500µs.
	if !tb.Seen("tx", d+10*time.Microsecond) {
		t.Fatal("Seen false for same-bucket duration")
	}
}

func TestWindowRollover(t *testing.T) {
	tb := NewTable(time.Millisecond)
	// Fill well past the window with a constant value; the estimate must
	// remain that value across rebuilds.
	for i := 0; i < DefaultWindow*3; i++ {
		tb.RecordCommit("tx", 200*time.Microsecond)
	}
	if got := tb.Expect("tx"); got != 200*time.Microsecond {
		t.Fatalf("Expect = %v after rollover, want 200µs", got)
	}
}

func TestWindowTracksRegimeChange(t *testing.T) {
	tb := NewTable(time.Millisecond)
	for i := 0; i < DefaultWindow; i++ {
		tb.RecordCommit("tx", 100*time.Microsecond)
	}
	// Regime change: commits now take 10x longer. After enough samples the
	// estimate must move most of the way to the new value.
	for i := 0; i < DefaultWindow*4; i++ {
		tb.RecordCommit("tx", time.Millisecond)
	}
	got := tb.Expect("tx")
	if got < 900*time.Microsecond {
		t.Fatalf("Expect = %v, estimate failed to track regime change", got)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tb := NewTable(time.Millisecond)
	tb.RecordCommit("tx", -5*time.Second)
	if got := tb.Expect("tx"); got < 0 {
		t.Fatalf("Expect = %v, negative", got)
	}
}

// Property: Expect is always within [min, max] of the recorded samples
// (within one window, no rollover).
func TestExpectBoundedBySamples(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) >= DefaultWindow {
			return true
		}
		tb := NewTable(time.Millisecond)
		min := time.Duration(1<<63 - 1)
		max := time.Duration(0)
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			tb.RecordCommit("p", d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		got := tb.Expect("p")
		return got >= min && got <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	tb := NewTable(time.Millisecond)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			name := []string{"a", "b"}[g%2]
			for i := 0; i < 500; i++ {
				tb.RecordCommit(name, time.Duration(i)*time.Microsecond)
				_ = tb.Expect(name)
				_ = tb.Seen(name, time.Duration(i)*time.Microsecond)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
