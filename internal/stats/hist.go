package stats

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets: bucket b covers
// [2^b, 2^(b+1)) nanoseconds, so 40 buckets span 1ns to ~18 minutes.
const histBuckets = 40

// LatencyHist is a lock-free log2-bucketed latency histogram. The zero
// value is ready to use; all methods are safe for concurrent use.
type LatencyHist struct {
	counts [histBuckets]atomic.Uint64
	sumNs  atomic.Uint64
}

func bucketOf(d time.Duration) int {
	ns := int64(d)
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.sumNs.Add(uint64(d))
}

// Snapshot copies the histogram's counters.
func (h *LatencyHist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumNs = h.sumNs.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a LatencyHist.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	SumNs  uint64
}

// Count returns the total number of recorded samples.
func (s HistSnapshot) Count() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Mean returns the average recorded latency (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.SumNs / n)
}

// Merge adds other's buckets into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.SumNs += other.SumNs
}

// Sub removes a baseline snapshot from s, saturating at zero (used to
// discard warm-up samples recorded before a measurement window opened).
func (s *HistSnapshot) Sub(base HistSnapshot) {
	for i := range s.Counts {
		if s.Counts[i] >= base.Counts[i] {
			s.Counts[i] -= base.Counts[i]
		} else {
			s.Counts[i] = 0
		}
	}
	if s.SumNs >= base.SumNs {
		s.SumNs -= base.SumNs
	} else {
		s.SumNs = 0
	}
}

// Quantile returns an upper bound on the q-quantile latency (q in [0, 1]):
// the top edge of the bucket holding the q-th sample. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n-1))
	var seen uint64
	for b, c := range s.Counts {
		seen += c
		if c > 0 && seen > rank {
			return time.Duration(uint64(1) << (uint(b) + 1))
		}
	}
	return time.Duration(uint64(1) << histBuckets)
}

// String renders count, mean and tail quantiles compactly.
func (s HistSnapshot) String() string {
	n := s.Count()
	if n == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50<%v p99<%v", n, s.Mean(), s.Quantile(0.50), s.Quantile(0.99))
	return b.String()
}
