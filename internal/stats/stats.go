// Package stats implements the RTS transaction stats table.
//
// The paper (§III-B): "To compute a backoff time, we use a transaction stats
// table that stores the average historical validation time of a transaction.
// Each table entry holds a bloom filter representation of the most current
// successful commit times of write transactions. Whenever a transaction
// starts, an expected commit time is picked up from the table."
//
// Our entry keeps the same two structures:
//
//   - a Bloom filter holding the bucketised durations of the most recent
//     successful commits (the "representation of the most current
//     successful commit times"), rebuilt whenever it grows stale, and
//   - a running average over the samples currently represented in the
//     filter, which is what Expect returns.
//
// Durations are bucketised to a fixed resolution before entering the filter
// so that repeated near-identical commit times map to the same key.
package stats

import (
	"sync"
	"time"

	"dstm/internal/bloom"
)

// DefaultResolution is the duration bucket width used to key commit times
// into the Bloom filter.
const DefaultResolution = 50 * time.Microsecond

// DefaultWindow is the number of recent commit samples represented per
// entry before the Bloom filter and average are rebuilt from scratch.
const DefaultWindow = 64

// Table maps a transaction profile name to its commit-time history. It is
// safe for concurrent use; there is one Table per node.
type Table struct {
	mu         sync.Mutex
	entries    map[string]*entry
	resolution time.Duration
	window     int
	fallback   time.Duration
}

type entry struct {
	filter *bloom.Filter
	sum    time.Duration
	count  int
}

// NewTable returns an empty stats table. fallback is returned by Expect for
// profiles with no recorded history yet (a freshly started system).
func NewTable(fallback time.Duration) *Table {
	if fallback <= 0 {
		fallback = time.Millisecond
	}
	return &Table{
		entries:    make(map[string]*entry),
		resolution: DefaultResolution,
		window:     DefaultWindow,
		fallback:   fallback,
	}
}

func (t *Table) bucket(d time.Duration) uint64 {
	if d < 0 {
		d = 0
	}
	return uint64(d / t.resolution)
}

// RecordCommit adds an observed successful commit duration for the named
// transaction profile.
func (t *Table) RecordCommit(name string, took time.Duration) {
	if took < 0 {
		took = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[name]
	if e == nil {
		e = &entry{filter: bloom.New(t.window, 0.01)}
		t.entries[name] = e
	}
	if e.count >= t.window {
		// Keep only "the most current" commit times: restart the window,
		// seeding the average with the previous estimate so Expect never
		// jumps discontinuously.
		prev := e.sum / time.Duration(e.count)
		e.filter.Reset()
		e.sum = prev
		e.count = 1
		e.filter.Add(t.bucket(prev))
	}
	e.filter.Add(t.bucket(took))
	e.sum += took
	e.count++
}

// Expect returns the expected total execution+validation time for the named
// transaction profile — the value a starting transaction advertises as its
// expected commit time (ETS.c). Profiles without history return the
// fallback.
func (t *Table) Expect(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[name]
	if e == nil || e.count == 0 {
		return t.fallback
	}
	return e.sum / time.Duration(e.count)
}

// Seen reports whether a commit duration close to d (same bucket) has been
// recorded recently for name. It consults the Bloom filter, so it may
// return a false positive but never a false negative within the current
// window.
func (t *Table) Seen(name string, d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[name]
	if e == nil {
		return false
	}
	return e.filter.Contains(t.bucket(d))
}

// Profiles returns the number of distinct transaction profiles recorded.
func (t *Table) Profiles() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
