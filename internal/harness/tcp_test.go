package harness

import (
	"context"
	"testing"
	"time"
)

// TestRunOverTCP runs a small bank cell over real loopback sockets with
// both wire codecs: the harness must produce commits and a clean
// conservation check on either, since the TCP transports are drop-in
// replacements for memnet.
func TestRunOverTCP(t *testing.T) {
	for _, tr := range []string{"tcp", "tcpgob"} {
		tr := tr
		t.Run(tr, func(t *testing.T) {
			t.Parallel()
			res, err := Run(context.Background(), Config{
				Nodes:          3,
				Benchmark:      BenchBank,
				Scheduler:      SchedTFA,
				WorkersPerNode: 2,
				Duration:       150 * time.Millisecond,
				Transport:      tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.CheckErr != nil {
				t.Fatalf("conservation check: %v", res.CheckErr)
			}
			if res.Metrics.Commits == 0 {
				t.Fatal("no commits over TCP")
			}
		})
	}
}

// TestTCPRejectsFaults: fault injection is a memnet feature; a TCP config
// asking for it must fail fast instead of silently running lossless.
func TestTCPRejectsFaults(t *testing.T) {
	_, err := Run(context.Background(), Config{Transport: "tcp", Drop: 0.1})
	if err == nil {
		t.Fatal("faulty TCP config accepted")
	}
}

// TestUnknownTransport: typos must not fall back to memnet silently.
func TestUnknownTransport(t *testing.T) {
	_, err := Run(context.Background(), Config{Transport: "udp"})
	if err == nil {
		t.Fatal("unknown transport accepted")
	}
}
