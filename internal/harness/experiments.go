package harness

import (
	"context"
	"fmt"
	"strings"

	"dstm/internal/stm"
)

// Contention names the paper's two workload mixes.
type Contention string

// Paper §IV-A: low contention = 90 % read transactions, high = 10 %.
const (
	Low  Contention = "Low"
	High Contention = "High"
)

// ReadRatio returns the read fraction for a contention level.
func (c Contention) ReadRatio() float64 {
	if c == Low {
		return 0.9
	}
	return 0.1
}

// BenchmarkLabel renders the paper's display name for a kind.
func BenchmarkLabel(k BenchmarkKind) string {
	switch k {
	case BenchVacation:
		return "Vacation"
	case BenchBank:
		return "Bank"
	case BenchList:
		return "Linked List"
	case BenchRBTree:
		return "RB Tree"
	case BenchBST:
		return "BST"
	case BenchDHT:
		return "DHT"
	default:
		return string(k)
	}
}

// MetricsTable renders one result's outcome breakdown: commits, the
// per-cause abort counts, and each outcome's attempt-latency histogram
// (count, mean and tail quantiles), so time lost per abort cause is
// visible next to its frequency.
func (r Result) MetricsTable() string {
	var b strings.Builder
	m := r.Metrics
	fmt.Fprintf(&b, "%-22s %8d   %.1f tx/s   [%s]\n",
		"commit", m.Commits, r.Throughput(), m.Latency[stm.LatencyCommitKey])
	for _, c := range stm.AbortCauses() {
		if m.Aborts[c] == 0 && m.Latency[c.String()].Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-22s %8d   [%s]\n", "abort:"+c.String(), m.Aborts[c], m.Latency[c.String()])
	}
	fmt.Fprintf(&b, "%-22s %8d   pushes %d  retrieves %d  lease-expiries %d\n",
		"enqueues", m.Enqueues, m.Pushes, m.Retrieves, m.LeaseExpiries)
	fmt.Fprintf(&b, "%-22s %8d   nested-own %d  nested-parent %d (rate %.1f%%)\n",
		"nested-commits", m.NestedCommits, m.NestedOwn, m.NestedParent, 100*m.NestedAbortRate())
	fmt.Fprintf(&b, "%-22s %8d   rounds %d  msgs/commit %.1f  rounds/commit %.1f\n",
		"commit-msgs", m.CommitMsgs, m.CommitRounds, m.MsgsPerCommit(), m.RoundsPerCommit())
	if r.Config.Trace {
		fmt.Fprintf(&b, "%-22s %8d   dropped %d  protocol-check %s\n",
			"trace-events", r.TraceEvents, r.TraceDropped, errLabel(r.ProtocolErr))
	}
	return b.String()
}

func errLabel(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

// ---------------------------------------------------------------------------
// Table I — abort rate of nested transactions.

// Table1Row is one benchmark's row: the fraction of nested-transaction
// aborts caused by a parent abort, for RTS and TFA at both contention
// levels.
type Table1Row struct {
	Benchmark                        BenchmarkKind
	LowRTS, LowTFA, HighRTS, HighTFA float64
}

// Table1 is the full table.
type Table1 struct {
	Rows []Table1Row
}

// RunTable1 reproduces Table I: for each benchmark and contention level it
// measures the nested abort rate under RTS and under plain TFA.
func RunTable1(ctx context.Context, base Config, benches []BenchmarkKind) (Table1, error) {
	if len(benches) == 0 {
		benches = Benchmarks
	}
	var out Table1
	for _, b := range benches {
		row := Table1Row{Benchmark: b}
		for _, cont := range []Contention{Low, High} {
			for _, s := range []Scheduler{SchedRTS, SchedTFA} {
				cfg := base
				cfg.Benchmark = b
				cfg.Scheduler = s
				cfg.ReadRatio = cont.ReadRatio()
				res, err := Run(ctx, cfg)
				if err != nil {
					return Table1{}, err
				}
				if res.CheckErr != nil {
					return Table1{}, fmt.Errorf("harness: %s invariant: %w", b, res.CheckErr)
				}
				if res.ProtocolErr != nil {
					return Table1{}, fmt.Errorf("harness: %s protocol trace: %w", b, res.ProtocolErr)
				}
				rate := res.NestedAbortRate()
				switch {
				case cont == Low && s == SchedRTS:
					row.LowRTS = rate
				case cont == Low && s == SchedTFA:
					row.LowTFA = rate
				case cont == High && s == SchedRTS:
					row.HighRTS = rate
				default:
					row.HighTFA = rate
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format renders the table in the paper's layout.
func (t Table1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Abort rate of nested transactions (parent-caused / total)\n")
	fmt.Fprintf(&b, "%-12s | %-17s | %-17s\n", "", "Low Contention", "High Contention")
	fmt.Fprintf(&b, "%-12s | %7s  %7s | %7s  %7s\n", "Benchmark", "RTS", "TFA", "RTS", "TFA")
	fmt.Fprintln(&b, strings.Repeat("-", 54))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s | %6.1f%%  %6.1f%% | %6.1f%%  %6.1f%%\n",
			BenchmarkLabel(r.Benchmark),
			100*r.LowRTS, 100*r.LowTFA, 100*r.HighRTS, 100*r.HighTFA)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 4 & 5 — throughput vs node count, per benchmark and scheduler.

// SweepPoint is one node count's throughput per scheduler.
type SweepPoint struct {
	Nodes      int
	Throughput map[Scheduler]float64
}

// Sweep is one benchmark's curve set (one sub-figure of Fig. 4/5).
type Sweep struct {
	Benchmark  BenchmarkKind
	Contention Contention
	Points     []SweepPoint
}

// RunThroughputSweep reproduces one sub-figure: throughput of the three
// schedulers across nodeCounts at the given contention.
func RunThroughputSweep(ctx context.Context, base Config, bench BenchmarkKind,
	cont Contention, nodeCounts []int) (Sweep, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{10, 20, 30, 40, 50, 60, 70, 80}
	}
	sw := Sweep{Benchmark: bench, Contention: cont}
	for _, n := range nodeCounts {
		pt := SweepPoint{Nodes: n, Throughput: make(map[Scheduler]float64, len(Schedulers))}
		for _, s := range Schedulers {
			cfg := base
			cfg.Benchmark = bench
			cfg.Scheduler = s
			cfg.ReadRatio = cont.ReadRatio()
			cfg.Nodes = n
			res, err := Run(ctx, cfg)
			if err != nil {
				return Sweep{}, err
			}
			if res.CheckErr != nil {
				return Sweep{}, fmt.Errorf("harness: %s invariant: %w", bench, res.CheckErr)
			}
			if res.ProtocolErr != nil {
				return Sweep{}, fmt.Errorf("harness: %s protocol trace: %w", bench, res.ProtocolErr)
			}
			pt.Throughput[s] = res.Throughput()
		}
		sw.Points = append(sw.Points, pt)
	}
	return sw, nil
}

// Format renders the sweep as the figure's data series.
func (s Sweep) Format() string {
	var b strings.Builder
	fig := "Figure 4"
	if s.Contention == High {
		fig = "Figure 5"
	}
	fmt.Fprintf(&b, "%s: %s in %s Contention (throughput, txns/sec)\n",
		fig, BenchmarkLabel(s.Benchmark), s.Contention)
	fmt.Fprintf(&b, "%-6s", "Nodes")
	for _, sc := range Schedulers {
		fmt.Fprintf(&b, " %12s", sc)
	}
	fmt.Fprintln(&b)
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%-6d", pt.Nodes)
		for _, sc := range Schedulers {
			fmt.Fprintf(&b, " %12.1f", pt.Throughput[sc])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 6 — summary of throughput speedup.

// SpeedupRow is one benchmark's RTS speedup over each competitor at both
// contention levels (the four bars of Fig. 6).
type SpeedupRow struct {
	Benchmark                                BenchmarkKind
	TFALow, BackoffLow, TFAHigh, BackoffHigh float64
}

// RunSpeedupSummary reproduces Figure 6 at a fixed node count: the ratio of
// RTS's throughput to TFA's and to TFA+Backoff's, at low and high
// contention, for each benchmark.
func RunSpeedupSummary(ctx context.Context, base Config, benches []BenchmarkKind) ([]SpeedupRow, error) {
	if len(benches) == 0 {
		benches = Benchmarks
	}
	var rows []SpeedupRow
	for _, b := range benches {
		row := SpeedupRow{Benchmark: b}
		for _, cont := range []Contention{Low, High} {
			tp := make(map[Scheduler]float64, len(Schedulers))
			for _, s := range Schedulers {
				cfg := base
				cfg.Benchmark = b
				cfg.Scheduler = s
				cfg.ReadRatio = cont.ReadRatio()
				res, err := Run(ctx, cfg)
				if err != nil {
					return nil, err
				}
				if res.CheckErr != nil {
					return nil, fmt.Errorf("harness: %s invariant: %w", b, res.CheckErr)
				}
				if res.ProtocolErr != nil {
					return nil, fmt.Errorf("harness: %s protocol trace: %w", b, res.ProtocolErr)
				}
				tp[s] = res.Throughput()
			}
			rtsTP := tp[SchedRTS]
			spTFA, spBK := 0.0, 0.0
			if tp[SchedTFA] > 0 {
				spTFA = rtsTP / tp[SchedTFA]
			}
			if tp[SchedBackoff] > 0 {
				spBK = rtsTP / tp[SchedBackoff]
			}
			if cont == Low {
				row.TFALow, row.BackoffLow = spTFA, spBK
			} else {
				row.TFAHigh, row.BackoffHigh = spTFA, spBK
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSpeedup renders Figure 6's bar values.
func FormatSpeedup(rows []SpeedupRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 6: Summary of Throughput Speedup (RTS / competitor)")
	fmt.Fprintf(&b, "%-12s %10s %16s %10s %16s\n",
		"Benchmark", "TFA(Low)", "TFA+Backoff(Low)", "TFA(High)", "TFA+Backoff(High)")
	fmt.Fprintln(&b, strings.Repeat("-", 70))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9.2fx %15.2fx %9.2fx %15.2fx\n",
			BenchmarkLabel(r.Benchmark), r.TFALow, r.BackoffLow, r.TFAHigh, r.BackoffHigh)
	}
	return b.String()
}
