package harness

import (
	"context"
	"testing"
	"time"

	"dstm/internal/workload"
)

// TestSchedulerDifferentiationHotKeyStorm pins the workload regime the
// paper's contribution targets — a write-heavy hot-key storm, where
// nearly every transaction collides on the two rotating hot objects —
// and asserts that RTS actually differentiates from plain TFA there:
// at least as many committed transactions (within a 15% tolerance band)
// and strictly fewer aborts (calibrated runs typically show 3–13× fewer).
//
// Counts are aggregated over five seeds so a single unlucky interleaving
// cannot flip the verdict; the bands are wide enough that the comparison
// is deterministic run-to-run even though the simulated cluster schedules
// real goroutines.
func TestSchedulerDifferentiationHotKeyStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed aggregate cell")
	}
	totals := make(map[Scheduler]struct{ commits, aborts uint64 })
	for _, s := range []Scheduler{SchedRTS, SchedTFA} {
		var commits, aborts uint64
		for seed := int64(1); seed <= 5; seed++ {
			cfg := Config{
				Nodes:          4,
				WorkersPerNode: 3,
				Duration:       150 * time.Millisecond,
				ObjectsPerNode: 4,
				DelayScale:     0.002,
				CLThreshold:    3,
				Benchmark:      BenchBank,
				Scheduler:      s,
				ReadRatio:      0.1, // high contention: 90% writes
				Seed:           seed,
				// Two hot keys take 90% of the draws, rotating every 64
				// draws so the storm sweeps across owners.
				KeySampler: workload.NewHotKeyStorm(2, 0.9, 64),
			}
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.CheckErr != nil {
				t.Fatalf("%s seed %d invariant: %v", s, seed, res.CheckErr)
			}
			commits += res.Metrics.Commits
			aborts += res.Metrics.TotalAborts()
		}
		totals[s] = struct{ commits, aborts uint64 }{commits, aborts}
		t.Logf("%-12s commits=%d aborts=%d", s, commits, aborts)
	}

	rts, tfa := totals[SchedRTS], totals[SchedTFA]
	if rts.commits == 0 || tfa.commits == 0 {
		t.Fatalf("degenerate cell: rts=%+v tfa=%+v", rts, tfa)
	}
	// Completed work: RTS >= TFA, 15% tolerance band.
	if float64(rts.commits) < 0.85*float64(tfa.commits) {
		t.Errorf("RTS committed %d < 0.85 x TFA's %d under hot-key storm",
			rts.commits, tfa.commits)
	}
	// Wasted work: enqueueing at the hot objects must abort strictly less
	// than abort-and-retry.
	if rts.aborts >= tfa.aborts {
		t.Errorf("RTS aborts %d not strictly fewer than TFA aborts %d under hot-key storm",
			rts.aborts, tfa.aborts)
	}
}
