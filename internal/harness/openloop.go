package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dstm/internal/stats"
	"dstm/internal/stm"
	"dstm/internal/workload"
)

// OpenLoopConfig is one open-loop (offered-load) experiment cell. Unlike
// the closed loop of Run — where each worker issues its next transaction
// only after the previous one finishes, so an overloaded scheduler is
// politely offered less work — the open loop admits transactions on the
// Arrival process's schedule regardless of completions. Overload shows up
// as a growing admission queue instead of a sagging offered rate, which
// is the regime where the stability literature (Busch et al., Sharma &
// Busch) separates schedulers.
type OpenLoopConfig struct {
	Config

	// Arrival is the open-loop arrival process (required).
	Arrival workload.Arrival

	// Ops, when positive, switches to fixed-batch mode: exactly Ops
	// arrivals are offered and the run measures the makespan from the
	// first arrival to the last completion. Zero offers arrivals for
	// Config.Duration (windowed mode).
	Ops int

	// MaxPending caps the admission queue; arrivals beyond it are shed
	// (counted, never executed). 0 means 1<<16.
	MaxPending int

	// SampleEvery is the queue-depth sampling period. 0 derives ~48
	// samples from the run window (min 1ms).
	SampleEvery time.Duration

	// Timeout bounds fixed-batch runs in wall-clock time so a diverging
	// cell terminates with incomplete work instead of hanging. 0 means
	// max(10×Duration, 2s).
	Timeout time.Duration
}

func (c OpenLoopConfig) withDefaults() (OpenLoopConfig, error) {
	if c.Arrival == nil {
		return c, fmt.Errorf("harness: open-loop config needs an Arrival process")
	}
	c.Config = c.Config.withDefaults()
	if c.MaxPending <= 0 {
		c.MaxPending = 1 << 16
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = c.Duration / 48
		if c.SampleEvery < time.Millisecond {
			c.SampleEvery = time.Millisecond
		}
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * c.Duration
		if c.Timeout < 2*time.Second {
			c.Timeout = 2 * time.Second
		}
	}
	return c, nil
}

// QueueSample is one point of the queue-depth time series.
type QueueSample struct {
	// TMs is the sample time in milliseconds since the first arrival.
	TMs float64 `json:"t_ms"`
	// Depth is the admission backlog: offered − shed − finished, i.e.
	// transactions waiting in the admission queue or in service.
	Depth int `json:"depth"`
	// SchedDepth is the scheduler-internal queue: requesters parked at
	// owners across every node's policy (0 for the non-queuing baselines).
	SchedDepth int `json:"sched_depth"`
}

// Verdict classifies a cell's queue behaviour.
type Verdict string

// Verdicts. Stable: the system absorbed the offered load (completions
// track arrivals, queue depth flat). Diverging: the queue grew without
// bound or most offered work never completed — the offered rate exceeds
// this scheduler's capacity on this workload. Marginal is the band in
// between (e.g. bursty cells that drain late).
const (
	VerdictStable    Verdict = "stable"
	VerdictMarginal  Verdict = "marginal"
	VerdictDiverging Verdict = "diverging"
)

// OpenLoopResult aggregates one open-loop cell.
type OpenLoopResult struct {
	Config  OpenLoopConfig
	Elapsed time.Duration // first arrival → driver shutdown

	// Makespan is first arrival → last completion (fixed-batch mode
	// only; 0 in windowed mode).
	Makespan time.Duration

	Offered   uint64 // arrivals the process generated
	Shed      uint64 // arrivals dropped: admission queue at MaxPending
	Completed uint64 // ops that finished successfully
	Failed    uint64 // ops that errored for a non-shutdown reason

	Metrics stm.MetricsSnapshot
	// Sojourn is the end-to-end latency histogram: arrival (admission)
	// to completion, queueing included — the open-loop tail the paper's
	// closed-loop throughput numbers cannot show.
	Sojourn stats.HistSnapshot
	Queue   []QueueSample

	CheckErr error

	// Protocol trace verdict (Config.Trace only), as in Result.
	ProtocolErr  error
	TraceEvents  int
	TraceDropped uint64
}

// OfferedRate is the realised offered load in arrivals/sec.
func (r OpenLoopResult) OfferedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Offered) / r.Elapsed.Seconds()
}

// CompletedRate is the completion throughput in ops/sec.
func (r OpenLoopResult) CompletedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// CompletionRatio is completed/offered (1 when nothing was offered).
func (r OpenLoopResult) CompletionRatio() float64 {
	if r.Offered == 0 {
		return 1
	}
	return float64(r.Completed) / float64(r.Offered)
}

// queueGrowth compares the mean total queue depth (admission + scheduler)
// over the last third of the samples against the first third, with
// absolute slack so single-digit depths never count as growth. Returns a
// multiplicative factor >= 1.
func queueGrowth(q []QueueSample) float64 {
	if len(q) < 6 {
		return 1
	}
	third := len(q) / 3
	mean := func(s []QueueSample) float64 {
		var sum float64
		for _, p := range s {
			sum += float64(p.Depth + p.SchedDepth)
		}
		return sum / float64(len(s))
	}
	first, last := mean(q[:third]), mean(q[len(q)-third:])
	if last <= first+4 {
		return 1
	}
	return last / (first + 4)
}

// Verdict classifies the cell: see the Verdict constants. The thresholds
// are deliberately wide apart (0.9/0.6 completion, 2×/4× growth) so the
// verdict is deterministic for a seeded cell comfortably inside either
// regime; cells near the capacity knee report "marginal".
func (r OpenLoopResult) Verdict() Verdict {
	if r.Offered == 0 {
		return VerdictStable
	}
	ratio := r.CompletionRatio()
	growth := queueGrowth(r.Queue)
	switch {
	case ratio < 0.6 || growth >= 4:
		return VerdictDiverging
	case ratio >= 0.9 && growth < 2:
		return VerdictStable
	default:
		return VerdictMarginal
	}
}

// openJob is one admitted arrival awaiting a worker.
type openJob struct {
	arrived time.Time
	seed    int64
}

// RunOpenLoop executes one open-loop cell: it assembles the same cluster
// as Run, seeds the benchmark, then drives arrivals from cfg.Arrival into
// an admission queue consumed by Nodes×WorkersPerNode workers (each
// pinned to its node's runtime). A queue-depth sampler runs alongside;
// the result carries the offered/completed accounting, the depth time
// series, the end-to-end sojourn histogram, and — in fixed-batch mode —
// the makespan.
func RunOpenLoop(ctx context.Context, cfg OpenLoopConfig) (OpenLoopResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return OpenLoopResult{}, err
	}

	c, err := newCell(cfg.Config)
	if err != nil {
		return OpenLoopResult{}, err
	}
	defer c.close()

	bench, err := newBenchmark(cfg.Config)
	if err != nil {
		return OpenLoopResult{}, err
	}
	if err := bench.Setup(ctx, c.rts); err != nil {
		return OpenLoopResult{}, fmt.Errorf("harness: setup: %w", err)
	}
	baseline := aggregate(c.rts)
	c.enableFaults()

	// The run context bounds the workers. Windowed mode closes it at
	// Duration; fixed-batch mode lets the batch drain but caps the wall
	// clock at Timeout so diverging cells terminate.
	window := cfg.Duration
	if cfg.Ops > 0 {
		window = cfg.Timeout
	}
	runCtx, cancel := context.WithTimeout(ctx, window)
	defer cancel()

	var (
		offered, shed, completed, failed atomic.Uint64
		sojourn                          stats.LatencyHist
		lastDone                         atomic.Int64 // ns since start of the latest completion
		firstErr                         error
		errMu                            sync.Mutex
	)
	jobs := make(chan openJob, cfg.MaxPending)
	start := time.Now()

	// Workers: the service side of the queue. Worker w executes on node
	// w%Nodes, so admissions spread round-robin over the cluster.
	var workers sync.WaitGroup
	for w := 0; w < cfg.Nodes*cfg.WorkersPerNode; w++ {
		workers.Add(1)
		go func(rt *stm.Runtime) {
			defer workers.Done()
			for {
				select {
				case <-runCtx.Done():
					return
				case job, ok := <-jobs:
					if !ok {
						return
					}
					rng := rand.New(rand.NewSource(job.seed))
					read := rng.Float64() < cfg.ReadRatio
					if err := bench.Op(runCtx, rt, rng, read); err != nil {
						if isShutdownErr(err) {
							return
						}
						failed.Add(1)
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						continue
					}
					sojourn.Observe(time.Since(job.arrived))
					lastDone.Store(int64(time.Since(start)))
					completed.Add(1)
				}
			}
		}(c.rts[w%cfg.Nodes])
	}

	// Queue-depth sampler.
	var samples []QueueSample
	samplerDone := make(chan struct{})
	sampleCtx, stopSampler := context.WithCancel(ctx)
	defer stopSampler()
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-tick.C:
				depth := int(offered.Load()) - int(shed.Load()) -
					int(completed.Load()) - int(failed.Load())
				if depth < 0 {
					depth = 0
				}
				samples = append(samples, QueueSample{
					TMs:        float64(time.Since(start)) / float64(time.Millisecond),
					Depth:      depth,
					SchedDepth: c.schedQueueDepth(),
				})
			}
		}
	}()

	// The arrival clock. In windowed mode it stops at the deadline; in
	// fixed-batch mode after exactly cfg.Ops admissions.
	arrivalRng := rand.New(rand.NewSource(cfg.Seed ^ 0x0a221ca1))
	arrivalCtx := runCtx
	if cfg.Ops <= 0 {
		// Stop offering at the measurement window even if Timeout > Duration.
		var cancelArr context.CancelFunc
		arrivalCtx, cancelArr = context.WithTimeout(runCtx, cfg.Duration)
		defer cancelArr()
	}
	n := workload.Drive(arrivalCtx, cfg.Arrival, arrivalRng, cfg.Ops, func(i int) bool {
		offered.Add(1)
		job := openJob{arrived: time.Now(), seed: cfg.Seed + int64(i)*7919 + 1}
		select {
		case jobs <- job:
		default:
			shed.Add(1) // queue at MaxPending: the open loop sheds, never blocks
		}
		return true
	})
	_ = n

	if cfg.Ops > 0 {
		// Fixed batch: let the workers drain the queue (bounded by the
		// run context's Timeout), then release them.
		close(jobs)
		workers.Wait()
	} else {
		// Windowed: workers stop at the deadline; pending jobs count as
		// not completed.
		<-runCtx.Done()
		workers.Wait()
	}
	elapsed := time.Since(start)
	stopSampler()
	<-samplerDone

	if firstErr != nil {
		return OpenLoopResult{}, fmt.Errorf("harness: open-loop worker failed: %w", firstErr)
	}

	// Heal before checking invariants, as in Run.
	c.healFaults()

	m := aggregate(c.rts)
	m.Sub(baseline)

	res := OpenLoopResult{
		Config:    cfg,
		Elapsed:   elapsed,
		Offered:   offered.Load(),
		Shed:      shed.Load(),
		Completed: completed.Load(),
		Failed:    failed.Load(),
		Metrics:   m,
		Sojourn:   sojourn.Snapshot(),
		Queue:     samples,
	}
	if cfg.Ops > 0 && res.Completed > 0 {
		res.Makespan = time.Duration(lastDone.Load())
	}

	checkCtx, checkCancel := context.WithTimeout(ctx, 30*time.Second)
	defer checkCancel()
	res.CheckErr = bench.Check(checkCtx, c.rts[0])

	if cfg.Trace {
		if err := c.finishTrace(&res.TraceEvents, &res.TraceDropped, &res.ProtocolErr); err != nil {
			return res, err
		}
	}
	return res, nil
}
