package harness

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dstm/internal/apps/bank"
	"dstm/internal/cluster"
	"dstm/internal/core"
	"dstm/internal/stats"
	"dstm/internal/stm"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

// TestShutdownLeavesCleanState is a regression test for a family of
// shutdown bugs: cancelling workers mid-transaction used to leave orphaned
// commit locks behind (lost acquire replies; releases issued on
// already-dead contexts; conservative releases mis-treating node 0 as "no
// owner"), permanently wedging the cluster — every later reader was denied
// forever. Each iteration runs a short contended workload, then verifies
// that no commit locks survive, ownership is single, and the invariant
// check completes promptly.
func TestShutdownLeavesCleanState(t *testing.T) {
	const iterations = 12
	for iter := 0; iter < iterations; iter++ {
		cfg := Config{
			Nodes:          3,
			WorkersPerNode: 2,
			Duration:       60 * time.Millisecond,
			ObjectsPerNode: 4,
			DelayScale:     0.002,
			Seed:           int64(iter + 1),
		}.withDefaults()

		lat := transport.MetricLatency{Min: cfg.LatMin, Max: cfg.LatMax,
			Scale: cfg.DelayScale, Seed: uint64(cfg.Seed)}
		net := transport.NewNetwork(lat)
		rts := make([]*stm.Runtime, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			st := stats.NewTable(time.Millisecond)
			pol := core.New(core.Options{CLThreshold: cfg.CLThreshold, CLWindow: cfg.CLWindow})
			ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), &vclock.Clock{})
			rts[i] = stm.NewRuntime(ep, cfg.Nodes, pol, st)
		}
		b := bank.New(bank.Options{AccountsPerNode: cfg.ObjectsPerNode})
		ctx := context.Background()
		if err := b.Setup(ctx, rts); err != nil {
			t.Fatal(err)
		}

		runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
		var wg sync.WaitGroup
		for n := 0; n < cfg.Nodes; n++ {
			for w := 0; w < cfg.WorkersPerNode; w++ {
				wg.Add(1)
				go func(rt *stm.Runtime, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for runCtx.Err() == nil {
						_ = b.Op(runCtx, rt, rng, rng.Float64() < 0.5)
					}
				}(rts[n], cfg.Seed+int64(n*1000+w))
			}
		}
		wg.Wait()
		cancel()

		// In-flight stale messages settle within a few link delays.
		time.Sleep(10 * time.Millisecond)

		// No object may remain commit-locked once all workers are gone,
		// and exactly one node owns each object.
		for i := 0; i < b.Accounts(); i++ {
			oid := bank.AccountID(i)
			owners := 0
			for n, rt := range rts {
				if !rt.Store().Owns(oid) {
					continue
				}
				owners++
				if _, lockedBy, _ := rt.Store().State(oid); lockedBy != 0 {
					t.Fatalf("iter %d: %s orphan-locked by %x at node %d", iter, oid, lockedBy, n)
				}
			}
			if owners != 1 {
				t.Fatalf("iter %d: %s owned by %d nodes, want exactly 1", iter, oid, owners)
			}
		}

		checkCtx, ccancel := context.WithTimeout(ctx, 5*time.Second)
		err := b.Check(checkCtx, rts[0])
		ccancel()
		if err != nil {
			t.Fatalf("iter %d: invariant check wedged or failed: %v", iter, err)
		}
		net.Close()
	}
}
