package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"dstm/internal/cluster"
)

// quickCfg is a small, fast experiment cell for tests.
func quickCfg() Config {
	return Config{
		Nodes:          3,
		WorkersPerNode: 2,
		Duration:       80 * time.Millisecond,
		ObjectsPerNode: 4,
		DelayScale:     0.002, // 1–50ms → 2–100µs
	}
}

func TestRunDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Nodes <= 0 || cfg.WorkersPerNode <= 0 || cfg.Duration <= 0 ||
		cfg.ObjectsPerNode <= 0 || cfg.DelayScale <= 0 || cfg.CLThreshold <= 0 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestRunProducesCommits(t *testing.T) {
	for _, s := range Schedulers {
		s := s
		t.Run(string(s), func(t *testing.T) {
			cfg := quickCfg()
			cfg.Scheduler = s
			cfg.Benchmark = BenchBank
			cfg.ReadRatio = 0.5
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.Commits == 0 {
				t.Fatal("no commits recorded")
			}
			if res.Throughput() <= 0 {
				t.Fatal("zero throughput")
			}
			if res.CheckErr != nil {
				t.Fatalf("invariant: %v", res.CheckErr)
			}
		})
	}
}

func TestRunAllBenchmarks(t *testing.T) {
	for _, b := range Benchmarks {
		b := b
		t.Run(string(b), func(t *testing.T) {
			cfg := quickCfg()
			cfg.Benchmark = b
			cfg.Scheduler = SchedRTS
			cfg.ReadRatio = 0.5
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.Commits == 0 {
				t.Fatalf("no commits for %s", b)
			}
			if res.CheckErr != nil {
				t.Fatalf("invariant: %v", res.CheckErr)
			}
		})
	}
}

func TestUnknownBenchmarkAndScheduler(t *testing.T) {
	cfg := quickCfg()
	cfg.Benchmark = "nope"
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	cfg = quickCfg()
	cfg.Scheduler = "nope"
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestContentionReadRatios(t *testing.T) {
	if Low.ReadRatio() != 0.9 || High.ReadRatio() != 0.1 {
		t.Fatalf("read ratios: %v %v", Low.ReadRatio(), High.ReadRatio())
	}
}

func TestTable1SmallRun(t *testing.T) {
	cfg := quickCfg()
	tbl, err := RunTable1(context.Background(), cfg, []BenchmarkKind{BenchBank, BenchDHT})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		for _, v := range []float64{r.LowRTS, r.LowTFA, r.HighRTS, r.HighTFA} {
			if v < 0 || v > 1 {
				t.Fatalf("rate %v out of [0,1]: %+v", v, r)
			}
		}
	}
	out := tbl.Format()
	if !strings.Contains(out, "Bank") || !strings.Contains(out, "DHT") {
		t.Fatalf("format missing rows:\n%s", out)
	}
}

func TestThroughputSweepSmallRun(t *testing.T) {
	cfg := quickCfg()
	sw, err := RunThroughputSweep(context.Background(), cfg, BenchDHT, Low, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("points = %d", len(sw.Points))
	}
	for _, pt := range sw.Points {
		for _, s := range Schedulers {
			if pt.Throughput[s] <= 0 {
				t.Fatalf("zero throughput for %s at %d nodes", s, pt.Nodes)
			}
		}
	}
	out := sw.Format()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "DHT") {
		t.Fatalf("format:\n%s", out)
	}
	swHigh := Sweep{Benchmark: BenchBank, Contention: High}
	if !strings.Contains(swHigh.Format(), "Figure 5") {
		t.Fatal("high-contention sweep must label itself Figure 5")
	}
}

func TestSpeedupSummarySmallRun(t *testing.T) {
	cfg := quickCfg()
	rows, err := RunSpeedupSummary(context.Background(), cfg, []BenchmarkKind{BenchDHT})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	for _, v := range []float64{r.TFALow, r.BackoffLow, r.TFAHigh, r.BackoffHigh} {
		if v <= 0 {
			t.Fatalf("speedup %v not positive: %+v", v, r)
		}
	}
	out := FormatSpeedup(rows)
	if !strings.Contains(out, "Figure 6") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestBenchmarkLabels(t *testing.T) {
	want := map[BenchmarkKind]string{
		BenchVacation: "Vacation",
		BenchBank:     "Bank",
		BenchList:     "Linked List",
		BenchRBTree:   "RB Tree",
		BenchBST:      "BST",
		BenchDHT:      "DHT",
		"x":           "x",
	}
	for k, w := range want {
		if got := BenchmarkLabel(k); got != w {
			t.Fatalf("label(%s) = %q, want %q", k, got, w)
		}
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	cfg := quickCfg()
	cfg.Benchmark = BenchBank
	cfg.ReadRatio = 0.5
	cfg.Duration = 400 * time.Millisecond
	cfg.Drop = 0.1
	cfg.Duplicate = 0.05
	cfg.Reorder = 0.05
	cfg.MaxExtraDelay = time.Millisecond
	cfg.LockLease = 5 * time.Second
	cfg.CallRetry = cluster.RetryPolicy{
		PerTryTimeout: 30 * time.Millisecond,
		BaseBackoff:   2 * time.Millisecond,
		MaxBackoff:    20 * time.Millisecond,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Commits == 0 {
		t.Fatal("no commits under 10% message loss")
	}
	if res.CheckErr != nil {
		t.Fatalf("invariant broken under faults: %v", res.CheckErr)
	}
}
