package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"dstm/internal/workload"
)

// quickOpenCfg is a small open-loop cell for tests: a light constant rate
// any scheduler absorbs easily.
func quickOpenCfg() OpenLoopConfig {
	cfg := quickCfg()
	cfg.Benchmark = BenchBank
	cfg.Scheduler = SchedRTS
	cfg.ReadRatio = 0.5
	cfg.Seed = 11
	return OpenLoopConfig{
		Config:  cfg,
		Arrival: workload.NewConstant(400),
	}
}

func TestOpenLoopRequiresArrival(t *testing.T) {
	cfg := quickOpenCfg()
	cfg.Arrival = nil
	if _, err := RunOpenLoop(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "Arrival") {
		t.Fatalf("want missing-arrival error, got %v", err)
	}
}

func TestOpenLoopStableCell(t *testing.T) {
	res, err := RunOpenLoop(context.Background(), quickOpenCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if res.Completed == 0 {
		t.Fatal("no ops completed")
	}
	if res.CheckErr != nil {
		t.Fatalf("invariant: %v", res.CheckErr)
	}
	// No verdict assertion here: a fixed 80ms window under a CPU-starved
	// test machine (the whole suite runs packages in parallel) can
	// legitimately leave offered work unserved. The verdict is asserted
	// in TestOpenLoopFixedBatchMakespan, where the drain timeout makes
	// completion load-independent.
	if len(res.Queue) == 0 {
		t.Fatal("no queue-depth samples")
	}
	if res.Sojourn.Count() == 0 {
		t.Fatal("empty sojourn histogram")
	}
	if p50, p999 := res.Sojourn.Quantile(0.5), res.Sojourn.Quantile(0.999); p50 <= 0 || p999 < p50 {
		t.Fatalf("bad quantiles: p50=%v p999=%v", p50, p999)
	}
	if res.Makespan != 0 {
		t.Fatalf("windowed mode reported a makespan: %v", res.Makespan)
	}
}

func TestOpenLoopFixedBatchMakespan(t *testing.T) {
	cfg := quickOpenCfg()
	cfg.Ops = 150
	cfg.Arrival = workload.NewPoisson(3000)
	// Generous drain bound: even a CPU-starved test machine completes the
	// batch, so the stable verdict below is deterministic.
	cfg.Timeout = 10 * time.Second
	res, err := RunOpenLoop(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 150 {
		t.Fatalf("offered %d, want exactly 150", res.Offered)
	}
	if v := res.Verdict(); v != VerdictStable {
		t.Fatalf("drained batch not stable: %s (offered=%d shed=%d completed=%d failed=%d)",
			v, res.Offered, res.Shed, res.Completed, res.Failed)
	}
	if res.Completed+res.Failed+res.Shed != res.Offered {
		t.Fatalf("batch not drained: offered=%d completed=%d failed=%d shed=%d",
			res.Offered, res.Completed, res.Failed, res.Shed)
	}
	if res.Makespan <= 0 {
		t.Fatal("fixed-batch run reported no makespan")
	}
	if res.Makespan > res.Elapsed {
		t.Fatalf("makespan %v exceeds elapsed %v", res.Makespan, res.Elapsed)
	}
	if res.CheckErr != nil {
		t.Fatalf("invariant: %v", res.CheckErr)
	}
}

func TestOpenLoopShedsAtMaxPending(t *testing.T) {
	// One worker, arrivals far beyond its service rate, a tiny admission
	// queue: the overflow must be shed, never block the arrival clock.
	cfg := quickOpenCfg()
	cfg.Nodes = 1
	cfg.WorkersPerNode = 1
	cfg.MaxPending = 4
	cfg.Duration = 60 * time.Millisecond
	cfg.Arrival = workload.NewConstant(50000)
	res, err := RunOpenLoop(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("no arrivals shed at MaxPending=4 (offered=%d completed=%d)",
			res.Offered, res.Completed)
	}
	if res.Offered < res.Shed+res.Completed {
		t.Fatalf("accounting broken: offered=%d shed=%d completed=%d",
			res.Offered, res.Shed, res.Completed)
	}
}

func TestOpenLoopZipfSampler(t *testing.T) {
	cfg := quickOpenCfg()
	cfg.KeySampler = workload.NewZipf(0.9)
	res, err := RunOpenLoop(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions under zipf sampler")
	}
	if res.CheckErr != nil {
		t.Fatalf("invariant violated under skew: %v", res.CheckErr)
	}
}

// Verdict classification is pure arithmetic over the result, so it is
// tested synthetically — no timing involved.
func TestVerdictClassification(t *testing.T) {
	flat := make([]QueueSample, 48)
	for i := range flat {
		flat[i] = QueueSample{TMs: float64(i), Depth: 2}
	}
	growing := make([]QueueSample, 48)
	for i := range growing {
		growing[i] = QueueSample{TMs: float64(i), Depth: 10 * i}
	}
	cases := []struct {
		name               string
		offered, completed uint64
		queue              []QueueSample
		want               Verdict
	}{
		{"empty run", 0, 0, nil, VerdictStable},
		{"all done flat queue", 1000, 1000, flat, VerdictStable},
		{"all done no samples", 1000, 980, nil, VerdictStable},
		{"low completion", 1000, 400, flat, VerdictDiverging},
		{"queue blow-up", 1000, 950, growing, VerdictDiverging},
		{"middling completion", 1000, 750, flat, VerdictMarginal},
	}
	for _, c := range cases {
		r := OpenLoopResult{Offered: c.offered, Completed: c.completed, Queue: c.queue}
		if got := r.Verdict(); got != c.want {
			t.Errorf("%s: verdict %q, want %q", c.name, got, c.want)
		}
	}
}

func TestQueueGrowthSlack(t *testing.T) {
	// Depths within the absolute slack never count as growth, however
	// large the ratio would be (0 → 5 is noise, not divergence).
	small := make([]QueueSample, 12)
	for i := range small {
		small[i] = QueueSample{Depth: i / 3}
	}
	if g := queueGrowth(small); g != 1 {
		t.Fatalf("single-digit depths reported growth %v", g)
	}
	// SchedDepth counts toward the trajectory too.
	sched := make([]QueueSample, 12)
	for i := range sched {
		sched[i] = QueueSample{SchedDepth: 30 * i}
	}
	if g := queueGrowth(sched); g < 4 {
		t.Fatalf("scheduler-queue blow-up invisible: growth %v", g)
	}
}
