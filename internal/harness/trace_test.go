package harness

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dstm/internal/cluster"
	"dstm/internal/stm"
	"dstm/internal/trace"
	"dstm/internal/trace/check"
)

// traceCfg is quickCfg with protocol tracing on: a ring large enough that
// nothing wraps (dropped events downgrade the checker), and a slightly
// longer window so every protocol path — enqueue, park, push, hand-off,
// forward — actually fires.
func traceCfg() Config {
	cfg := quickCfg()
	cfg.Trace = true
	cfg.TraceCap = 1 << 19
	cfg.Duration = 120 * time.Millisecond
	cfg.WorkersPerNode = 4
	cfg.ReadRatio = 0.5
	return cfg
}

// requireCleanTrace asserts the run produced a complete trace that the
// protocol oracle accepts.
func requireCleanTrace(t *testing.T, res Result) {
	t.Helper()
	if res.TraceEvents == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	if res.TraceDropped != 0 {
		t.Fatalf("ring wrapped (%d events dropped) — raise TraceCap so the full check runs", res.TraceDropped)
	}
	if res.ProtocolErr != nil {
		t.Fatalf("protocol check failed over %d events:\n%v", res.TraceEvents, res.ProtocolErr)
	}
	t.Logf("protocol check ok over %d events", res.TraceEvents)
}

// TestProtocolTraceCleanAllBenchmarks replays every benchmark's merged
// event trace through the protocol oracle on a reliable network: all six
// must satisfy lock exclusion, forwarding monotonicity, the hand-off head
// rule, park closure and reply correlation.
func TestProtocolTraceCleanAllBenchmarks(t *testing.T) {
	for _, b := range Benchmarks {
		b := b
		t.Run(string(b), func(t *testing.T) {
			t.Parallel()
			cfg := traceCfg()
			cfg.Benchmark = b
			cfg.Scheduler = SchedRTS
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.Commits == 0 {
				t.Fatal("no commits")
			}
			if res.CheckErr != nil {
				t.Fatalf("invariant: %v", res.CheckErr)
			}
			requireCleanTrace(t, res)
		})
	}
}

// TestProtocolTraceLossyAllBenchmarks repeats the oracle check under the
// chaos fault model (15% drop plus duplication and reordering, with the
// lock-lease reaper armed): message loss may change WHICH protocol events
// occur — timeouts instead of pushes, lease expiries instead of unlocks —
// but never in an order the invariants forbid.
func TestProtocolTraceLossyAllBenchmarks(t *testing.T) {
	for _, b := range Benchmarks {
		b := b
		t.Run(string(b), func(t *testing.T) {
			t.Parallel()
			cfg := traceCfg()
			cfg.Benchmark = b
			cfg.Scheduler = SchedRTS
			cfg.Duration = 300 * time.Millisecond
			cfg.Drop = 0.15
			cfg.Duplicate = 0.05
			cfg.Reorder = 0.05
			cfg.MaxExtraDelay = time.Millisecond
			cfg.LockLease = 2 * time.Second
			cfg.CallRetry = cluster.RetryPolicy{
				PerTryTimeout: 30 * time.Millisecond,
				BaseBackoff:   2 * time.Millisecond,
				MaxBackoff:    20 * time.Millisecond,
			}
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.Commits == 0 {
				t.Fatal("no commits under 15% loss")
			}
			if res.CheckErr != nil {
				t.Fatalf("invariant: %v", res.CheckErr)
			}
			requireCleanTrace(t, res)
		})
	}
}

// TestProtocolTraceAllSchedulers runs the oracle under each scheduler: TFA
// and TFA+Backoff never enqueue, so their traces exercise the lock and
// forwarding invariants without the queue model.
func TestProtocolTraceAllSchedulers(t *testing.T) {
	for _, s := range Schedulers {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			cfg := traceCfg()
			cfg.Benchmark = BenchBank
			cfg.Scheduler = s
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireCleanTrace(t, res)
		})
	}
}

// TestProtocolTraceExport round-trips the exported JSONL: reading the file
// back must yield the same number of events and the same (clean) verdict
// the in-process check produced.
func TestProtocolTraceExport(t *testing.T) {
	cfg := traceCfg()
	cfg.Benchmark = BenchBank
	cfg.Scheduler = SchedRTS
	cfg.TracePath = filepath.Join(t.TempDir(), "trace.jsonl")
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireCleanTrace(t, res)

	f, err := os.Open(cfg.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.TraceEvents {
		t.Fatalf("file has %d events, run reported %d", len(events), res.TraceEvents)
	}
	if err := check.Run(events, check.Options{}).Err(); err != nil {
		t.Fatalf("re-checking the exported trace failed: %v", err)
	}
}

// TestProtocolTraceTruncated forces ring wrap with a tiny capacity: the
// run must report the drop and the checker must downgrade to the
// truncated-trace invariants instead of emitting false violations from the
// missing prefix.
func TestProtocolTraceTruncated(t *testing.T) {
	cfg := traceCfg()
	cfg.Benchmark = BenchBank
	cfg.Scheduler = SchedRTS
	cfg.TraceCap = 64
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceDropped == 0 {
		t.Fatal("64-event rings did not wrap — truncation path untested")
	}
	if res.ProtocolErr != nil {
		t.Fatalf("truncated check must not report stateful violations: %v", res.ProtocolErr)
	}
}

// TestMetricsTableRendersBreakdown pins the Result output surface: the
// per-cause abort breakdown with latency histograms, and the trace verdict
// line when tracing is on.
func TestMetricsTableRendersBreakdown(t *testing.T) {
	cfg := traceCfg()
	cfg.Benchmark = BenchBank
	cfg.Scheduler = SchedRTS
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.MetricsTable()
	if !strings.Contains(out, "commit") || !strings.Contains(out, "tx/s") {
		t.Fatalf("no commit line:\n%s", out)
	}
	if !strings.Contains(out, "mean=") {
		t.Fatalf("no latency histogram rendered:\n%s", out)
	}
	if !strings.Contains(out, "trace-events") || !strings.Contains(out, "protocol-check ok") {
		t.Fatalf("no trace verdict line:\n%s", out)
	}
	// Every abort cause that occurred must have its own labelled line.
	for c, n := range res.Metrics.Aborts {
		if n > 0 && !strings.Contains(out, "abort:"+c.String()) {
			t.Fatalf("cause %s (count %d) missing from:\n%s", c, n, out)
		}
	}
	if res.Metrics.Latency[stm.LatencyCommitKey].Count() != res.Metrics.Commits {
		t.Fatalf("commit latency count %d != commits %d",
			res.Metrics.Latency[stm.LatencyCommitKey].Count(), res.Metrics.Commits)
	}
}
