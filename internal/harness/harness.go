// Package harness runs the paper's experiments: it assembles a simulated
// cluster (nodes, latency model, scheduler), drives one of the six
// benchmarks with a configurable read ratio and per-node concurrency,
// and aggregates transaction metrics into throughput and abort-rate
// results — the raw material for Table I and Figures 4–6.
package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"dstm/internal/apps"
	"dstm/internal/apps/bank"
	"dstm/internal/apps/bst"
	"dstm/internal/apps/dht"
	"dstm/internal/apps/list"
	"dstm/internal/apps/rbtree"
	"dstm/internal/apps/vacation"
	"dstm/internal/cluster"
	"dstm/internal/core"
	"dstm/internal/sched"
	"dstm/internal/stats"
	"dstm/internal/stm"
	"dstm/internal/trace"
	"dstm/internal/trace/check"
	"dstm/internal/transport"
	"dstm/internal/vclock"
	"dstm/internal/workload"
)

// Scheduler selects the transactional scheduler under test.
type Scheduler string

// The three schedulers the paper compares.
const (
	SchedRTS     Scheduler = "RTS"
	SchedTFA     Scheduler = "TFA"
	SchedBackoff Scheduler = "TFA+Backoff"
)

// Schedulers lists them in the paper's reporting order.
var Schedulers = []Scheduler{SchedRTS, SchedTFA, SchedBackoff}

// BenchmarkKind selects the application.
type BenchmarkKind string

// The six benchmarks, in the paper's reporting order.
const (
	BenchVacation BenchmarkKind = "vacation"
	BenchBank     BenchmarkKind = "bank"
	BenchList     BenchmarkKind = "ll"
	BenchRBTree   BenchmarkKind = "rbtree"
	BenchBST      BenchmarkKind = "bst"
	BenchDHT      BenchmarkKind = "dht"
)

// Benchmarks lists all six in reporting order.
var Benchmarks = []BenchmarkKind{BenchVacation, BenchBank, BenchList, BenchRBTree, BenchBST, BenchDHT}

// Config is one experiment cell.
type Config struct {
	Nodes          int
	Scheduler      Scheduler
	Benchmark      BenchmarkKind
	ReadRatio      float64       // 0.9 = paper's low contention, 0.1 = high
	WorkersPerNode int           // concurrent transactions per node
	Duration       time.Duration // measurement window
	ObjectsPerNode int           // paper: 5–10

	// Link latency band (paper: 1–50 ms) and the scale factor applied to
	// it so sweeps run quickly on one machine.
	LatMin, LatMax time.Duration
	DelayScale     float64

	// RTS knobs.
	CLThreshold int
	AdaptiveCL  bool
	CLWindow    time.Duration

	// FlatNesting inlines inner atomic blocks into their parents (the
	// paper's flat-nesting contrast case) instead of closed nesting.
	FlatNesting bool

	// Fault injection. The rates configure a seeded transport.FaultModel
	// installed after benchmark setup (setup always runs reliably); zero
	// rates keep the lossless network the paper assumes. See DESIGN.md
	// "Fault model".
	Drop          float64
	Duplicate     float64
	Reorder       float64
	MaxExtraDelay time.Duration

	// LockLease, when positive, starts each node's lock-lease reaper so a
	// crashed or wedged committer cannot block an object forever.
	LockLease time.Duration

	// Trace enables protocol event tracing on every node (from before
	// setup, so the checker sees complete state) and replays the merged
	// log through the trace/check oracle after the run; the verdict lands
	// in Result.ProtocolErr. TraceCap sets each node's ring capacity
	// (0 = trace.DefaultCapacity); if any ring wraps, the stateful
	// invariants are skipped (see trace/check Options.Truncated).
	// TracePath, when non-empty, writes the merged trace there as JSONL.
	Trace     bool
	TraceCap  int
	TracePath string

	// CallRetry overrides the RPC retry policy on every endpoint. The zero
	// value keeps cluster.DefaultRetryPolicy. Lossy configs should shorten
	// PerTryTimeout so retransmissions track the (scaled) link delays.
	CallRetry cluster.RetryPolicy

	// ROReads routes the benchmarks' read-only transactions (AtomicRead)
	// onto the MVCC snapshot path: no locks, no validation round, no
	// scheduler entry, one snapshot-read RPC per remote owner. Off keeps
	// the pre-MVCC behaviour where AtomicRead is a plain ownership-protocol
	// transaction — the readscale experiment's baseline arm.
	ROReads bool

	// ReplicaLease, when positive, enables the requester-side replica cache
	// for read-write transactions with the given lease: remote reads serve
	// from the cache and are version-validated at commit.
	ReplicaLease time.Duration

	// KeySampler replaces the benchmark's uniform key draws (Zipfian skew,
	// hot-key storms — see internal/workload). nil keeps the benchmark's
	// default uniform distribution.
	KeySampler workload.KeySampler

	// Transport selects the message fabric: "memnet" (default, the
	// in-process latency-model network), "tcp" (real loopback sockets with
	// the binary wire codec), or "tcpgob" (loopback sockets with the legacy
	// gob codec — the wire benchmark's measured baseline). Fault injection
	// and the latency model require memnet.
	Transport string

	Seed int64
}

// faulty reports whether any fault-injection rate is set.
func (c Config) faulty() bool {
	return c.Drop > 0 || c.Duplicate > 0 || c.Reorder > 0
}

// withDefaults fills zero fields with usable values.
func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedRTS
	}
	if c.Benchmark == "" {
		c.Benchmark = BenchBank
	}
	if c.ReadRatio <= 0 {
		c.ReadRatio = 0.9
	}
	if c.WorkersPerNode <= 0 {
		c.WorkersPerNode = 8
	}
	if c.Duration <= 0 {
		c.Duration = 200 * time.Millisecond
	}
	if c.ObjectsPerNode <= 0 {
		c.ObjectsPerNode = 8
	}
	if c.LatMin <= 0 {
		c.LatMin = time.Millisecond
	}
	if c.LatMax <= 0 {
		c.LatMax = 50 * time.Millisecond
	}
	if c.DelayScale <= 0 {
		// 1–50 ms compressed to 10–500 µs.
		c.DelayScale = 0.01
	}
	if c.CLThreshold <= 0 {
		c.CLThreshold = core.DefaultCLThreshold
	}
	if c.CLWindow <= 0 {
		// The CL window should span a handful of transaction lifetimes.
		// Transaction lifetimes scale with the link delays, so derive the
		// window from the same scale factor (500 ms at full scale).
		c.CLWindow = scaled(500*time.Millisecond, c.DelayScale)
	}
	if c.Transport == "" {
		c.Transport = "memnet"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scaled applies the latency scale factor to a full-scale duration,
// clamping at 1 ms so timers stay meaningful.
func scaled(d time.Duration, scale float64) time.Duration {
	out := time.Duration(float64(d) * scale)
	if out < time.Millisecond {
		out = time.Millisecond
	}
	return out
}

// Result aggregates one experiment cell.
type Result struct {
	Config   Config
	Elapsed  time.Duration
	Metrics  stm.MetricsSnapshot
	CheckErr error

	// Protocol trace verdict (Config.Trace only): ProtocolErr is the trace
	// checker's verdict over the merged event log, TraceEvents the merged
	// log's size, and TraceDropped how many events were lost to ring
	// wrap-around across all nodes (> 0 downgrades the check to the
	// truncated-trace invariants).
	ProtocolErr  error
	TraceEvents  int
	TraceDropped uint64
}

// Throughput is committed top-level transactions per second, cluster-wide.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Metrics.Commits) / r.Elapsed.Seconds()
}

// NestedAbortRate is Table I's metric.
func (r Result) NestedAbortRate() float64 { return r.Metrics.NestedAbortRate() }

// newBenchmark builds the application for a config and applies the
// configured key sampler.
func newBenchmark(cfg Config) (apps.Benchmark, error) {
	bench, err := newBenchmarkKind(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.KeySampler != nil {
		sk, ok := bench.(apps.Skewable)
		if !ok {
			return nil, fmt.Errorf("harness: benchmark %q does not support key sampling", cfg.Benchmark)
		}
		sampler := cfg.KeySampler
		sk.SetKeyPicker(func(rng *rand.Rand, n int) int { return sampler.Sample(rng, n) })
	}
	return bench, nil
}

func newBenchmarkKind(cfg Config) (apps.Benchmark, error) {
	switch cfg.Benchmark {
	case BenchBank:
		return bank.New(bank.Options{AccountsPerNode: cfg.ObjectsPerNode}), nil
	case BenchDHT:
		return dht.New(dht.Options{BucketsPerNode: cfg.ObjectsPerNode}), nil
	case BenchList:
		kr := cfg.ObjectsPerNode * cfg.Nodes
		return list.New(list.Options{KeyRange: kr, InitialSize: kr / 2}), nil
	case BenchBST:
		kr := 2 * cfg.ObjectsPerNode * cfg.Nodes
		return bst.New(bst.Options{KeyRange: kr, InitialSize: kr / 2}), nil
	case BenchRBTree:
		kr := 2 * cfg.ObjectsPerNode * cfg.Nodes
		return rbtree.New(rbtree.Options{KeyRange: kr, InitialSize: kr / 2}), nil
	case BenchVacation:
		per := cfg.ObjectsPerNode / 4
		if per < 1 {
			per = 1
		}
		return vacation.New(vacation.Options{
			ResourcesPerKindPerNode: per,
			CustomersPerNode:        per,
		}), nil
	default:
		return nil, fmt.Errorf("harness: unknown benchmark %q", cfg.Benchmark)
	}
}

// newPolicy builds the scheduler for one node.
func newPolicy(cfg Config, st *stats.Table) (sched.Policy, error) {
	switch cfg.Scheduler {
	case SchedTFA:
		return sched.NewTFA(), nil
	case SchedBackoff:
		// The stall cap must stay proportional to the (scaled) link
		// delays: the paper's baseline backs off on the order of a few
		// transaction lifetimes, not wall-clock constants.
		return sched.NewBackoff(st, scaled(500*time.Millisecond, cfg.DelayScale)), nil
	case SchedRTS:
		return core.New(core.Options{
			CLThreshold: cfg.CLThreshold,
			Adaptive:    cfg.AdaptiveCL,
			CLWindow:    cfg.CLWindow,
		}), nil
	default:
		return nil, fmt.Errorf("harness: unknown scheduler %q", cfg.Scheduler)
	}
}

// cell is one assembled experiment cluster: the simulated network, the
// per-node runtimes and policies, and the trace/lease plumbing around
// them. Both the closed-loop driver (Run) and the open-loop stability
// driver (RunOpenLoop) build on it.
type cell struct {
	cfg         Config
	net         *transport.Network   // memnet only; nil for TCP transports
	tcps        []*transport.TCPNode // TCP transports only
	rts         []*stm.Runtime
	pols        []sched.Policy
	recorders   []*trace.Recorder
	reaperStops []func()
}

// newCell assembles the cluster for a (defaulted) config: latency-model
// network, one runtime per node with its scheduler, tracer, and lease
// reaper. Call close when done.
func newCell(cfg Config) (*cell, error) {
	c := &cell{cfg: cfg, rts: make([]*stm.Runtime, cfg.Nodes)}
	switch cfg.Transport {
	case "", "memnet":
		c.net = transport.NewNetwork(transport.MetricLatency{
			Min:   cfg.LatMin,
			Max:   cfg.LatMax,
			Scale: cfg.DelayScale,
			Seed:  uint64(cfg.Seed),
		})
	case "tcp", "tcpgob":
		if cfg.faulty() {
			return nil, fmt.Errorf("harness: fault injection requires the memnet transport")
		}
		codec := transport.CodecBinary
		if cfg.Transport == "tcpgob" {
			codec = transport.CodecGob
		}
		peers := make(map[transport.NodeID]string, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			tn, err := transport.NewTCPNodeOpts(transport.NodeID(i), "127.0.0.1:0", nil,
				transport.TCPOptions{Codec: codec})
			if err != nil {
				c.close()
				return nil, fmt.Errorf("harness: tcp node %d: %w", i, err)
			}
			c.tcps = append(c.tcps, tn)
			peers[transport.NodeID(i)] = tn.Addr()
		}
		for _, tn := range c.tcps {
			tn.SetPeers(peers)
		}
	default:
		return nil, fmt.Errorf("harness: unknown transport %q", cfg.Transport)
	}
	for i := 0; i < cfg.Nodes; i++ {
		st := stats.NewTable(time.Millisecond)
		pol, err := newPolicy(cfg, st)
		if err != nil {
			c.close()
			return nil, err
		}
		c.pols = append(c.pols, pol)
		clk := &vclock.Clock{}
		var tr transport.Transport
		if c.net != nil {
			tr = c.net.Endpoint(transport.NodeID(i))
		} else {
			tr = c.tcps[i]
		}
		ep := cluster.NewEndpoint(tr, clk)
		if (cfg.CallRetry != cluster.RetryPolicy{}) {
			ep.SetRetryPolicy(cfg.CallRetry)
		}
		c.rts[i] = stm.NewRuntime(ep, cfg.Nodes, pol, st)
		if cfg.Trace {
			rec := trace.NewRecorder(transport.NodeID(i), cfg.TraceCap, clk.Now)
			c.rts[i].SetTracer(rec)
			c.recorders = append(c.recorders, rec)
		}
		if cfg.FlatNesting {
			c.rts[i].SetNesting(stm.FlatNesting)
		}
		if cfg.ROReads {
			c.rts[i].SetReadOnlyReads(true)
		}
		if cfg.ReplicaLease > 0 {
			c.rts[i].EnableReplicaCache(cfg.ReplicaLease)
		}
		if cfg.LockLease > 0 {
			c.reaperStops = append(c.reaperStops, c.rts[i].StartLeaseExpiry(cfg.LockLease))
		}
	}
	return c, nil
}

// close stops the lease reapers and shuts the network (both idempotent).
func (c *cell) close() {
	for _, stop := range c.reaperStops {
		stop()
	}
	if c.net != nil {
		c.net.Close()
	}
	for _, tn := range c.tcps {
		tn.Close()
	}
}

// healFaults removes the fault model (no-op on TCP transports, which never
// install one).
func (c *cell) healFaults() {
	if c.net != nil {
		c.net.SetFaults(nil)
	}
}

// wireStats sums the TCP wire counters across all nodes (zero for memnet).
func (c *cell) wireStats() transport.WireStats {
	var total transport.WireStats
	for _, tn := range c.tcps {
		s := tn.Stats()
		total.MsgsSent += s.MsgsSent
		total.BytesSent += s.BytesSent
		total.MsgsRecv += s.MsgsRecv
		total.BytesRecv += s.BytesRecv
		total.Writes += s.Writes
		total.Dials += s.Dials
	}
	return total
}

// enableFaults installs the seeded fault model when any rate is set.
func (c *cell) enableFaults() {
	if c.cfg.faulty() {
		c.net.SetFaults(transport.NewFaultModel(transport.FaultConfig{
			Seed:          uint64(c.cfg.Seed),
			Drop:          c.cfg.Drop,
			Duplicate:     c.cfg.Duplicate,
			Reorder:       c.cfg.Reorder,
			MaxExtraDelay: c.cfg.MaxExtraDelay,
		}))
	}
}

// schedQueueDepth sums the parked requesters across every node's policy.
func (c *cell) schedQueueDepth() int {
	total := 0
	for _, pol := range c.pols {
		if qd, ok := pol.(sched.QueueDepther); ok {
			total += qd.QueueDepth()
		}
	}
	return total
}

// finishTrace quiesces the cluster, merges the per-node event logs, runs
// the protocol oracle, and (optionally) writes the JSONL export. It
// populates the trace fields shared by Result and OpenLoopResult.
func (c *cell) finishTrace(events *int, dropped *uint64, protocolErr *error) error {
	// Quiesce before collecting so no goroutine is mid-way through
	// emitting a hand-off group: stop the lease reapers, shut the
	// network (idempotent; drains the per-link delivery goroutines),
	// and give spawned handler goroutines a beat to finish.
	c.close()
	time.Sleep(25 * time.Millisecond)

	logs := make([][]trace.Event, len(c.recorders))
	for i, rec := range c.recorders {
		logs[i] = rec.Events()
		*dropped += rec.Dropped()
	}
	merged := trace.Merge(logs...)
	*events = len(merged)
	rep := check.Run(merged, check.Options{Truncated: *dropped > 0})
	*protocolErr = rep.Err()
	if c.cfg.TracePath != "" {
		f, err := os.Create(c.cfg.TracePath)
		if err != nil {
			return fmt.Errorf("harness: trace file: %w", err)
		}
		werr := trace.WriteJSONL(f, merged)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("harness: trace write: %w", werr)
		}
	}
	return nil
}

// Run executes one experiment cell and returns its aggregated result.
func Run(ctx context.Context, cfg Config) (Result, error) {
	res, _, err := RunWithWireStats(ctx, cfg)
	return res, err
}

// RunWithWireStats is Run plus the cluster-wide TCP wire counters (zero
// for the memnet transport), for the wire experiment's fabric comparison.
func RunWithWireStats(ctx context.Context, cfg Config) (Result, transport.WireStats, error) {
	cfg = cfg.withDefaults()

	c, err := newCell(cfg)
	if err != nil {
		return Result{}, transport.WireStats{}, err
	}
	defer c.close()
	rts := c.rts

	bench, err := newBenchmark(cfg)
	if err != nil {
		return Result{}, transport.WireStats{}, err
	}
	if err := bench.Setup(ctx, rts); err != nil {
		return Result{}, transport.WireStats{}, fmt.Errorf("harness: setup: %w", err)
	}

	// Drop setup noise from the counters by sampling a baseline after
	// setup and subtracting later — setup runs transactions too.
	baseline := aggregate(rts)

	// Faults go live only after setup so the seeded state is complete.
	c.enableFaults()

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	start := time.Now()
	for n := 0; n < cfg.Nodes; n++ {
		for w := 0; w < cfg.WorkersPerNode; w++ {
			wg.Add(1)
			go func(rt *stm.Runtime, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for runCtx.Err() == nil {
					read := rng.Float64() < cfg.ReadRatio
					if err := bench.Op(runCtx, rt, rng, read); err != nil {
						if isShutdownErr(err) {
							return
						}
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(rts[n], cfg.Seed+int64(n*1000+w))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return Result{}, transport.WireStats{}, fmt.Errorf("harness: worker failed: %w", firstErr)
	}

	// Heal before checking invariants: the check verifies what committed,
	// not whether the check's own RPCs survive the lossy network.
	c.healFaults()

	m := aggregate(rts)
	m.Sub(baseline)

	res := Result{Config: cfg, Elapsed: elapsed, Metrics: m}
	// Bound the invariant check so a broken cluster state reports an error
	// instead of retrying forever.
	checkCtx, checkCancel := context.WithTimeout(ctx, 30*time.Second)
	defer checkCancel()
	res.CheckErr = bench.Check(checkCtx, rts[0])

	ws := c.wireStats()
	if cfg.Trace {
		if err := c.finishTrace(&res.TraceEvents, &res.TraceDropped, &res.ProtocolErr); err != nil {
			return res, ws, err
		}
	}
	return res, ws, nil
}

func isShutdownErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, cluster.ErrEndpointClosed) ||
		errors.Is(err, transport.ErrClosed)
}

func aggregate(rts []*stm.Runtime) stm.MetricsSnapshot {
	var total stm.MetricsSnapshot
	for _, rt := range rts {
		s := rt.Metrics().Snapshot()
		total.Merge(s)
	}
	return total
}
