package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestFalsePositiveRateBounded(t *testing.T) {
	f := New(1000, 0.01)
	rng := rand.New(rand.NewSource(2))
	added := make(map[uint64]bool, 1000)
	for len(added) < 1000 {
		k := rng.Uint64()
		added[k] = true
		f.Add(k)
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		k := rng.Uint64()
		if added[k] {
			continue
		}
		if f.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Target 1%; allow generous slack (5x) so the test is not flaky.
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(100, 0.01)
	for i := uint64(0); i < 1000; i++ {
		if f.Contains(i) {
			t.Fatalf("empty filter claims to contain %d", i)
		}
	}
}

func TestReset(t *testing.T) {
	f := New(10, 0.01)
	f.Add(7)
	if !f.Contains(7) {
		t.Fatal("filter lost key before reset")
	}
	f.Reset()
	if f.Contains(7) {
		t.Fatal("filter still contains key after reset")
	}
	if f.Count() != 0 {
		t.Fatalf("Count() = %d after reset", f.Count())
	}
}

func TestNewClampsArguments(t *testing.T) {
	cases := []struct {
		items int
		rate  float64
	}{
		{-5, 0.01},
		{0, 0.01},
		{10, 0},
		{10, 1.5},
		{10, -1},
	}
	for _, c := range cases {
		f := New(c.items, c.rate)
		if f.Bits() < 64 || f.Hashes() < 1 {
			t.Fatalf("New(%d, %f) produced degenerate filter: %d bits %d hashes",
				c.items, c.rate, f.Bits(), f.Hashes())
		}
		f.Add(1)
		if !f.Contains(1) {
			t.Fatalf("New(%d, %f): lost key", c.items, c.rate)
		}
	}
}

// Property: anything added is always found (no false negatives), for
// arbitrary key sets.
func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		fl := New(len(keys)+1, 0.05)
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: estimated FP rate is within [0, 1] and grows with fill.
func TestEstimatedFPRateMonotone(t *testing.T) {
	fl := New(100, 0.01)
	prev := fl.EstimatedFPRate()
	if prev != 0 {
		t.Fatalf("empty filter FP estimate = %f, want 0", prev)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		fl.Add(rng.Uint64())
		cur := fl.EstimatedFPRate()
		if cur < prev-1e-12 || cur > 1 {
			t.Fatalf("FP estimate not monotone in fill: prev=%f cur=%f", prev, cur)
		}
		prev = cur
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(100000, 0.01)
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(100000, 0.01)
	for i := 0; i < 100000; i++ {
		f.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
