// Package bloom implements a standard Bloom filter over 64-bit keys.
//
// RTS uses Bloom filters inside its transaction stats table: each table
// entry holds a Bloom-filter representation of the most recent successful
// commit times of a transaction profile (paper §III-B). The filter offers
// the usual guarantees: Add/Contains with no false negatives and a tunable
// false-positive rate.
package bloom

import (
	"encoding/binary"
	"math"
)

// Filter is a Bloom filter over uint64 keys. Create one with New; the zero
// value is not usable.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
	n     uint64 // number of Add calls, for estimation
}

// New returns a filter sized for expectedItems with the given target
// false-positive rate (0 < fpRate < 1). Out-of-range arguments are clamped
// to sane minimums so New never fails.
func New(expectedItems int, fpRate float64) *Filter {
	if expectedItems < 1 {
		expectedItems = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	// Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	m := uint64(math.Ceil(-float64(expectedItems) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(expectedItems) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	words := (m + 63) / 64
	return &Filter{
		bits:  make([]uint64, words),
		nbits: words * 64,
		k:     k,
	}
}

// hash2 derives two independent 64-bit hashes from the key using an
// FNV-style mix; the k probe positions use Kirsch-Mitzenmacher double
// hashing h1 + i*h2.
func hash2(key uint64) (uint64, uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h1 := uint64(offset64)
	for _, c := range b {
		h1 ^= uint64(c)
		h1 *= prime64
	}
	// Second hash: xorshift-multiply mix of h1 (never returns 0 as stride).
	h2 := h1
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	h2 |= 1
	return h1, h2
}

// Add inserts key into the filter.
func (f *Filter) Add(key uint64) {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.n++
}

// Contains reports whether key may have been added. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls made on the filter.
func (f *Filter) Count() uint64 { return f.n }

// Bits returns the total number of bits in the filter.
func (f *Filter) Bits() uint64 { return f.nbits }

// Hashes returns the number of hash probes per operation.
func (f *Filter) Hashes() int { return f.k }

// Reset clears the filter in place, preserving its sizing.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// EstimatedFPRate returns the expected false-positive probability for the
// current fill level: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFPRate() float64 {
	if f.n == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(f.n) / float64(f.nbits)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}
