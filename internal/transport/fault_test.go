package transport

import (
	"sync"
	"testing"
	"time"
)

// decisions drains n Decide calls for one directed link into a compact
// record for comparison.
func decisions(fm *FaultModel, from, to NodeID, n int) []Outcome {
	out := make([]Outcome, n)
	for i := range out {
		out[i] = fm.Decide(from, to)
	}
	return out
}

func TestFaultModelDeterministicPerSeed(t *testing.T) {
	cases := []struct {
		name string
		cfg  FaultConfig
	}{
		{"drop-only", FaultConfig{Seed: 1, Drop: 0.3}},
		{"dup-only", FaultConfig{Seed: 2, Duplicate: 0.4}},
		{"reorder-only", FaultConfig{Seed: 3, Reorder: 0.5}},
		{"mixed", FaultConfig{Seed: 4, Drop: 0.15, Duplicate: 0.1, Reorder: 0.2}},
		{"heavy", FaultConfig{Seed: 5, Drop: 0.5, Duplicate: 0.5, Reorder: 0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := NewFaultModel(tc.cfg), NewFaultModel(tc.cfg)
			for _, link := range [][2]NodeID{{0, 1}, {1, 0}, {3, 7}} {
				da := decisions(a, link[0], link[1], 200)
				db := decisions(b, link[0], link[1], 200)
				for i := range da {
					if da[i] != db[i] {
						t.Fatalf("link %v message %d: %+v vs %+v (same seed must give same stream)",
							link, i, da[i], db[i])
					}
				}
			}
		})
	}
}

func TestFaultModelSeedChangesStream(t *testing.T) {
	a := NewFaultModel(FaultConfig{Seed: 1, Drop: 0.5})
	b := NewFaultModel(FaultConfig{Seed: 99, Drop: 0.5})
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		if a.Decide(0, 1).Drop == b.Decide(0, 1).Drop {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical drop streams")
	}
}

func TestFaultModelRates(t *testing.T) {
	cases := []struct {
		name      string
		cfg       FaultConfig
		wantDrop  float64
		wantDup   float64
		wantReord float64
	}{
		{"clean", FaultConfig{Seed: 7}, 0, 0, 0},
		{"drop20", FaultConfig{Seed: 7, Drop: 0.2}, 0.2, 0, 0},
		{"all-faults", FaultConfig{Seed: 7, Drop: 0.1, Duplicate: 0.2, Reorder: 0.3}, 0.1, 0.2, 0.3},
		{"drop-everything", FaultConfig{Seed: 7, Drop: 1}, 1, 0, 0},
	}
	const n = 5000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fm := NewFaultModel(tc.cfg)
			var drops, dups, reords int
			for i := 0; i < n; i++ {
				out := fm.Decide(0, 1)
				if out.Drop {
					drops++
				}
				if out.Dup {
					dups++
				}
				if out.Delay > 0 {
					reords++
				}
			}
			check := func(what string, got int, want float64) {
				t.Helper()
				rate := float64(got) / n
				if rate < want-0.05 || rate > want+0.05 {
					t.Fatalf("%s rate %.3f, want %.2f ± 0.05", what, rate, want)
				}
			}
			check("drop", drops, tc.wantDrop)
			check("duplicate", dups, tc.wantDup)
			check("reorder", reords, tc.wantReord)
			st := fm.Stats()
			if st.Dropped != uint64(drops) || st.Duplicated != uint64(dups) || st.Reordered != uint64(reords) {
				t.Fatalf("stats %+v disagree with observed (%d, %d, %d)", st, drops, dups, reords)
			}
		})
	}
}

func TestFaultModelSelfSendsNeverFaulted(t *testing.T) {
	fm := NewFaultModel(FaultConfig{Seed: 1, Drop: 1, Duplicate: 1, Reorder: 1})
	for i := 0; i < 50; i++ {
		if out := fm.Decide(4, 4); out != (Outcome{}) {
			t.Fatalf("self-send faulted: %+v", out)
		}
	}
}

func TestFaultModelPartitionSymmetry(t *testing.T) {
	fm := NewFaultModel(FaultConfig{Seed: 1})
	fm.Partition(2, 5)
	for _, link := range [][2]NodeID{{2, 5}, {5, 2}} {
		if !fm.Partitioned(link[0], link[1]) {
			t.Fatalf("link %v not partitioned", link)
		}
		if out := fm.Decide(link[0], link[1]); !out.Drop {
			t.Fatalf("message crossed partitioned link %v", link)
		}
	}
	// Unrelated links are untouched.
	if fm.Partitioned(2, 6) || fm.Decide(2, 6).Drop {
		t.Fatal("partition of (2,5) leaked onto (2,6)")
	}
	fm.Heal(2, 5)
	for _, link := range [][2]NodeID{{2, 5}, {5, 2}} {
		if fm.Partitioned(link[0], link[1]) || fm.Decide(link[0], link[1]).Drop {
			t.Fatalf("healed link %v still dropping", link)
		}
	}
}

func TestFaultModelCrashRestart(t *testing.T) {
	fm := NewFaultModel(FaultConfig{Seed: 1})
	fm.Crash(3)
	if !fm.Crashed(3) {
		t.Fatal("Crashed(3) = false after Crash")
	}
	// Everything to or from the crashed node is lost, both directions.
	for _, link := range [][2]NodeID{{0, 3}, {3, 0}, {3, 9}} {
		if out := fm.Decide(link[0], link[1]); !out.Drop {
			t.Fatalf("message %v survived a crashed endpoint", link)
		}
	}
	// Other traffic is unaffected.
	if fm.Decide(0, 1).Drop {
		t.Fatal("crash of node 3 dropped 0→1 traffic")
	}
	fm.Restart(3)
	if fm.Crashed(3) {
		t.Fatal("Crashed(3) = true after Restart")
	}
	// Messages lost during the crash stay lost; new traffic flows.
	for _, link := range [][2]NodeID{{0, 3}, {3, 0}} {
		if out := fm.Decide(link[0], link[1]); out.Drop {
			t.Fatalf("restarted node still unreachable on %v", link)
		}
	}
}

func TestMemnetFaultDrop(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(m *Message) { mu.Lock(); count++; mu.Unlock() })

	n.SetFaults(NewFaultModel(FaultConfig{Seed: 1, Drop: 1}))
	for i := 0; i < 10; i++ {
		if err := a.Send(&Message{From: 0, To: 1}); err != nil {
			t.Fatal(err)
		}
	}
	n.SetFaults(nil)
	if err := a.Send(&Message{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("post-heal message never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("delivered %d messages, want 1 (10 dropped)", count)
	}
}

func TestMemnetFaultDuplicate(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(m *Message) { mu.Lock(); count++; mu.Unlock() })

	n.SetFaults(NewFaultModel(FaultConfig{Seed: 1, Duplicate: 1, MaxExtraDelay: time.Millisecond}))
	const sent = 5
	for i := 0; i < sent; i++ {
		if err := a.Send(&Message{From: 0, To: 1, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c == 2*sent {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d copies, want %d (every message duplicated)", c, 2*sent)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMemnetFaultReorder(t *testing.T) {
	// With reorder probability 1 every message takes an independent extra
	// delay, so strict FIFO arrival of a long burst is (astronomically)
	// unlikely — and delivery still happens.
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)
	const count = 64
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	b.SetHandler(func(m *Message) {
		mu.Lock()
		order = append(order, m.Payload.(int))
		if len(order) == count {
			close(done)
		}
		mu.Unlock()
	})
	n.SetFaults(NewFaultModel(FaultConfig{Seed: 3, Reorder: 1, MaxExtraDelay: 5 * time.Millisecond}))
	for i := 0; i < count; i++ {
		if err := a.Send(&Message{From: 0, To: 1, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reordered messages not all delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	inOrder := true
	for i, v := range order {
		if v != i {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("all 64 messages arrived in FIFO order despite reorder=1")
	}
}

func TestMemnetFaultCrashRestartDelivery(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)
	var mu sync.Mutex
	var got []int
	b.SetHandler(func(m *Message) { mu.Lock(); got = append(got, m.Payload.(int)); mu.Unlock() })

	fm := NewFaultModel(FaultConfig{Seed: 1})
	n.SetFaults(fm)

	send := func(v int) {
		t.Helper()
		if err := a.Send(&Message{From: 0, To: 1, Payload: v}); err != nil {
			t.Fatal(err)
		}
	}
	wait := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			c := len(got)
			mu.Unlock()
			if c >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("have %d deliveries, want %d", c, want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	send(1)
	wait(1)
	fm.Crash(1)
	send(2) // lost: the destination is down
	fm.Restart(1)
	send(3)
	wait(2)
	time.Sleep(10 * time.Millisecond) // give a late message 2 a chance to (wrongly) appear
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("deliveries %v, want [1 3]: messages sent while down must stay lost", got)
	}
}
