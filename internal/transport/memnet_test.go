package transport

import (
	"sync"
	"testing"
	"time"
)

func TestMemnetBasicDelivery(t *testing.T) {
	n := NewNetwork(ZeroLatency{})
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)

	got := make(chan *Message, 1)
	b.SetHandler(func(m *Message) { got <- m })

	if err := a.Send(&Message{From: 0, To: 1, Kind: 7, Payload: "hello"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Payload != "hello" || m.Kind != 7 || m.From != 0 {
			t.Fatalf("bad message: %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestMemnetUnknownNode(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Endpoint(0)
	if err := a.Send(&Message{From: 0, To: 99}); err != ErrUnknownNode {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestMemnetSendAfterClose(t *testing.T) {
	n := NewNetwork(nil)
	a := n.Endpoint(0)
	n.Endpoint(1)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(&Message{From: 0, To: 1}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	n.Close() // double close must be safe
	n.Close()
}

func TestMemnetFIFOPerLink(t *testing.T) {
	n := NewNetwork(UniformLatency(time.Millisecond))
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)

	const count = 100
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	b.SetHandler(func(m *Message) {
		mu.Lock()
		order = append(order, m.Payload.(int))
		if len(order) == count {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < count; i++ {
		if err := a.Send(&Message{From: 0, To: 1, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for messages")
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("message %d arrived at position %d; FIFO violated", v, i)
		}
	}
}

func TestMemnetLatencyApplied(t *testing.T) {
	const lat = 20 * time.Millisecond
	n := NewNetwork(UniformLatency(lat))
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)

	got := make(chan time.Time, 1)
	b.SetHandler(func(m *Message) { got <- time.Now() })
	start := time.Now()
	if err := a.Send(&Message{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	at := <-got
	if e := at.Sub(start); e < lat {
		t.Fatalf("delivered after %v, want >= %v", e, lat)
	}
}

func TestMemnetSelfSend(t *testing.T) {
	n := NewNetwork(MetricLatency{Min: time.Hour, Max: time.Hour})
	defer n.Close()
	a := n.Endpoint(0)
	got := make(chan struct{}, 1)
	a.SetHandler(func(m *Message) { got <- struct{}{} })
	if err := a.Send(&Message{From: 0, To: 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("self-send must bypass link latency (self delay is zero)")
	}
}

func TestMemnetInterceptorDrops(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(m *Message) { mu.Lock(); count++; mu.Unlock() })

	n.SetInterceptor(func(m *Message) bool { return m.Kind != 13 })
	a.Send(&Message{From: 0, To: 1, Kind: 13})
	a.Send(&Message{From: 0, To: 1, Kind: 1})
	n.SetInterceptor(nil)
	a.Send(&Message{From: 0, To: 1, Kind: 13})

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d, want 2", c)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 2 {
		t.Fatalf("delivered %d messages, want exactly 2 (one dropped)", count)
	}
}

func TestMemnetMessageCopied(t *testing.T) {
	// The network must deliver a copy of the Message struct so the sender
	// can reuse its argument.
	n := NewNetwork(UniformLatency(5 * time.Millisecond))
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)
	got := make(chan *Message, 1)
	b.SetHandler(func(m *Message) { got <- m })
	msg := &Message{From: 0, To: 1, Kind: 1}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	msg.Kind = 99 // mutate after send
	m := <-got
	if m.Kind != 1 {
		t.Fatal("delivered message aliases the sender's struct")
	}
}

func TestMemnetConcurrentSenders(t *testing.T) {
	n := NewNetwork(ZeroLatency{})
	defer n.Close()
	const senders = 8
	const per = 50
	dst := n.Endpoint(100)
	var mu sync.Mutex
	count := 0
	done := make(chan struct{})
	dst.SetHandler(func(m *Message) {
		mu.Lock()
		count++
		if count == senders*per {
			close(done)
		}
		mu.Unlock()
	})
	for s := 0; s < senders; s++ {
		ep := n.Endpoint(NodeID(s))
		go func(ep Transport) {
			for i := 0; i < per; i++ {
				ep.Send(&Message{From: ep.Self(), To: 100, Payload: i})
			}
		}(ep)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("only %d/%d delivered", count, senders*per)
	}
}
