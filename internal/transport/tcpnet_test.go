package transport

import (
	"sync"
	"testing"
	"time"
)

type tcpPayload struct {
	N int
	S string
}

func init() {
	RegisterPayload(tcpPayload{})
}

// newTCPPair starts two TCP nodes on loopback that know each other's
// addresses.
func newTCPPair(t *testing.T) (*TCPNode, *TCPNode) {
	t.Helper()
	a, err := NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPNode(1, "127.0.0.1:0", nil)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	peers := map[NodeID]string{0: a.Addr(), 1: b.Addr()}
	a.SetPeers(peers)
	b.SetPeers(peers)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPBasicRoundTrip(t *testing.T) {
	a, b := newTCPPair(t)

	got := make(chan *Message, 1)
	b.SetHandler(func(m *Message) { got <- m })

	err := a.Send(&Message{From: 0, To: 1, Kind: 3, Clock: 42,
		Payload: tcpPayload{N: 7, S: "hi"}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		p, ok := m.Payload.(tcpPayload)
		if !ok || p.N != 7 || p.S != "hi" || m.Clock != 42 {
			t.Fatalf("bad message %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery over TCP")
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := newTCPPair(t)
	gotA := make(chan *Message, 1)
	gotB := make(chan *Message, 1)
	a.SetHandler(func(m *Message) { gotA <- m })
	b.SetHandler(func(m *Message) { gotB <- m })

	if err := a.Send(&Message{From: 0, To: 1, Payload: tcpPayload{N: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(&Message{From: 1, To: 0, Payload: tcpPayload{N: 2}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case m := <-gotA:
			if m.Payload.(tcpPayload).N != 2 {
				t.Fatalf("A got %+v", m)
			}
		case m := <-gotB:
			if m.Payload.(tcpPayload).N != 1 {
				t.Fatalf("B got %+v", m)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	a, b := newTCPPair(t)
	const count = 200
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	b.SetHandler(func(m *Message) {
		mu.Lock()
		order = append(order, m.Payload.(tcpPayload).N)
		if len(order) == count {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < count; i++ {
		if err := a.Send(&Message{From: 0, To: 1, Payload: tcpPayload{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send(&Message{From: 0, To: 42}); err != ErrUnknownNode {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(&Message{From: 0, To: 1}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	_ = b
}

func TestTCPSelfIdentity(t *testing.T) {
	a, b := newTCPPair(t)
	if a.Self() != 0 || b.Self() != 1 {
		t.Fatalf("Self() = %d, %d", a.Self(), b.Self())
	}
}
