package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// Network is an in-memory cluster interconnect. Every ordered pair of
// endpoints communicates over a private FIFO link whose messages are
// delayed by the configured LatencyModel, mimicking the paper's static
// message-passing network. Create endpoints with Endpoint, then wire
// handlers and start sending.
type Network struct {
	latency LatencyModel

	mu        sync.Mutex
	endpoints map[NodeID]*memEndpoint
	closed    bool

	links sync.WaitGroup

	// interceptor, when set, is consulted before queueing each message;
	// returning false drops the message. Used for failure injection in
	// tests. Stored atomically so Send never takes the network lock.
	interceptor atomic.Value // func(*Message) bool

	// faults, when set, injects drop/duplicate/reorder/partition/crash
	// faults into every Send. Stored atomically for the same reason.
	faults atomic.Pointer[FaultModel]
}

// NewNetwork creates a network with the given latency model (nil means
// ZeroLatency).
func NewNetwork(lat LatencyModel) *Network {
	if lat == nil {
		lat = ZeroLatency{}
	}
	return &Network{
		latency:   lat,
		endpoints: make(map[NodeID]*memEndpoint),
	}
}

// SetInterceptor installs a message filter: messages for which f returns
// false are silently dropped. Pass nil to clear. Intended for fault
// injection in tests.
func (n *Network) SetInterceptor(f func(*Message) bool) {
	if f == nil {
		f = func(*Message) bool { return true }
	}
	n.interceptor.Store(f)
}

// SetFaults installs (or, with nil, removes) a fault model. Every
// subsequent Send consults it; see FaultModel for the semantics. Intended
// for chaos tests and lossy-network experiments.
func (n *Network) SetFaults(fm *FaultModel) { n.faults.Store(fm) }

// Faults returns the installed fault model, or nil.
func (n *Network) Faults() *FaultModel { return n.faults.Load() }

// Endpoint creates (or returns) the endpoint for id.
func (n *Network) Endpoint(id NodeID) Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		return ep
	}
	ep := &memEndpoint{net: n, id: id, links: make(map[NodeID]*memLink)}
	n.endpoints[id] = ep
	return ep
}

// Close shuts down the whole network: all links drain and all endpoints
// stop delivering.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*memEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	n.links.Wait()
}

type timedMsg struct {
	at  time.Time
	msg Message
}

type memLink struct {
	dst *memEndpoint

	// mu serialises enqueue against close: a straggler Send racing the
	// endpoint's Close (e.g. a reply triggered by a late fault-injected
	// delivery) must be dropped, not crash on a closed channel.
	mu     sync.Mutex
	ch     chan timedMsg
	closed bool
}

// enqueue queues tm for FIFO delivery, dropping it if the link is closed.
func (lk *memLink) enqueue(tm timedMsg) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if !lk.closed {
		lk.ch <- tm
	}
}

// shut closes the link's channel exactly once.
func (lk *memLink) shut() {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if !lk.closed {
		lk.closed = true
		close(lk.ch)
	}
}

type memEndpoint struct {
	net     *Network
	id      NodeID
	handler atomic.Value // Handler

	mu     sync.Mutex
	links  map[NodeID]*memLink // outgoing links keyed by destination
	closed bool
}

// Self implements Transport.
func (e *memEndpoint) Self() NodeID { return e.id }

// SetHandler implements Transport.
func (e *memEndpoint) SetHandler(h Handler) { e.handler.Store(h) }

func (e *memEndpoint) deliver(m *Message) {
	h, _ := e.handler.Load().(Handler)
	if h != nil {
		h(m)
	}
}

// Send implements Transport. Messages to the same destination are delivered
// in send order after the link's one-way delay — unless an installed fault
// model drops the message or injects an out-of-order (reordered/duplicate)
// copy, which is delivered on its own timer, outside the link's FIFO.
func (e *memEndpoint) Send(m *Message) error {
	if f, ok := e.net.interceptor.Load().(func(*Message) bool); ok && f != nil && !f(m) {
		return nil // dropped by fault injection
	}
	var out Outcome
	if fm := e.net.faults.Load(); fm != nil {
		out = fm.Decide(e.id, m.To)
		if out.Drop {
			return nil
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	lk, ok := e.links[m.To]
	if !ok {
		e.net.mu.Lock()
		dst, exists := e.net.endpoints[m.To]
		e.net.mu.Unlock()
		if !exists {
			e.mu.Unlock()
			return ErrUnknownNode
		}
		lk = &memLink{ch: make(chan timedMsg, 1024), dst: dst}
		e.links[m.To] = lk
		e.net.links.Add(1)
		go e.runLink(lk)
	}
	base := e.net.latency.Delay(e.id, m.To)
	if out.Dup {
		// Out-of-band goroutines register with the network waitgroup while
		// the endpoint lock still guarantees it is not closed, so Close
		// cannot race the Add.
		e.net.links.Add(1)
		go e.deliverOutOfBand(lk.dst, *m, base+out.DupDelay)
	}
	if out.Delay > 0 {
		e.net.links.Add(1)
		go e.deliverOutOfBand(lk.dst, *m, base+out.Delay)
		e.mu.Unlock()
		return nil
	}
	e.mu.Unlock()

	lk.enqueue(timedMsg{at: time.Now().Add(base), msg: *m})
	return nil
}

// runLink delivers one link's messages in FIFO order, honouring each
// message's delivery time.
func (e *memEndpoint) runLink(lk *memLink) {
	defer e.net.links.Done()
	for tm := range lk.ch {
		if d := time.Until(tm.at); d > 0 {
			time.Sleep(d)
		}
		m := tm.msg
		lk.dst.deliver(&m)
	}
}

// deliverOutOfBand delivers one message copy outside its link's FIFO order
// (a reordered or duplicated copy from the fault model).
func (e *memEndpoint) deliverOutOfBand(dst *memEndpoint, m Message, d time.Duration) {
	defer e.net.links.Done()
	if d > 0 {
		time.Sleep(d)
	}
	dst.deliver(&m)
}

// Close implements Transport.
func (e *memEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	links := e.links
	e.links = map[NodeID]*memLink{}
	e.mu.Unlock()
	for _, lk := range links {
		lk.shut()
	}
	return nil
}
