package transport

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroLatency(t *testing.T) {
	if d := (ZeroLatency{}).Delay(1, 2); d != 0 {
		t.Fatalf("ZeroLatency.Delay = %v", d)
	}
}

func TestUniformLatency(t *testing.T) {
	u := UniformLatency(5 * time.Millisecond)
	if d := u.Delay(0, 7); d != 5*time.Millisecond {
		t.Fatalf("UniformLatency.Delay = %v", d)
	}
}

func TestMetricLatencyBounds(t *testing.T) {
	m := MetricLatency{Min: time.Millisecond, Max: 50 * time.Millisecond, Seed: 42}
	for i := NodeID(0); i < 20; i++ {
		for j := NodeID(0); j < 20; j++ {
			d := m.Delay(i, j)
			if i == j {
				if d != 0 {
					t.Fatalf("self-delay(%d) = %v", i, d)
				}
				continue
			}
			if d < m.Min || d > m.Max {
				t.Fatalf("Delay(%d,%d) = %v out of [%v,%v]", i, j, d, m.Min, m.Max)
			}
		}
	}
}

// Property: the metric is symmetric and deterministic.
func TestMetricLatencySymmetricDeterministic(t *testing.T) {
	m := MetricLatency{Min: time.Millisecond, Max: 50 * time.Millisecond, Seed: 7}
	f := func(a, b int32) bool {
		i, j := NodeID(a), NodeID(b)
		return m.Delay(i, j) == m.Delay(j, i) && m.Delay(i, j) == m.Delay(i, j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetricLatencyScale(t *testing.T) {
	base := MetricLatency{Min: 10 * time.Millisecond, Max: 10 * time.Millisecond}
	scaled := MetricLatency{Min: 10 * time.Millisecond, Max: 10 * time.Millisecond, Scale: 0.001}
	if d := base.Delay(1, 2); d != 10*time.Millisecond {
		t.Fatalf("unscaled = %v", d)
	}
	if d := scaled.Delay(1, 2); d != 10*time.Microsecond {
		t.Fatalf("scaled = %v, want 10µs", d)
	}
}

// Regression: a misordered band (Max < Min) used to collapse the span to
// zero and return Min — a delay above the caller's stated maximum. The band
// is now normalised, so the delay always lies within [min, max] and equals
// the correctly-ordered model's delay.
func TestMetricLatencySwappedBoundsClamped(t *testing.T) {
	swapped := MetricLatency{Min: 50 * time.Millisecond, Max: time.Millisecond, Seed: 9}
	normal := MetricLatency{Min: time.Millisecond, Max: 50 * time.Millisecond, Seed: 9}
	for i := NodeID(0); i < 10; i++ {
		for j := NodeID(0); j < 10; j++ {
			d := swapped.Delay(i, j)
			if i == j {
				if d != 0 {
					t.Fatalf("self-delay(%d) = %v", i, d)
				}
				continue
			}
			if d < time.Millisecond || d > 50*time.Millisecond {
				t.Fatalf("Delay(%d,%d) = %v out of clamped band [1ms,50ms]", i, j, d)
			}
			if want := normal.Delay(i, j); d != want {
				t.Fatalf("Delay(%d,%d) = %v, want %v (same band, normalised)", i, j, d, want)
			}
		}
	}
}

func TestMetricLatencyNegativeMinClamped(t *testing.T) {
	m := MetricLatency{Min: -time.Millisecond, Max: -time.Microsecond, Seed: 3}
	if d := m.Delay(1, 2); d < 0 {
		t.Fatalf("Delay = %v, negative delays must be clamped to zero", d)
	}
}

func TestMetricLatencyVariesAcrossPairs(t *testing.T) {
	m := MetricLatency{Min: time.Millisecond, Max: 50 * time.Millisecond, Seed: 1}
	seen := map[time.Duration]bool{}
	for j := NodeID(1); j <= 30; j++ {
		seen[m.Delay(0, j)] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct delays across 30 links; model degenerate", len(seen))
	}
}
