package transport

import (
	"time"
)

// LatencyModel yields the one-way delay charged to a message on the link
// from one node to another. Implementations must be safe for concurrent
// use and deterministic per (from, to) pair so message order per link is
// well defined.
type LatencyModel interface {
	Delay(from, to NodeID) time.Duration
}

// ZeroLatency delivers instantly; useful in unit tests.
type ZeroLatency struct{}

// Delay implements LatencyModel.
func (ZeroLatency) Delay(_, _ NodeID) time.Duration { return 0 }

// UniformLatency charges the same delay on every link.
type UniformLatency time.Duration

// Delay implements LatencyModel.
func (u UniformLatency) Delay(_, _ NodeID) time.Duration { return time.Duration(u) }

// MetricLatency reproduces the paper's static network: each ordered pair of
// distinct nodes gets a fixed delay drawn deterministically from [Min, Max]
// (paper: 1–50 ms), symmetric (d(i,j) == d(j,i)) so it behaves like a
// metric-space distance. Self-links cost zero. Scale rescales the whole
// band, letting benchmarks run the 1–50 ms topology in microseconds.
type MetricLatency struct {
	Min, Max time.Duration
	Scale    float64 // 0 means 1.0
	Seed     uint64
}

// Delay implements LatencyModel.
func (m MetricLatency) Delay(from, to NodeID) time.Duration {
	if from == to {
		return 0
	}
	// Symmetric: order the pair.
	a, b := from, to
	if a > b {
		a, b = b, a
	}
	h := splitmix64(uint64(a)<<32 | uint64(uint32(b)) ^ m.Seed*0x9e3779b97f4a7c15)
	// Clamp a misordered band (Max < Min) by normalising it: the delay is
	// always drawn from [min(Min,Max), max(Min,Max)], never from the
	// negative span the raw subtraction would produce.
	lo, hi := m.Min, m.Max
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	span := int64(hi - lo)
	d := lo
	if span > 0 {
		d += time.Duration(int64(h % uint64(span+1)))
	}
	scale := m.Scale
	if scale == 0 {
		scale = 1.0
	}
	return time.Duration(float64(d) * scale)
}

// splitmix64 is the SplitMix64 mixing function; a tiny, high-quality,
// allocation-free hash for deterministic per-pair delays.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
