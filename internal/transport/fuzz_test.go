package transport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"dstm/internal/wire"
)

// fuzzPayload is a registered concrete payload type for round-trip fuzzing
// of the gob wire format (mirrors how real payloads are registered via
// RegisterPayload).
type fuzzPayload struct {
	S string
	B []byte
	N uint64
}

func init() { RegisterPayload(fuzzPayload{}) }

// FuzzMessageGobRoundTrip encodes a Message the way the TCP transport does
// and checks every header field and the payload survive unchanged: the
// in-memory and TCP transports must be interchangeable, so the wire format
// must be lossless.
func FuzzMessageGobRoundTrip(f *testing.F) {
	f.Add(int32(0), int32(1), uint64(7), uint16(10), uint64(3), false, "hello", []byte{1, 2}, uint64(9))
	f.Add(int32(-5), int32(1<<30), ^uint64(0), uint16(0), uint64(0), true, "", []byte(nil), uint64(0))
	f.Add(int32(2), int32(2), uint64(1)<<63, uint16(65535), uint64(1), true, "päck\x00", []byte("x"), ^uint64(0))
	f.Fuzz(func(t *testing.T, from, to int32, clock uint64, kind uint16,
		corr uint64, isReply bool, s string, b []byte, n uint64) {
		in := Message{
			From: NodeID(from), To: NodeID(to), Clock: clock,
			Kind: Kind(kind), Corr: corr, IsReply: isReply,
			Payload: fuzzPayload{S: s, B: b, N: n},
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var out Message
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if out.From != in.From || out.To != in.To || out.Clock != in.Clock ||
			out.Kind != in.Kind || out.Corr != in.Corr || out.IsReply != in.IsReply {
			t.Fatalf("header changed: %+v -> %+v", in, out)
		}
		p, ok := out.Payload.(fuzzPayload)
		if !ok {
			t.Fatalf("payload type changed: %T", out.Payload)
		}
		// gob omits zero-valued fields, so an empty slice decodes as nil —
		// both mean "no bytes" on this wire.
		if p.S != s || p.N != n || !bytes.Equal(p.B, b) {
			t.Fatalf("payload changed: %+v -> %+v", in.Payload, p)
		}

		// Differential oracle: the binary frame codec must agree with the
		// gob decode on every header field and the payload.
		enc, err := AppendMessage(nil, &in)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		var bout Message
		if err := DecodeMessage(wire.NewReader(enc), &bout); err != nil {
			t.Fatalf("binary decode of own encoding: %v", err)
		}
		if bout.From != out.From || bout.To != out.To || bout.Clock != out.Clock ||
			bout.Kind != out.Kind || bout.Corr != out.Corr || bout.IsReply != out.IsReply {
			t.Fatalf("binary header disagrees with gob: %+v vs %+v", bout, out)
		}
		bp, ok := bout.Payload.(fuzzPayload)
		if !ok {
			t.Fatalf("binary payload type: %T", bout.Payload)
		}
		if bp.S != p.S || bp.N != p.N || !bytes.Equal(bp.B, p.B) {
			t.Fatalf("binary payload disagrees with gob: %+v vs %+v", bp, p)
		}
	})
}

// FuzzMessageBinaryDecode feeds arbitrary bytes to the binary frame decoder
// the TCP transport runs on every inbound frame: like its gob counterpart
// below, it must reject garbage with an error, never a panic or an
// unbounded allocation.
func FuzzMessageBinaryDecode(f *testing.F) {
	valid, err := AppendMessage(nil, &Message{From: 1, To: 2, Kind: 10, Corr: 3,
		Payload: fuzzPayload{S: "s", B: []byte{1}, N: 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		_ = DecodeMessage(wire.NewReader(data), &m) // must not panic
	})
}

// FuzzMessageGobDecode feeds arbitrary bytes to the decoder the TCP
// transport runs on every inbound frame: it must reject garbage with an
// error, never a panic — a malformed peer must not take the node down.
func FuzzMessageGobDecode(f *testing.F) {
	// A valid frame as one seed, plus mutilation fodder.
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(&Message{From: 1, To: 2, Kind: 10, Payload: fuzzPayload{S: "s"}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		_ = gob.NewDecoder(bytes.NewReader(data)).Decode(&m) // must not panic
	})
}
