package transport

import (
	"fmt"

	"dstm/internal/wire"
)

// Binary frame body layout (the TCP transport length-prefixes each body
// with a u32 big-endian byte count; see DESIGN.md "Wire format"):
//
//	ver:u8(=1)  from:varint  to:varint  clock:uvarint  kind:uvarint
//	corr:uvarint  flags:u8(bit0=IsReply)  payload:any
//
// The payload is a wire type ID followed by the registered binary
// encoding (or a gob blob for unregistered types).
const frameVersion = 1

// flag bits of the frame header.
const flagIsReply = 1 << 0

// AppendMessage appends m's binary frame body to b. It allocates nothing
// beyond growing b when the payload type has a registered wire codec.
func AppendMessage(b []byte, m *Message) ([]byte, error) {
	b = append(b, frameVersion)
	b = wire.AppendVarint(b, int64(m.From))
	b = wire.AppendVarint(b, int64(m.To))
	b = wire.AppendUvarint(b, m.Clock)
	b = wire.AppendUvarint(b, uint64(m.Kind))
	b = wire.AppendUvarint(b, m.Corr)
	var flags byte
	if m.IsReply {
		flags |= flagIsReply
	}
	b = append(b, flags)
	return wire.AppendAny(b, m.Payload)
}

// DecodeMessage decodes one frame body into m using r (whose intern
// table makes recurring object IDs allocation-free). It returns an error
// — never panics — on malformed input.
func DecodeMessage(r *wire.Reader, m *Message) error {
	if r.Len() < 1 {
		return wire.ErrTruncated
	}
	ver := r.Uvarint()
	if ver != frameVersion {
		return fmt.Errorf("%w: frame version %d", wire.ErrMalformed, ver)
	}
	m.From = NodeID(r.Varint())
	m.To = NodeID(r.Varint())
	m.Clock = r.Uvarint()
	kind := r.Uvarint()
	if kind > 1<<16-1 {
		return fmt.Errorf("%w: kind %d out of range", wire.ErrMalformed, kind)
	}
	m.Kind = Kind(kind)
	m.Corr = r.Uvarint()
	flags := r.Uvarint()
	if flags > 0xff {
		return fmt.Errorf("%w: flag byte %d", wire.ErrMalformed, flags)
	}
	m.IsReply = flags&flagIsReply != 0
	m.Payload = r.Any(nil)
	return r.Err()
}
