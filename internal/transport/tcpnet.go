package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// TCPNode is a Transport over real TCP sockets using encoding/gob framing.
// It lets the same D-STM stack run as one OS process per node (see
// cmd/dstmnode). Payload types must be registered with RegisterPayload.
type TCPNode struct {
	id    NodeID
	ln    net.Listener
	peers map[NodeID]string

	handler atomic.Value // Handler

	mu       sync.Mutex
	conns    map[NodeID]*tcpConn
	accepted map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

type tcpConn struct {
	mu  sync.Mutex // serialises writes
	c   net.Conn
	enc *gob.Encoder
}

// NewTCPNode starts listening on listenAddr and will dial peers lazily.
// peers maps every cluster node (including self, ignored) to its address.
func NewTCPNode(id NodeID, listenAddr string, peers map[NodeID]string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", listenAddr, err)
	}
	n := &TCPNode{
		id:       id,
		ln:       ln,
		peers:    peers,
		conns:    make(map[NodeID]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeers installs (or replaces) the peer address table. Peers are dialled
// lazily, so the table may be set any time before the first Send to a given
// node — convenient when all nodes bind ":0" ports first and exchange
// addresses afterwards.
func (n *TCPNode) SetPeers(peers map[NodeID]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = peers
}

// Self implements Transport.
func (n *TCPNode) Self() NodeID { return n.id }

// SetHandler implements Transport.
func (n *TCPNode) SetHandler(h Handler) { n.handler.Store(h) }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.accepted[c] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(c)
	}
}

func (n *TCPNode) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.accepted, c)
		n.mu.Unlock()
		c.Close()
	}()
	dec := gob.NewDecoder(c)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		if h, _ := n.handler.Load().(Handler); h != nil {
			h(&m)
		}
	}
}

// Send implements Transport.
func (n *TCPNode) Send(m *Message) error {
	tc, err := n.conn(m.To)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := tc.enc.Encode(m); err != nil {
		// Drop the broken connection; a later Send re-dials.
		n.dropConn(m.To, tc)
		return fmt.Errorf("tcpnet: send to node %d: %w", m.To, err)
	}
	return nil
}

func (n *TCPNode) conn(to NodeID) (*tcpConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if tc, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return tc, nil
	}
	addr, ok := n.peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, ErrUnknownNode
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial node %d at %s: %w", to, addr, err)
	}
	tc := &tcpConn{c: c, enc: gob.NewEncoder(c)}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[to]; ok {
		// Lost a dial race; keep the existing connection.
		n.mu.Unlock()
		c.Close()
		return existing, nil
	}
	n.conns[to] = tc
	n.mu.Unlock()
	return tc, nil
}

func (n *TCPNode) dropConn(to NodeID, tc *tcpConn) {
	n.mu.Lock()
	if cur, ok := n.conns[to]; ok && cur == tc {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	tc.c.Close()
}

// Close implements Transport.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := n.conns
	n.conns = map[NodeID]*tcpConn{}
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()
	n.ln.Close()
	for _, tc := range conns {
		tc.c.Close()
	}
	// Close inbound connections too: Close must not depend on remote peers
	// shutting down first.
	for _, c := range accepted {
		c.Close()
	}
	n.wg.Wait()
	return nil
}
