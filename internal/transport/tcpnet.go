package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dstm/internal/wire"
)

// Codec selects the TCP wire format.
type Codec uint8

// The two TCP codecs.
const (
	// CodecBinary is the hand-rolled zero-allocation wire codec with
	// connection multiplexing and write coalescing — the default.
	CodecBinary Codec = iota
	// CodecGob is the legacy encoding/gob framing (one stream encoder per
	// dialled connection, one write per message). Kept as the measured
	// baseline for the wire benchmark and for comparison in tests.
	CodecGob
)

func (c Codec) String() string {
	if c == CodecGob {
		return "gob"
	}
	return "binary"
}

// TCPOptions tunes a TCPNode beyond the defaults.
type TCPOptions struct {
	// Codec selects the wire format (default CodecBinary). All nodes of a
	// cluster must agree.
	Codec Codec
	// FlushDelay (binary codec only): after a frame lands in an empty
	// write buffer, the writer waits up to this long for more frames
	// before issuing the write — trading a bounded latency bump for fewer,
	// larger syscalls. 0 writes immediately; frames arriving while a write
	// syscall is in flight still coalesce into the next write.
	FlushDelay time.Duration
	// MaxBuffered is the per-connection soft cap, in bytes, on coalesced
	// frames awaiting the writer; Send blocks (backpressure) while the
	// buffer is over it. 0 means 1 MiB.
	MaxBuffered int
}

// WireStats counts a node's TCP traffic. Writes is the number of write
// syscalls issued, so BytesSent/Writes exposes the coalescing factor.
type WireStats struct {
	MsgsSent  uint64
	BytesSent uint64
	MsgsRecv  uint64
	BytesRecv uint64
	Writes    uint64
	Dials     uint64
}

// maxFrame bounds an inbound frame's claimed size: a malformed or
// hostile peer must not be able to force an unbounded allocation.
const maxFrame = 16 << 20

// helloMagic opens every dialled binary-codec connection, followed by a
// version byte and the dialler's node ID, so the acceptor can register
// the connection for its own outbound traffic (one multiplexed
// connection per peer pair instead of one per direction).
var helloMagic = [4]byte{'D', 'S', 'T', 'M'}

// TCPNode is a Transport over real TCP sockets. It lets the same D-STM
// stack run as one OS process per node (see cmd/dstmnode).
//
// With the default binary codec each peer pair shares one multiplexed
// connection (replies and pushes reuse the connection the requester
// dialled; correlation IDs at the cluster layer demultiplex), frames are
// encoded with the zero-allocation wire codec straight into a per-
// connection coalescing buffer, and a writer goroutine batches queued
// frames into single write syscalls. CodecGob preserves the legacy
// gob-per-message framing as a baseline. Payload types outside the core
// protocol must be registered with RegisterPayload (both codecs; the
// binary codec falls back to an embedded gob blob for them).
type TCPNode struct {
	id    NodeID
	ln    net.Listener
	opts  TCPOptions
	peers map[NodeID]string

	handler atomic.Value // Handler

	mu       sync.Mutex
	conns    map[NodeID]*tcpConn
	accepted map[net.Conn]struct{}
	closed   bool

	msgsSent  atomic.Uint64
	bytesSent atomic.Uint64
	msgsRecv  atomic.Uint64
	bytesRecv atomic.Uint64
	writes    atomic.Uint64
	dials     atomic.Uint64

	wg sync.WaitGroup
}

// tcpConn is one established connection used for sending. In binary mode
// writes go through the coalescing buffer and writer goroutine; in gob
// mode enc writes synchronously under mu.
type tcpConn struct {
	c net.Conn

	mu   sync.Mutex
	cond *sync.Cond

	// Binary mode state.
	pending []byte // frames encoded, awaiting the writer
	spare   []byte // recycled buffer for the next batch
	queued  int    // frames in pending
	werr    error  // first write error; conn is dead once set
	closed  bool

	// Gob mode state.
	enc *gob.Encoder
}

// NewTCPNode starts listening on listenAddr with default options and
// will dial peers lazily. peers maps every cluster node (including self,
// ignored) to its address.
func NewTCPNode(id NodeID, listenAddr string, peers map[NodeID]string) (*TCPNode, error) {
	return NewTCPNodeOpts(id, listenAddr, peers, TCPOptions{})
}

// NewTCPNodeOpts is NewTCPNode with explicit codec/coalescing options.
func NewTCPNodeOpts(id NodeID, listenAddr string, peers map[NodeID]string, opts TCPOptions) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", listenAddr, err)
	}
	if opts.MaxBuffered <= 0 {
		opts.MaxBuffered = 1 << 20
	}
	n := &TCPNode{
		id:       id,
		ln:       ln,
		opts:     opts,
		peers:    peers,
		conns:    make(map[NodeID]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeers installs (or replaces) the peer address table. Peers are dialled
// lazily, so the table may be set any time before the first Send to a given
// node — convenient when all nodes bind ":0" ports first and exchange
// addresses afterwards.
func (n *TCPNode) SetPeers(peers map[NodeID]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = peers
}

// Self implements Transport.
func (n *TCPNode) Self() NodeID { return n.id }

// SetHandler implements Transport.
func (n *TCPNode) SetHandler(h Handler) { n.handler.Store(h) }

// Stats returns a snapshot of the node's wire traffic counters.
func (n *TCPNode) Stats() WireStats {
	return WireStats{
		MsgsSent:  n.msgsSent.Load(),
		BytesSent: n.bytesSent.Load(),
		MsgsRecv:  n.msgsRecv.Load(),
		BytesRecv: n.bytesRecv.Load(),
		Writes:    n.writes.Load(),
		Dials:     n.dials.Load(),
	}
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.accepted[c] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(c)
	}
}

// serveConn handles one accepted connection: in binary mode it reads the
// hello, registers the connection for outbound traffic to that peer (the
// multiplexing half), then enters the frame read loop; in gob mode it
// decodes messages directly (the legacy one-conn-per-direction shape).
func (n *TCPNode) serveConn(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.accepted, c)
		n.mu.Unlock()
		c.Close()
	}()

	if n.opts.Codec == CodecGob {
		n.readLoopGob(c)
		return
	}

	br := bufio.NewReaderSize(c, 64<<10)
	peer, err := readHello(br)
	if err != nil {
		return
	}
	// Multiplex: reuse this inbound connection for our own sends to the
	// peer, so a pair of nodes converses over one connection. If we
	// already have one (e.g. both sides dialled at once), keep ours for
	// sending and just read from this one.
	tc := n.newBinaryConn(c)
	registered := false
	n.mu.Lock()
	if !n.closed {
		if _, exists := n.conns[peer]; !exists {
			n.conns[peer] = tc
			registered = true
		}
	}
	n.mu.Unlock()
	if registered {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.writeLoop(peer, tc)
		}()
	}

	n.readLoopBinary(br)

	if registered {
		n.dropConn(peer, tc)
	} else {
		tc.shutdown()
	}
}

// readHello consumes the dial preamble and returns the peer's node ID.
func readHello(br *bufio.Reader) (NodeID, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, err
	}
	if [4]byte(hdr[:4]) != helloMagic || hdr[4] != frameVersion {
		return 0, fmt.Errorf("tcpnet: bad hello")
	}
	return NodeID(int32(binary.BigEndian.Uint32(hdr[5:9]))), nil
}

// appendHello writes the dial preamble for this node.
func (n *TCPNode) appendHello(b []byte) []byte {
	b = append(b, helloMagic[:]...)
	b = append(b, frameVersion)
	return binary.BigEndian.AppendUint32(b, uint32(int32(n.id)))
}

// readLoopBinary decodes length-prefixed binary frames until the
// connection breaks. The frame buffer and wire.Reader (with its string
// intern table) are reused across messages; only the Message struct and
// payload escape to the handler.
func (n *TCPNode) readLoopBinary(br *bufio.Reader) {
	var lenb [4]byte
	var body []byte
	r := wire.NewReader(nil)
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenb[:])
		if size > maxFrame {
			return // hostile or corrupt peer; drop the connection
		}
		if cap(body) < int(size) {
			body = make([]byte, size)
		}
		body = body[:size]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		n.msgsRecv.Add(1)
		n.bytesRecv.Add(uint64(size) + 4)
		m := &Message{}
		r.Reset(body)
		if err := DecodeMessage(r, m); err != nil {
			return // malformed frame; drop the connection
		}
		if h, _ := n.handler.Load().(Handler); h != nil {
			h(m)
		}
	}
}

func (n *TCPNode) readLoopGob(c net.Conn) {
	cr := &countingReader{r: c, n: &n.bytesRecv}
	dec := gob.NewDecoder(cr)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		n.msgsRecv.Add(1)
		if h, _ := n.handler.Load().(Handler); h != nil {
			h(&m)
		}
	}
}

// countingReader counts bytes read through it.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	k, err := cr.r.Read(p)
	cr.n.Add(uint64(k))
	return k, err
}

// countingWriter counts bytes written through it.
type countingWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	k, err := cw.w.Write(p)
	cw.n.Add(uint64(k))
	return k, err
}

// Send implements Transport.
func (n *TCPNode) Send(m *Message) error {
	tc, err := n.conn(m.To)
	if err != nil {
		return err
	}
	if n.opts.Codec == CodecGob {
		return n.sendGob(m, tc)
	}
	return n.sendBinary(m, tc)
}

// sendBinary encodes m straight into the connection's coalescing buffer
// (4-byte big-endian length prefix, then the frame body) and wakes the
// writer. It blocks briefly for backpressure when the buffer is over
// MaxBuffered.
func (n *TCPNode) sendBinary(m *Message, tc *tcpConn) error {
	tc.mu.Lock()
	for len(tc.pending) > n.opts.MaxBuffered && tc.werr == nil && !tc.closed {
		tc.cond.Wait()
	}
	if tc.werr != nil || tc.closed {
		err := tc.werr
		tc.mu.Unlock()
		n.dropConn(m.To, tc)
		if err == nil {
			err = net.ErrClosed
		}
		return fmt.Errorf("tcpnet: send to node %d: %w", m.To, err)
	}
	// Reserve the length prefix, encode the body, then patch the length.
	start := len(tc.pending)
	tc.pending = append(tc.pending, 0, 0, 0, 0)
	var err error
	tc.pending, err = AppendMessage(tc.pending, m)
	if err != nil {
		tc.pending = tc.pending[:start]
		tc.mu.Unlock()
		return fmt.Errorf("tcpnet: send to node %d: %w", m.To, err)
	}
	body := len(tc.pending) - start - 4
	if body > maxFrame {
		tc.pending = tc.pending[:start]
		tc.mu.Unlock()
		return fmt.Errorf("tcpnet: send to node %d: frame of %d bytes exceeds limit", m.To, body)
	}
	binary.BigEndian.PutUint32(tc.pending[start:start+4], uint32(body))
	tc.queued++
	tc.cond.Broadcast()
	tc.mu.Unlock()
	n.msgsSent.Add(1)
	return nil
}

func (n *TCPNode) sendGob(m *Message, tc *tcpConn) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := tc.enc.Encode(m); err != nil {
		// Drop the broken connection; a later Send re-dials.
		n.dropConn(m.To, tc)
		return fmt.Errorf("tcpnet: send to node %d: %w", m.To, err)
	}
	n.msgsSent.Add(1)
	n.writes.Add(1)
	return nil
}

// writeLoop drains tc.pending into write syscalls. While a write is in
// flight new frames accumulate, so bursts coalesce naturally; FlushDelay
// adds an explicit wait after the first frame of a batch to trade a
// bounded latency bump for even fewer syscalls.
func (n *TCPNode) writeLoop(to NodeID, tc *tcpConn) {
	flush := n.opts.FlushDelay
	tc.mu.Lock()
	for {
		for len(tc.pending) == 0 && !tc.closed && tc.werr == nil {
			tc.cond.Wait()
		}
		if tc.werr != nil || (tc.closed && len(tc.pending) == 0) {
			tc.mu.Unlock()
			return
		}
		if flush > 0 && !tc.closed {
			tc.mu.Unlock()
			time.Sleep(flush)
			tc.mu.Lock()
		}
		buf := tc.pending
		tc.pending = tc.spare[:0]
		tc.spare = nil
		tc.queued = 0
		tc.mu.Unlock()

		_, err := tc.c.Write(buf)
		n.writes.Add(1)
		n.bytesSent.Add(uint64(len(buf)))

		tc.mu.Lock()
		tc.spare = buf[:0]
		if err != nil {
			tc.werr = err
			tc.cond.Broadcast()
			tc.mu.Unlock()
			n.dropConn(to, tc)
			return
		}
		tc.cond.Broadcast() // release senders blocked on backpressure
	}
}

// newBinaryConn wraps c for coalesced binary writes.
func (n *TCPNode) newBinaryConn(c net.Conn) *tcpConn {
	tc := &tcpConn{c: c}
	tc.cond = sync.NewCond(&tc.mu)
	return tc
}

// conn returns the established connection to `to`, dialling if needed.
func (n *TCPNode) conn(to NodeID) (*tcpConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if tc, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return tc, nil
	}
	addr, ok := n.peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, ErrUnknownNode
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial node %d at %s: %w", to, addr, err)
	}
	n.dials.Add(1)

	var tc *tcpConn
	if n.opts.Codec == CodecGob {
		tc = &tcpConn{c: c, enc: gob.NewEncoder(&countingWriter{w: c, n: &n.bytesSent})}
		tc.cond = sync.NewCond(&tc.mu)
	} else {
		tc = n.newBinaryConn(c)
		tc.pending = n.appendHello(tc.pending)
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[to]; ok {
		// Lost a dial race; keep the existing connection.
		n.mu.Unlock()
		c.Close()
		return existing, nil
	}
	n.conns[to] = tc
	n.mu.Unlock()

	if n.opts.Codec == CodecBinary {
		// The dialled connection is bidirectional: the peer replies over
		// it, so read it too, and drain our writes to it.
		n.wg.Add(2)
		go func() {
			defer n.wg.Done()
			n.writeLoop(to, tc)
		}()
		go func() {
			defer n.wg.Done()
			defer func() { n.dropConn(to, tc); c.Close() }()
			n.readLoopBinary(bufio.NewReaderSize(c, 64<<10))
		}()
	}
	return tc, nil
}

// dropConn removes tc from the send table (if still current) and closes
// the socket, releasing any goroutine blocked on it.
func (n *TCPNode) dropConn(to NodeID, tc *tcpConn) {
	n.mu.Lock()
	if cur, ok := n.conns[to]; ok && cur == tc {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	tc.shutdown()
}

// shutdown marks the conn closed, wakes its writer and blocked senders,
// and closes the socket.
func (tc *tcpConn) shutdown() {
	tc.mu.Lock()
	tc.closed = true
	tc.cond.Broadcast()
	tc.mu.Unlock()
	tc.c.Close()
}

// Close implements Transport.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := n.conns
	n.conns = map[NodeID]*tcpConn{}
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()
	n.ln.Close()
	for _, tc := range conns {
		tc.shutdown()
	}
	// Close inbound connections too: Close must not depend on remote peers
	// shutting down first.
	for _, c := range accepted {
		c.Close()
	}
	n.wg.Wait()
	return nil
}
