package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// newTCPPairOpts is newTCPPair with explicit options on both nodes.
func newTCPPairOpts(t *testing.T, opts TCPOptions) (*TCPNode, *TCPNode) {
	t.Helper()
	a, err := NewTCPNodeOpts(0, "127.0.0.1:0", nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPNodeOpts(1, "127.0.0.1:0", nil, opts)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	peers := map[NodeID]string{0: a.Addr(), 1: b.Addr()}
	a.SetPeers(peers)
	b.SetPeers(peers)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestTCPMuxNoReverseDial: with the binary codec, a node that has only
// received traffic replies over the connection the peer dialled — one
// multiplexed connection per peer pair, zero reverse dials.
func TestTCPMuxNoReverseDial(t *testing.T) {
	a, b := newTCPPairOpts(t, TCPOptions{Codec: CodecBinary})

	done := make(chan *Message, 1)
	a.SetHandler(func(m *Message) { done <- m })
	// b echoes every message back to its sender.
	b.SetHandler(func(m *Message) {
		_ = b.Send(&Message{From: 1, To: m.From, Kind: m.Kind, Corr: m.Corr, IsReply: true,
			Payload: m.Payload})
	})

	if err := a.Send(&Message{From: 0, To: 1, Kind: 9, Corr: 77, Payload: tcpPayload{N: 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if !m.IsReply || m.Corr != 77 {
			t.Fatalf("bad echo %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no echo")
	}

	if d := b.Stats().Dials; d != 0 {
		t.Fatalf("replying node dialled %d times; want 0 (mux over inbound conn)", d)
	}
	if d := a.Stats().Dials; d != 1 {
		t.Fatalf("requester dialled %d times; want 1", d)
	}
}

// TestTCPWriteCoalescing: a burst of small sends must land in far fewer
// write syscalls than messages, given a flush window.
func TestTCPWriteCoalescing(t *testing.T) {
	a, b := newTCPPairOpts(t, TCPOptions{Codec: CodecBinary, FlushDelay: 2 * time.Millisecond})

	const burst = 200
	var mu sync.Mutex
	recv := 0
	got := make(chan struct{})
	b.SetHandler(func(m *Message) {
		mu.Lock()
		recv++
		if recv == burst {
			close(got)
		}
		mu.Unlock()
	})

	for i := 0; i < burst; i++ {
		if err := a.Send(&Message{From: 0, To: 1, Kind: 2, Corr: uint64(i + 1),
			Payload: tcpPayload{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		mu.Lock()
		t.Fatalf("only %d/%d delivered", recv, burst)
	}

	st := a.Stats()
	if st.MsgsSent != burst {
		t.Fatalf("sent %d msgs, want %d", st.MsgsSent, burst)
	}
	if st.Writes >= burst/2 {
		t.Fatalf("%d writes for %d msgs: coalescing ineffective", st.Writes, burst)
	}
}

// TestTCPStatsCounters: both directions count messages and bytes.
func TestTCPStatsCounters(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		t.Run(codec.String(), func(t *testing.T) {
			a, b := newTCPPairOpts(t, TCPOptions{Codec: codec})
			got := make(chan struct{}, 4)
			b.SetHandler(func(m *Message) { got <- struct{}{} })
			for i := 0; i < 4; i++ {
				if err := a.Send(&Message{From: 0, To: 1, Kind: 5, Payload: tcpPayload{N: i, S: "abc"}}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 4; i++ {
				select {
				case <-got:
				case <-time.After(2 * time.Second):
					t.Fatal("delivery timeout")
				}
			}
			as, bs := a.Stats(), b.Stats()
			if as.MsgsSent != 4 || bs.MsgsRecv != 4 {
				t.Fatalf("msgs: sent=%d recv=%d, want 4/4", as.MsgsSent, bs.MsgsRecv)
			}
			if as.BytesSent == 0 || bs.BytesRecv == 0 {
				t.Fatalf("bytes not counted: sent=%d recv=%d", as.BytesSent, bs.BytesRecv)
			}
		})
	}
}

// TestTCPGobModeRoundTrip: the legacy gob framing still works end to end
// (it is the measured baseline of the wire benchmark).
func TestTCPGobModeRoundTrip(t *testing.T) {
	a, b := newTCPPairOpts(t, TCPOptions{Codec: CodecGob})
	got := make(chan *Message, 1)
	b.SetHandler(func(m *Message) { got <- m })
	if err := a.Send(&Message{From: 0, To: 1, Kind: 3, Clock: 9, Payload: tcpPayload{N: 7, S: "gob"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if p, ok := m.Payload.(tcpPayload); !ok || p.N != 7 || p.S != "gob" || m.Clock != 9 {
			t.Fatalf("bad message %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery in gob mode")
	}
}

// TestTCPConcurrentSendersManyMessages: hammer one connection from many
// goroutines; every message must arrive intact (framing under coalescing
// is race-free).
func TestTCPConcurrentSendersManyMessages(t *testing.T) {
	a, b := newTCPPairOpts(t, TCPOptions{Codec: CodecBinary})

	const senders, per = 8, 50
	var mu sync.Mutex
	seen := make(map[string]bool)
	done := make(chan struct{})
	b.SetHandler(func(m *Message) {
		p := m.Payload.(tcpPayload)
		mu.Lock()
		seen[p.S] = true
		if len(seen) == senders*per {
			close(done)
		}
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("s%d/m%d", s, i)
				if err := a.Send(&Message{From: 0, To: 1, Kind: 1, Payload: tcpPayload{S: key}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		mu.Lock()
		t.Fatalf("only %d/%d messages arrived", len(seen), senders*per)
	}
}
