package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig parameterises a FaultModel. All probabilities are in [0, 1]
// and are evaluated independently per message from a deterministic,
// seed-derived stream, so a run is exactly reproducible from its seed.
type FaultConfig struct {
	// Seed selects the deterministic fault stream. Two models with the
	// same seed and config make identical decisions for identical
	// per-link message sequences.
	Seed uint64
	// Drop is the probability a message is lost (no copy delivered).
	Drop float64
	// Duplicate is the probability a second copy of a delivered message
	// is injected, arriving out of FIFO order after an extra delay.
	Duplicate float64
	// Reorder is the probability a delivered message escapes its link's
	// FIFO order, arriving after an extra delay while later messages
	// overtake it.
	Reorder float64
	// MaxExtraDelay bounds the extra delay charged to reordered and
	// duplicated copies. 0 means 2 ms.
	MaxExtraDelay time.Duration
}

// DefaultMaxExtraDelay is the MaxExtraDelay used when the config leaves it
// zero.
const DefaultMaxExtraDelay = 2 * time.Millisecond

// Outcome is the fault model's verdict on one message.
type Outcome struct {
	// Drop true means no copy is delivered.
	Drop bool
	// Delay, when positive, delivers the primary copy out of FIFO order
	// after this extra delay (on top of the link latency).
	Delay time.Duration
	// Dup true injects a second copy, delivered out of FIFO order after
	// DupDelay extra delay.
	Dup      bool
	DupDelay time.Duration
}

// FaultStats counts the faults a model has injected.
type FaultStats struct {
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
}

// FaultModel is a deterministic, seeded fault injector for the simulated
// network: per-message drop / duplicate / reorder plus whole-link
// partitions and whole-node crash/restart. Install it on a Network with
// SetFaults. All methods are safe for concurrent use.
//
// A "crashed" node is modelled as fully disconnected: every message to or
// from it is lost while it is down (fail-stop with its in-memory state
// surviving — a network-equivalent of a crash/restart for protocols whose
// volatile state is the conversation itself). Self-sends are never faulted:
// a node's local delivery does not cross the network.
type FaultModel struct {
	cfg FaultConfig

	mu   sync.Mutex
	seq  map[uint64]uint64 // per-directed-link message counters
	cut  map[uint64]bool   // severed directed links
	down map[NodeID]bool   // crashed nodes

	dropped    atomic.Uint64
	duplicated atomic.Uint64
	reordered  atomic.Uint64
}

// NewFaultModel builds a model from cfg.
func NewFaultModel(cfg FaultConfig) *FaultModel {
	if cfg.MaxExtraDelay <= 0 {
		cfg.MaxExtraDelay = DefaultMaxExtraDelay
	}
	return &FaultModel{
		cfg:  cfg,
		seq:  make(map[uint64]uint64),
		cut:  make(map[uint64]bool),
		down: make(map[NodeID]bool),
	}
}

func linkKey(from, to NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// u01 maps a hash to [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Decide returns the fate of the next message on the from→to link. It is
// deterministic: the n-th call for a given directed link always returns the
// same outcome for the same seed and config.
func (f *FaultModel) Decide(from, to NodeID) Outcome {
	if from == to {
		return Outcome{}
	}
	key := linkKey(from, to)

	f.mu.Lock()
	if f.down[from] || f.down[to] || f.cut[key] {
		f.mu.Unlock()
		f.dropped.Add(1)
		return Outcome{Drop: true}
	}
	f.seq[key]++
	seq := f.seq[key]
	f.mu.Unlock()

	h := splitmix64(f.cfg.Seed ^ key*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9)
	var out Outcome
	if u01(h) < f.cfg.Drop {
		f.dropped.Add(1)
		return Outcome{Drop: true}
	}
	h = splitmix64(h)
	if u01(h) < f.cfg.Reorder {
		h = splitmix64(h)
		out.Delay = time.Duration(1 + uint64(float64(f.cfg.MaxExtraDelay)*u01(h)))
		f.reordered.Add(1)
	}
	h = splitmix64(h)
	if u01(h) < f.cfg.Duplicate {
		h = splitmix64(h)
		out.Dup = true
		out.DupDelay = time.Duration(1 + uint64(float64(f.cfg.MaxExtraDelay)*u01(h)))
		f.duplicated.Add(1)
	}
	return out
}

// Partition severs the link between a and b in both directions.
func (f *FaultModel) Partition(a, b NodeID) {
	f.mu.Lock()
	f.cut[linkKey(a, b)] = true
	f.cut[linkKey(b, a)] = true
	f.mu.Unlock()
}

// Heal restores the link between a and b in both directions.
func (f *FaultModel) Heal(a, b NodeID) {
	f.mu.Lock()
	delete(f.cut, linkKey(a, b))
	delete(f.cut, linkKey(b, a))
	f.mu.Unlock()
}

// Partitioned reports whether the a→b direction is currently severed
// (by Partition or by a crash of either end).
func (f *FaultModel) Partitioned(a, b NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cut[linkKey(a, b)] || f.down[a] || f.down[b]
}

// Crash disconnects node n entirely: every message to or from it is lost
// until Restart.
func (f *FaultModel) Crash(n NodeID) {
	f.mu.Lock()
	f.down[n] = true
	f.mu.Unlock()
}

// Restart reconnects a crashed node. Messages lost while it was down stay
// lost; new traffic flows normally.
func (f *FaultModel) Restart(n NodeID) {
	f.mu.Lock()
	delete(f.down, n)
	f.mu.Unlock()
}

// Crashed reports whether n is currently down.
func (f *FaultModel) Crashed(n NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[n]
}

// Stats returns the model's injected-fault counters.
func (f *FaultModel) Stats() FaultStats {
	return FaultStats{
		Dropped:    f.dropped.Load(),
		Duplicated: f.duplicated.Load(),
		Reordered:  f.reordered.Load(),
	}
}
