// Package transport provides the message-passing layer of the simulated
// cluster: a common Message format and Transport interface with two
// implementations — an in-memory network with a configurable per-link
// latency model (memnet.go), and a TCP transport (tcpnet.go) for real
// multi-process deployments, framing messages with the zero-allocation
// binary codec of internal/wire (with a legacy encoding/gob mode kept as
// the measured baseline).
//
// The paper's testbed is 80 physical nodes joined by message-passing links
// with 1–50 ms delays; the in-memory network reproduces that topology with
// one endpoint per node and deterministic per-link delays, scaled so a full
// experiment sweep runs on a single machine.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
)

// NodeID identifies a node in the cluster. Nodes are numbered 0..N-1.
type NodeID int32

// Kind tags the payload type of a message so receivers can route it without
// reflection. Subsystems carve out their own ranges (see cluster, cc, stm).
type Kind uint16

// Message is the unit of communication. Clock carries the sender's TFA
// logical clock for asynchronous clock synchronisation; Corr correlates a
// reply with its request (0 for one-way notifications).
type Message struct {
	From    NodeID
	To      NodeID
	Clock   uint64
	Kind    Kind
	Corr    uint64
	IsReply bool
	Payload any
}

// Handler receives every message delivered to an endpoint. Handlers must
// not block for long: the in-memory network delivers each link's messages
// in FIFO order from a single goroutine.
type Handler func(m *Message)

// Transport is one node's attachment to the network.
type Transport interface {
	// Self returns this endpoint's node ID.
	Self() NodeID
	// Send queues m for delivery to m.To. It returns an error if the
	// transport is closed or the destination is unknown.
	Send(m *Message) error
	// SetHandler installs the delivery callback. It must be called before
	// the first message can be delivered; messages arriving earlier are
	// dropped.
	SetHandler(h Handler)
	// Close shuts the endpoint down. Subsequent Sends fail.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknownNode is returned by Send when the destination does not exist.
var ErrUnknownNode = errors.New("transport: unknown destination node")

// RegisterPayload registers a payload type with encoding/gob for use with
// the TCP transport: gob is both the CodecGob wire format and the binary
// codec's fallback for types without a wire.Register codec. The in-memory
// transport does not need registration.
func RegisterPayload(v any) { gob.Register(v) }

func init() {
	gob.Register(Message{})
}

func (k Kind) String() string { return fmt.Sprintf("kind(%d)", uint16(k)) }
