// Package cluster layers a request/response (RPC) discipline over the raw
// transport: correlation IDs, per-kind handler dispatch, remote error
// propagation, and TFA clock piggybacking (every outgoing message carries
// the node's clock; every incoming message merges into it).
//
// One Endpoint exists per node. Owner-side protocol handlers (directory,
// object retrieval, commit) register themselves by message Kind.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dstm/internal/transport"
	"dstm/internal/vclock"
)

// RequestHandler serves one RPC kind: it receives the sender and payload
// and returns the reply payload or an error (propagated to the caller as a
// *RemoteError). Handlers run on their own goroutine and may block.
type RequestHandler func(from transport.NodeID, payload any) (any, error)

// NotifyHandler serves a one-way message kind. It is invoked synchronously
// on the delivery path and must return quickly.
type NotifyHandler func(from transport.NodeID, payload any)

// RemoteError wraps an error string returned by a remote handler.
type RemoteError struct {
	Node transport.NodeID
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error from node %d: %s", e.Node, e.Msg)
}

// ErrEndpointClosed is returned by calls issued after Close.
var ErrEndpointClosed = errors.New("cluster: endpoint closed")

// DefaultCallTimeout bounds RPCs whose context carries no deadline, so a
// lost message cannot wedge a transaction forever.
const DefaultCallTimeout = 30 * time.Second

// envelope is the wire format for replies.
type envelope struct {
	Err  string
	Body any
}

func init() {
	transport.RegisterPayload(envelope{})
}

// Endpoint is one node's RPC attachment.
type Endpoint struct {
	tr    transport.Transport
	clock *vclock.Clock

	corr atomic.Uint64

	mu       sync.Mutex
	pending  map[uint64]chan *transport.Message
	handlers map[transport.Kind]RequestHandler
	notifies map[transport.Kind]NotifyHandler
	closed   bool
}

// NewEndpoint wraps tr. The clock is shared with the node's STM runtime so
// messaging and commits advance the same TFA clock.
func NewEndpoint(tr transport.Transport, clock *vclock.Clock) *Endpoint {
	e := &Endpoint{
		tr:       tr,
		clock:    clock,
		pending:  make(map[uint64]chan *transport.Message),
		handlers: make(map[transport.Kind]RequestHandler),
		notifies: make(map[transport.Kind]NotifyHandler),
	}
	tr.SetHandler(e.onMessage)
	return e
}

// Self returns this endpoint's node ID.
func (e *Endpoint) Self() transport.NodeID { return e.tr.Self() }

// Clock returns the node's TFA clock.
func (e *Endpoint) Clock() *vclock.Clock { return e.clock }

// Handle registers the RPC handler for kind. It panics on duplicate
// registration — kinds are a static protocol, so a duplicate is a bug.
func (e *Endpoint) Handle(kind transport.Kind, h RequestHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.handlers[kind]; dup {
		panic(fmt.Sprintf("cluster: duplicate handler for %v", kind))
	}
	e.handlers[kind] = h
}

// HandleNotify registers the one-way handler for kind.
func (e *Endpoint) HandleNotify(kind transport.Kind, h NotifyHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.notifies[kind]; dup {
		panic(fmt.Sprintf("cluster: duplicate notify handler for %v", kind))
	}
	e.notifies[kind] = h
}

// Call performs a blocking RPC to node `to`. It returns the remote reply
// body, a *RemoteError if the remote handler failed, or a local error
// (context cancellation, closed endpoint, transport failure).
func (e *Endpoint) Call(ctx context.Context, to transport.NodeID, kind transport.Kind, payload any) (any, error) {
	corr := e.corr.Add(1)
	ch := make(chan *transport.Message, 1)

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEndpointClosed
	}
	e.pending[corr] = ch
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		delete(e.pending, corr)
		e.mu.Unlock()
	}()

	err := e.tr.Send(&transport.Message{
		From:    e.Self(),
		To:      to,
		Clock:   e.clock.Now(),
		Kind:    kind,
		Corr:    corr,
		Payload: payload,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: call %v to node %d: %w", kind, to, err)
	}

	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultCallTimeout)
		defer cancel()
	}

	select {
	case m := <-ch:
		env, ok := m.Payload.(envelope)
		if !ok {
			return nil, fmt.Errorf("cluster: malformed reply for %v from node %d", kind, to)
		}
		if env.Err != "" {
			return nil, &RemoteError{Node: to, Msg: env.Err}
		}
		return env.Body, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Notify sends a one-way message (no reply expected).
func (e *Endpoint) Notify(to transport.NodeID, kind transport.Kind, payload any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrEndpointClosed
	}
	return e.tr.Send(&transport.Message{
		From:    e.Self(),
		To:      to,
		Clock:   e.clock.Now(),
		Kind:    kind,
		Payload: payload,
	})
}

func (e *Endpoint) onMessage(m *transport.Message) {
	e.clock.Merge(m.Clock)

	if m.IsReply {
		e.mu.Lock()
		ch := e.pending[m.Corr]
		e.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default: // duplicate reply; drop
			}
		}
		return
	}

	if m.Corr != 0 {
		e.mu.Lock()
		h := e.handlers[m.Kind]
		e.mu.Unlock()
		if h == nil {
			e.reply(m, envelope{Err: fmt.Sprintf("no handler for %v", m.Kind)})
			return
		}
		// Requests run on their own goroutine so a slow handler never
		// blocks the delivery path (per-link FIFO goroutine in memnet).
		go func() {
			body, err := h(m.From, m.Payload)
			env := envelope{Body: body}
			if err != nil {
				env = envelope{Err: err.Error()}
			}
			e.reply(m, env)
		}()
		return
	}

	e.mu.Lock()
	h := e.notifies[m.Kind]
	e.mu.Unlock()
	if h != nil {
		h(m.From, m.Payload)
	}
}

func (e *Endpoint) reply(req *transport.Message, env envelope) {
	// Best effort: the caller times out if the reply cannot be sent.
	_ = e.tr.Send(&transport.Message{
		From:    e.Self(),
		To:      req.From,
		Clock:   e.clock.Now(),
		Kind:    req.Kind,
		Corr:    req.Corr,
		IsReply: true,
		Payload: env,
	})
}

// Close shuts the endpoint down and fails all pending calls.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	return e.tr.Close()
}
