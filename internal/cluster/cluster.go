// Package cluster layers a request/response (RPC) discipline over the raw
// transport: correlation IDs, per-kind handler dispatch, remote error
// propagation, and TFA clock piggybacking (every outgoing message carries
// the node's clock; every incoming message merges into it).
//
// One Endpoint exists per node. Owner-side protocol handlers (directory,
// object retrieval, commit) register themselves by message Kind.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dstm/internal/trace"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

// RequestHandler serves one RPC kind: it receives the sender and payload
// and returns the reply payload or an error (propagated to the caller as a
// *RemoteError). Handlers run on their own goroutine and may block.
type RequestHandler func(from transport.NodeID, payload any) (any, error)

// NotifyHandler serves a one-way message kind. It is invoked synchronously
// on the delivery path and must return quickly.
type NotifyHandler func(from transport.NodeID, payload any)

// RemoteError wraps an error string returned by a remote handler.
type RemoteError struct {
	Node transport.NodeID
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error from node %d: %s", e.Node, e.Msg)
}

// ErrEndpointClosed is returned by calls issued after Close.
var ErrEndpointClosed = errors.New("cluster: endpoint closed")

// ErrCallTimeout is returned when a call exhausts its retry budget (or the
// endpoint-imposed DefaultCallTimeout) without a reply. Unlike a caller
// deadline it signals a lost conversation, not a cancelled one, so the STM
// layer converts it into a transaction abort and retries.
var ErrCallTimeout = errors.New("cluster: call timed out awaiting reply")

// DefaultCallTimeout bounds RPCs whose context carries no deadline, so a
// lost message cannot wedge a transaction forever.
const DefaultCallTimeout = 30 * time.Second

// RetryPolicy controls Call's retransmission behaviour. A retransmission
// reuses the original correlation ID, and the receiving endpoint
// deduplicates requests by (sender, correlation), so retries are exactly-
// once with respect to handler execution even over a network that drops or
// duplicates messages.
type RetryPolicy struct {
	// PerTryTimeout is how long one attempt waits for a reply before
	// retransmitting. <= 0 disables retransmission: the single send waits
	// out the full call deadline (the pre-retry behaviour).
	PerTryTimeout time.Duration
	// BaseBackoff is the delay before the first retransmission; it doubles
	// each attempt (with ±50% deterministic jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts caps the total number of sends. 0 means unlimited —
	// bounded only by the call deadline.
	MaxAttempts int
}

// DefaultRetryPolicy is the endpoint's out-of-the-box behaviour: patient
// retransmission bounded by the call deadline. Chaos tests and lossy
// deployments install something far more aggressive via SetRetryPolicy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		PerTryTimeout: 2 * time.Second,
		BaseBackoff:   10 * time.Millisecond,
		MaxBackoff:    time.Second,
	}
}

// NoRetry is a RetryPolicy that sends once and waits out the deadline.
func NoRetry() RetryPolicy { return RetryPolicy{} }

// dedupCap bounds the per-endpoint duplicate-suppression cache. Entries
// are evicted oldest-first once the handler has replied; in-flight entries
// are never evicted.
const dedupCap = 4096

// envelope is the wire format for replies.
type envelope struct {
	Err  string
	Body any
}

func init() {
	transport.RegisterPayload(envelope{})
}

// dedupKey identifies one request for duplicate suppression: correlation
// IDs are unique per sender endpoint, so the pair is cluster-unique.
type dedupKey struct {
	from transport.NodeID
	corr uint64
}

// dedupEntry is one request's server-side state: in flight until the
// handler returns, then the cached reply that duplicates re-receive.
type dedupEntry struct {
	done bool
	env  envelope
}

// Endpoint is one node's RPC attachment.
type Endpoint struct {
	tr    transport.Transport
	clock *vclock.Clock

	corr   atomic.Uint64
	retry  atomic.Value // RetryPolicy
	tracer atomic.Pointer[trace.Recorder]

	mu        sync.Mutex
	pending   map[uint64]chan *transport.Message
	handlers  map[transport.Kind]RequestHandler
	notifies  map[transport.Kind]NotifyHandler
	dedup     map[dedupKey]*dedupEntry
	dedupFIFO []dedupKey
	closed    bool
	done      chan struct{} // closed by Close; fails pending calls fast
}

// NewEndpoint wraps tr. The clock is shared with the node's STM runtime so
// messaging and commits advance the same TFA clock.
func NewEndpoint(tr transport.Transport, clock *vclock.Clock) *Endpoint {
	e := &Endpoint{
		tr:       tr,
		clock:    clock,
		pending:  make(map[uint64]chan *transport.Message),
		handlers: make(map[transport.Kind]RequestHandler),
		notifies: make(map[transport.Kind]NotifyHandler),
		dedup:    make(map[dedupKey]*dedupEntry),
		done:     make(chan struct{}),
	}
	e.retry.Store(DefaultRetryPolicy())
	tr.SetHandler(e.onMessage)
	return e
}

// SetRetryPolicy replaces the endpoint's Call retransmission policy. Each
// Call reads the policy once when it starts; in-flight calls keep the
// policy they started with.
func (e *Endpoint) SetRetryPolicy(p RetryPolicy) { e.retry.Store(p) }

// RetryPolicy returns the endpoint's current retransmission policy.
func (e *Endpoint) RetryPolicy() RetryPolicy { return e.retry.Load().(RetryPolicy) }

// SetTracer installs a protocol event recorder on the messaging layer (nil
// disables). Every send and receive is emitted with its correlation ID so
// the trace checker can verify reply correlation.
func (e *Endpoint) SetTracer(tr *trace.Recorder) { e.tracer.Store(tr) }

// Self returns this endpoint's node ID.
func (e *Endpoint) Self() transport.NodeID { return e.tr.Self() }

// Clock returns the node's TFA clock.
func (e *Endpoint) Clock() *vclock.Clock { return e.clock }

// Handle registers the RPC handler for kind. It panics on duplicate
// registration — kinds are a static protocol, so a duplicate is a bug.
func (e *Endpoint) Handle(kind transport.Kind, h RequestHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.handlers[kind]; dup {
		panic(fmt.Sprintf("cluster: duplicate handler for %v", kind))
	}
	e.handlers[kind] = h
}

// HandleNotify registers the one-way handler for kind.
func (e *Endpoint) HandleNotify(kind transport.Kind, h NotifyHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.notifies[kind]; dup {
		panic(fmt.Sprintf("cluster: duplicate notify handler for %v", kind))
	}
	e.notifies[kind] = h
}

// Call performs a blocking RPC to node `to`. It returns the remote reply
// body, a *RemoteError if the remote handler failed, or a local error
// (context cancellation, closed endpoint, transport failure, ErrCallTimeout
// after the retry budget is spent).
//
// Lost requests and lost replies are retransmitted per the endpoint's
// RetryPolicy with exponential backoff and jitter. Every retransmission
// carries the original correlation ID, and the receiver deduplicates by
// (sender, correlation), so a retried call never re-executes its handler.
func (e *Endpoint) Call(ctx context.Context, to transport.NodeID, kind transport.Kind, payload any) (any, error) {
	corr := e.corr.Add(1)
	ch := make(chan *transport.Message, 1)

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEndpointClosed
	}
	e.pending[corr] = ch
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		delete(e.pending, corr)
		e.mu.Unlock()
	}()

	// Bound the whole call so a lost conversation cannot wedge a
	// transaction forever. When the bound is ours (not the caller's), its
	// expiry reports ErrCallTimeout rather than a context error, so the
	// caller can tell a lost conversation from its own cancellation.
	imposed := false
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultCallTimeout)
		imposed = true
		defer cancel()
	}
	timeoutErr := func() error {
		if imposed && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return fmt.Errorf("%w: %v to node %d", ErrCallTimeout, kind, to)
		}
		return ctx.Err()
	}

	decode := func(m *transport.Message) (any, error) {
		env, ok := m.Payload.(envelope)
		if !ok {
			return nil, fmt.Errorf("cluster: malformed reply for %v from node %d", kind, to)
		}
		if env.Err != "" {
			return nil, &RemoteError{Node: to, Msg: env.Err}
		}
		return env.Body, nil
	}
	// await waits up to d (forever when d <= 0) for a reply or the context.
	// expired true means neither arrived and the caller should retransmit.
	await := func(d time.Duration) (body any, err error, expired bool) {
		var timer *time.Timer
		var expire <-chan time.Time
		if d > 0 {
			timer = time.NewTimer(d)
			expire = timer.C
			defer timer.Stop()
		}
		select {
		case m := <-ch:
			body, err = decode(m)
			return body, err, false
		case <-e.done:
			// Close drained the endpoint: no reply can ever arrive, so fail
			// now instead of sitting out the rest of the call deadline.
			return nil, ErrEndpointClosed, false
		case <-ctx.Done():
			return nil, timeoutErr(), false
		case <-expire:
			return nil, nil, true
		}
	}

	rp := e.RetryPolicy()
	backoff := rp.BaseBackoff
	for attempt := 1; ; attempt++ {
		// Emit the send event BEFORE handing the message to the transport:
		// delivery runs on another goroutine (synchronously, under zero
		// latency), so emitting afterwards can order the reply's recv event
		// ahead of this send in the same node's sequence — a false
		// "unsolicited reply" for the trace checker. A recorded send whose
		// message then fails to leave is harmless to every invariant.
		e.tracer.Load().Emit(trace.Event{Type: trace.EvMsgSend, Peer: to, Corr: corr, A: uint64(kind)})
		err := e.tr.Send(&transport.Message{
			From:    e.Self(),
			To:      to,
			Clock:   e.clock.Now(),
			Kind:    kind,
			Corr:    corr,
			Payload: payload,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: call %v to node %d: %w", kind, to, err)
		}

		body, err, expired := await(rp.PerTryTimeout)
		if !expired {
			return body, err
		}
		if rp.MaxAttempts > 0 && attempt >= rp.MaxAttempts {
			return nil, fmt.Errorf("%w: %v to node %d after %d attempts", ErrCallTimeout, kind, to, attempt)
		}
		// Back off before retransmitting — but keep listening: a reply that
		// was merely slow must still complete the call.
		if backoff > 0 {
			d := jitter(backoff, uint64(corr)^uint64(attempt)<<32^uint64(e.Self()))
			if body, err, expired := await(d); !expired {
				return body, err
			}
			backoff *= 2
			if rp.MaxBackoff > 0 && backoff > rp.MaxBackoff {
				backoff = rp.MaxBackoff
			}
		}
	}
}

// jitter spreads d by ±50% using a deterministic hash of the call identity,
// decorrelating retransmission storms without a shared RNG.
func jitter(d time.Duration, salt uint64) time.Duration {
	salt += 0x9e3779b97f4a7c15
	salt = (salt ^ (salt >> 30)) * 0xbf58476d1ce4e5b9
	salt = (salt ^ (salt >> 27)) * 0x94d049bb133111eb
	salt ^= salt >> 31
	frac := float64(salt>>11) / (1 << 53) // [0, 1)
	return time.Duration(float64(d) * (0.5 + frac))
}

// Notify sends a one-way message (no reply expected).
func (e *Endpoint) Notify(to transport.NodeID, kind transport.Kind, payload any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrEndpointClosed
	}
	err := e.tr.Send(&transport.Message{
		From:    e.Self(),
		To:      to,
		Clock:   e.clock.Now(),
		Kind:    kind,
		Payload: payload,
	})
	if err == nil {
		e.tracer.Load().Emit(trace.Event{Type: trace.EvMsgSend, Peer: to, A: uint64(kind)})
	}
	return err
}

func (e *Endpoint) onMessage(m *transport.Message) {
	e.clock.Merge(m.Clock)
	if tr := e.tracer.Load(); tr.Enabled() {
		ev := trace.Event{Type: trace.EvMsgRecv, Peer: m.From, Corr: m.Corr, A: uint64(m.Kind)}
		if m.IsReply {
			ev.Detail = "reply"
		}
		tr.Emit(ev)
	}

	if m.IsReply {
		e.mu.Lock()
		ch := e.pending[m.Corr]
		e.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default: // duplicate reply; drop
			}
		}
		return
	}

	if m.Corr != 0 {
		key := dedupKey{from: m.From, corr: m.Corr}
		e.mu.Lock()
		if ent, seen := e.dedup[key]; seen {
			// A retransmitted (or network-duplicated) request must not
			// re-execute its handler. If the original already replied,
			// resend the cached reply (the first one was evidently lost);
			// if it is still in flight, its completion will reply.
			done, env := ent.done, ent.env
			e.mu.Unlock()
			if done {
				e.reply(m, env)
			}
			return
		}
		ent := &dedupEntry{}
		e.dedup[key] = ent
		e.evictDedupLocked(key)
		h := e.handlers[m.Kind]
		e.mu.Unlock()
		// Requests run on their own goroutine so a slow handler never
		// blocks the delivery path (per-link FIFO goroutine in memnet).
		go func() {
			var env envelope
			if h == nil {
				env = envelope{Err: fmt.Sprintf("no handler for %v", m.Kind)}
			} else {
				body, err := h(m.From, m.Payload)
				env = envelope{Body: body}
				if err != nil {
					env = envelope{Err: err.Error()}
				}
			}
			e.mu.Lock()
			ent.done = true
			ent.env = env
			e.mu.Unlock()
			e.reply(m, env)
		}()
		return
	}

	e.mu.Lock()
	h := e.notifies[m.Kind]
	e.mu.Unlock()
	if h != nil {
		h(m.From, m.Payload)
	}
}

// evictDedupLocked appends key to the eviction queue and trims the cache
// to dedupCap, skipping (and re-queueing) entries whose handler is still
// running. Callers must hold e.mu.
func (e *Endpoint) evictDedupLocked(key dedupKey) {
	e.dedupFIFO = append(e.dedupFIFO, key)
	// Bound the scan so a cache full of in-flight entries cannot spin.
	for budget := len(e.dedupFIFO); len(e.dedup) > dedupCap && budget > 0; budget-- {
		oldest := e.dedupFIFO[0]
		e.dedupFIFO = e.dedupFIFO[1:]
		if ent, ok := e.dedup[oldest]; ok && !ent.done {
			e.dedupFIFO = append(e.dedupFIFO, oldest)
			continue
		}
		delete(e.dedup, oldest)
	}
}

func (e *Endpoint) reply(req *transport.Message, env envelope) {
	// Best effort: the caller times out if the reply cannot be sent.
	err := e.tr.Send(&transport.Message{
		From:    e.Self(),
		To:      req.From,
		Clock:   e.clock.Now(),
		Kind:    req.Kind,
		Corr:    req.Corr,
		IsReply: true,
		Payload: env,
	})
	if err == nil {
		e.tracer.Load().Emit(trace.Event{
			Type: trace.EvMsgSend, Peer: req.From, Corr: req.Corr, Detail: "reply", A: uint64(req.Kind),
		})
	}
}

// Close shuts the endpoint down and fails all pending calls: every Call
// blocked awaiting a reply returns ErrEndpointClosed promptly instead of
// waiting out its full deadline.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	e.mu.Unlock()
	return e.tr.Close()
}
