package cluster

import "dstm/internal/wire"

// wireIDEnvelope is the RPC reply envelope's wire type ID (see DESIGN.md
// "Wire format").
const wireIDEnvelope wire.ID = 2

func init() {
	wire.Register(wireIDEnvelope, envelope{},
		func(b []byte, v any) ([]byte, error) {
			e := v.(envelope)
			b = wire.AppendString(b, e.Err)
			return wire.AppendAny(b, e.Body)
		},
		func(r *wire.Reader, prev any) any {
			var e envelope
			if p, ok := prev.(envelope); ok {
				e = p
			}
			e.Err = r.String()
			e.Body = r.Any(e.Body)
			return e
		})
}
