package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dstm/internal/transport"
)

const kindCount transport.Kind = 110

// fastRetry is an aggressive policy suited to a zero-latency test network.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		PerTryTimeout: 20 * time.Millisecond,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
	}
}

// countingPair wires two endpoints with a handler on b that counts its
// executions and echoes the payload.
func countingPair(t *testing.T) (a, b *Endpoint, n *transport.Network, calls *atomic.Int64) {
	t.Helper()
	a, b, n = newPair(t, nil)
	calls = new(atomic.Int64)
	b.Handle(kindCount, func(_ transport.NodeID, p any) (any, error) {
		calls.Add(1)
		return p, nil
	})
	return a, b, n, calls
}

func TestCallRetriesLostRequest(t *testing.T) {
	a, _, n, calls := countingPair(t)
	a.SetRetryPolicy(fastRetry())

	// Drop the first two request transmissions; let everything else pass.
	var drops atomic.Int64
	n.SetInterceptor(func(m *transport.Message) bool {
		if !m.IsReply && m.Kind == kindCount && drops.Add(1) <= 2 {
			return false
		}
		return true
	})
	got, err := a.Call(context.Background(), 1, kindCount, "ping")
	if err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	if got != "ping" {
		t.Fatalf("got %v", got)
	}
	if c := calls.Load(); c != 1 {
		t.Fatalf("handler ran %d times, want 1", c)
	}
}

func TestCallRetriesLostReply(t *testing.T) {
	a, _, n, calls := countingPair(t)
	a.SetRetryPolicy(fastRetry())

	// Drop the first reply: the client must retransmit and the server must
	// answer from its dedup cache without re-running the handler.
	var drops atomic.Int64
	n.SetInterceptor(func(m *transport.Message) bool {
		if m.IsReply && m.Kind == kindCount && drops.Add(1) <= 1 {
			return false
		}
		return true
	})
	got, err := a.Call(context.Background(), 1, kindCount, "pong")
	if err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	if got != "pong" {
		t.Fatalf("got %v", got)
	}
	if c := calls.Load(); c != 1 {
		t.Fatalf("handler ran %d times, want exactly 1 (duplicate must hit the cache)", c)
	}
}

func TestCallDuplicatedRequestsSuppressed(t *testing.T) {
	a, _, n, calls := countingPair(t)
	a.SetRetryPolicy(fastRetry())

	// The network duplicates every message; handlers must still run once
	// per logical call.
	n.SetFaults(transport.NewFaultModel(transport.FaultConfig{
		Seed: 1, Duplicate: 1, MaxExtraDelay: time.Millisecond,
	}))
	for i := 0; i < 10; i++ {
		if _, err := a.Call(context.Background(), 1, kindCount, i); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Let straggling duplicate copies land before counting.
	time.Sleep(10 * time.Millisecond)
	if c := calls.Load(); c != 10 {
		t.Fatalf("handler ran %d times for 10 calls, want 10", c)
	}
}

func TestCallMaxAttemptsReturnsCallTimeout(t *testing.T) {
	a, _, n, calls := countingPair(t)
	p := fastRetry()
	p.MaxAttempts = 3
	a.SetRetryPolicy(p)

	n.SetInterceptor(func(m *transport.Message) bool { return m.IsReply }) // eat all requests
	start := time.Now()
	_, err := a.Call(context.Background(), 1, kindCount, nil)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("gave up after %v; MaxAttempts should bound the call tightly", elapsed)
	}
	if c := calls.Load(); c != 0 {
		t.Fatalf("handler ran %d times, want 0", c)
	}
}

func TestCallContextCancelMidRetry(t *testing.T) {
	a, _, n, _ := countingPair(t)
	a.SetRetryPolicy(fastRetry())

	n.SetInterceptor(func(m *transport.Message) bool { return false }) // black hole
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Call(ctx, 1, kindCount, nil)
		done <- err
	}()
	// Let a few retransmissions happen, then cancel mid-retry.
	time.Sleep(60 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled call did not return promptly")
	}
}

func TestCallSlowHandlerRunsOnceUnderRetries(t *testing.T) {
	a, b, _ := newPair(t, nil)
	a.SetRetryPolicy(fastRetry())

	var calls atomic.Int64
	b.Handle(kindCount, func(_ transport.NodeID, p any) (any, error) {
		calls.Add(1)
		// Slower than PerTryTimeout: the client will retransmit while the
		// handler is still running; the in-flight dedup entry must absorb
		// the duplicates, and the eventual reply must complete the call.
		time.Sleep(60 * time.Millisecond)
		return p, nil
	})
	got, err := a.Call(context.Background(), 1, kindCount, "slow")
	if err != nil {
		t.Fatalf("call failed: %v", err)
	}
	if got != "slow" {
		t.Fatalf("got %v", got)
	}
	if c := calls.Load(); c != 1 {
		t.Fatalf("handler ran %d times, want 1 (in-flight dedup)", c)
	}
}

func TestCallUnderHeavyLoss(t *testing.T) {
	a, _, n, calls := countingPair(t)
	a.SetRetryPolicy(fastRetry())

	n.SetFaults(transport.NewFaultModel(transport.FaultConfig{
		Seed: 42, Drop: 0.3, Duplicate: 0.1, Reorder: 0.2, MaxExtraDelay: time.Millisecond,
	}))
	const total = 40
	for i := 0; i < total; i++ {
		got, err := a.Call(context.Background(), 1, kindCount, i)
		if err != nil {
			t.Fatalf("call %d failed under 30%% loss: %v", i, err)
		}
		if got != i {
			t.Fatalf("call %d returned %v (correlation broken)", i, got)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if c := calls.Load(); c != total {
		t.Fatalf("handler ran %d times for %d calls, want exactly %d", c, total, total)
	}
}

func TestRetryPolicyAccessors(t *testing.T) {
	a, _, _ := newPair(t, nil)
	if p := a.RetryPolicy(); p != DefaultRetryPolicy() {
		t.Fatalf("fresh endpoint policy %+v, want default", p)
	}
	custom := RetryPolicy{PerTryTimeout: time.Second, MaxAttempts: 7}
	a.SetRetryPolicy(custom)
	if p := a.RetryPolicy(); p != custom {
		t.Fatalf("policy %+v, want %+v", p, custom)
	}
	if p := NoRetry(); p.PerTryTimeout != 0 {
		t.Fatalf("NoRetry per-try timeout %v, want 0", p.PerTryTimeout)
	}
}
