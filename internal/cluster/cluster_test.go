package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dstm/internal/transport"
	"dstm/internal/vclock"
)

const (
	kindEcho   transport.Kind = 100
	kindFail   transport.Kind = 101
	kindSlow   transport.Kind = 102
	kindPing   transport.Kind = 103
	kindAbsent transport.Kind = 104
)

func newPair(t *testing.T, lat transport.LatencyModel) (*Endpoint, *Endpoint, *transport.Network) {
	t.Helper()
	n := transport.NewNetwork(lat)
	a := NewEndpoint(n.Endpoint(0), &vclock.Clock{})
	b := NewEndpoint(n.Endpoint(1), &vclock.Clock{})
	t.Cleanup(func() { n.Close() })
	return a, b, n
}

func TestCallRoundTrip(t *testing.T) {
	a, b, _ := newPair(t, nil)
	b.Handle(kindEcho, func(from transport.NodeID, p any) (any, error) {
		return fmt.Sprintf("echo:%v:from%d", p, from), nil
	})
	got, err := a.Call(context.Background(), 1, kindEcho, "hi")
	if err != nil {
		t.Fatal(err)
	}
	if got != "echo:hi:from0" {
		t.Fatalf("got %v", got)
	}
}

func TestCallRemoteError(t *testing.T) {
	a, b, _ := newPair(t, nil)
	b.Handle(kindFail, func(transport.NodeID, any) (any, error) {
		return nil, errors.New("boom")
	})
	_, err := a.Call(context.Background(), 1, kindFail, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Node != 1 || !strings.Contains(re.Msg, "boom") {
		t.Fatalf("bad remote error: %+v", re)
	}
}

func TestCallNoHandler(t *testing.T) {
	a, _, _ := newPair(t, nil)
	_, err := a.Call(context.Background(), 1, kindAbsent, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError about missing handler", err)
	}
}

func TestCallContextCancel(t *testing.T) {
	a, b, _ := newPair(t, nil)
	block := make(chan struct{})
	b.Handle(kindSlow, func(transport.NodeID, any) (any, error) {
		<-block
		return nil, nil
	})
	defer close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := a.Call(ctx, 1, kindSlow, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestCallAfterClose(t *testing.T) {
	a, _, _ := newPair(t, nil)
	a.Close()
	if _, err := a.Call(context.Background(), 1, kindEcho, nil); !errors.Is(err, ErrEndpointClosed) {
		t.Fatalf("err = %v, want ErrEndpointClosed", err)
	}
	if err := a.Notify(1, kindPing, nil); !errors.Is(err, ErrEndpointClosed) {
		t.Fatalf("notify err = %v, want ErrEndpointClosed", err)
	}
	a.Close() // idempotent
}

// TestClosePendingCall is the regression test for the shutdown hang: a Call
// already in flight (request delivered, reply never coming) must be failed
// with ErrEndpointClosed by Close, not left blocked until its timeout.
func TestClosePendingCall(t *testing.T) {
	a, b, _ := newPair(t, nil)
	entered := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	var once sync.Once
	b.Handle(kindSlow, func(transport.NodeID, any) (any, error) {
		once.Do(func() { close(entered) })
		<-block
		return nil, nil
	})

	errc := make(chan error, 1)
	go func() {
		_, err := a.Call(context.Background(), 1, kindSlow, nil)
		errc <- err
	}()
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("request never reached the handler")
	}
	a.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrEndpointClosed) {
			t.Fatalf("pending call err = %v, want ErrEndpointClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not fail the pending call")
	}
}

func TestNotify(t *testing.T) {
	a, b, _ := newPair(t, nil)
	got := make(chan any, 1)
	b.HandleNotify(kindPing, func(from transport.NodeID, p any) { got <- p })
	if err := a.Notify(1, kindPing, 7); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if p != 7 {
			t.Fatalf("payload %v", p)
		}
	case <-time.After(time.Second):
		t.Fatal("notify not delivered")
	}
}

func TestClockPiggyback(t *testing.T) {
	n := transport.NewNetwork(nil)
	defer n.Close()
	ca, cb := &vclock.Clock{}, &vclock.Clock{}
	a := NewEndpoint(n.Endpoint(0), ca)
	b := NewEndpoint(n.Endpoint(1), cb)
	b.Handle(kindEcho, func(transport.NodeID, any) (any, error) { return nil, nil })

	// Advance A's clock; after a round trip, B must have merged it (and A
	// must have merged B's reply clock, which is now >= A's).
	for i := 0; i < 17; i++ {
		ca.Tick()
	}
	if _, err := a.Call(context.Background(), 1, kindEcho, nil); err != nil {
		t.Fatal(err)
	}
	if got := cb.Now(); got < 17 {
		t.Fatalf("B's clock = %d after receiving message with clock 17", got)
	}
}

func TestConcurrentCalls(t *testing.T) {
	a, b, _ := newPair(t, transport.UniformLatency(time.Millisecond))
	b.Handle(kindEcho, func(_ transport.NodeID, p any) (any, error) { return p, nil })
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := a.Call(context.Background(), 1, kindEcho, i)
			if err != nil {
				errs <- err
				return
			}
			if got != i {
				errs <- fmt.Errorf("call %d got %v (correlation mixed up)", i, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	a, _, _ := newPair(t, nil)
	a.Handle(kindEcho, func(transport.NodeID, any) (any, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	a.Handle(kindEcho, func(transport.NodeID, any) (any, error) { return nil, nil })
}

func TestDuplicateNotifyPanics(t *testing.T) {
	a, _, _ := newPair(t, nil)
	a.HandleNotify(kindPing, func(transport.NodeID, any) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate HandleNotify did not panic")
		}
	}()
	a.HandleNotify(kindPing, func(transport.NodeID, any) {})
}

func TestLostReplyTimesOut(t *testing.T) {
	a, b, n := newPair(t, nil)
	b.Handle(kindEcho, func(transport.NodeID, any) (any, error) { return "ok", nil })
	// Drop all replies.
	n.SetInterceptor(func(m *transport.Message) bool { return !m.IsReply })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, 1, kindEcho, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded when reply lost", err)
	}
}

func TestCallOverTCP(t *testing.T) {
	ta, err := transport.NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := transport.NewTCPNode(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	peers := map[transport.NodeID]string{0: ta.Addr(), 1: tb.Addr()}
	// Both transports need the peer table; reach in via the exported API.
	a := NewEndpoint(withPeers(ta, peers), &vclock.Clock{})
	b := NewEndpoint(withPeers(tb, peers), &vclock.Clock{})
	defer a.Close()
	defer b.Close()

	transport.RegisterPayload("")
	b.Handle(kindEcho, func(_ transport.NodeID, p any) (any, error) { return p, nil })
	got, err := a.Call(context.Background(), 1, kindEcho, "tcp")
	if err != nil {
		t.Fatal(err)
	}
	if got != "tcp" {
		t.Fatalf("got %v", got)
	}
}

// withPeers is a test helper: TCPNode resolves peers lazily, so installing
// the table after construction is fine as long as it happens before Send.
func withPeers(n *transport.TCPNode, peers map[transport.NodeID]string) transport.Transport {
	n.SetPeers(peers)
	return n
}
