package cluster

import (
	"context"
	"sync"

	"dstm/internal/transport"
)

// Outcall is one destination of a Broadcast: a request kind and payload
// bound for one node.
type Outcall struct {
	To      transport.NodeID
	Kind    transport.Kind
	Payload any
}

// CallResult is one Outcall's outcome: the decoded reply body or the error
// Call would have returned for it.
type CallResult struct {
	Body any
	Err  error
}

// Broadcast issues every call concurrently and waits for all of them,
// returning results in call order. Each call goes through Call, so each
// enjoys the endpoint's full retransmission, deduplication, and deadline
// machinery independently — one slow or lossy peer delays only its own
// slot, and the wave as a whole costs one round trip to the slowest peer
// instead of one per call.
//
// This is the fan-out primitive of the owner-grouped commit pipeline: the
// committer partitions its write/read sets by owner and broadcasts one
// batch per owner, turning O(objects) sequential rounds into O(owners)
// parallel ones.
func (e *Endpoint) Broadcast(ctx context.Context, calls []Outcall) []CallResult {
	results := make([]CallResult, len(calls))
	switch len(calls) {
	case 0:
		return results
	case 1:
		// Common case (all objects on one owner): skip the goroutine.
		results[0].Body, results[0].Err = e.Call(ctx, calls[0].To, calls[0].Kind, calls[0].Payload)
		return results
	}
	var wg sync.WaitGroup
	for i, c := range calls {
		wg.Add(1)
		go func(i int, c Outcall) {
			defer wg.Done()
			results[i].Body, results[i].Err = e.Call(ctx, c.To, c.Kind, c.Payload)
		}(i, c)
	}
	wg.Wait()
	return results
}
