// Binary wire codecs for the directory protocol payloads (see DESIGN.md
// "Wire format" for the type-ID map). Same conventions as the STM codecs:
// append-style alloc-free encode, decode-in-place with slice reuse.
package cc

import (
	"dstm/internal/object"
	"dstm/internal/transport"
	"dstm/internal/wire"
)

// Wire type IDs 40–49 are reserved for directory payloads.
const (
	wireIDLookupReq        wire.ID = 40
	wireIDLookupResp       wire.ID = 41
	wireIDRegisterReq      wire.ID = 42
	wireIDUpdateReq        wire.ID = 43
	wireIDLookupBatchReq   wire.ID = 44
	wireIDLookupBatchResp  wire.ID = 45
	wireIDRegisterBatchReq wire.ID = 46
	wireIDUpdateBatchReq   wire.ID = 47
	wireIDBatchErrResp     wire.ID = 48
)

func growCC[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

func appendOids(b []byte, oids []object.ID) []byte {
	b = wire.AppendUvarint(b, uint64(len(oids)))
	for _, oid := range oids {
		b = wire.AppendString(b, string(oid))
	}
	return b
}

func readOids(r *wire.Reader, prev []object.ID) []object.ID {
	n := r.SliceLen(1)
	oids := growCC(prev, n)
	for i := range oids {
		oids[i] = object.ID(r.String())
	}
	return oids
}

func init() {
	wire.Register(wireIDLookupReq, lookupReq{},
		func(b []byte, v any) ([]byte, error) {
			return wire.AppendString(b, string(v.(lookupReq).Oid)), nil
		},
		func(r *wire.Reader, _ any) any {
			return lookupReq{Oid: object.ID(r.String())}
		})
	wire.Register(wireIDLookupResp, lookupResp{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(lookupResp)
			b = wire.AppendVarint(b, int64(q.Owner))
			return wire.AppendBool(b, q.Known), nil
		},
		func(r *wire.Reader, _ any) any {
			return lookupResp{Owner: transport.NodeID(r.Varint()), Known: r.Bool()}
		})
	wire.Register(wireIDRegisterReq, registerReq{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(registerReq)
			b = wire.AppendString(b, string(q.Oid))
			b = wire.AppendVarint(b, int64(q.Owner))
			return wire.AppendUvarint(b, q.Tx), nil
		},
		func(r *wire.Reader, _ any) any {
			return registerReq{
				Oid:   object.ID(r.String()),
				Owner: transport.NodeID(r.Varint()),
				Tx:    r.Uvarint(),
			}
		})
	wire.Register(wireIDUpdateReq, updateReq{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(updateReq)
			b = wire.AppendString(b, string(q.Oid))
			return wire.AppendVarint(b, int64(q.Owner)), nil
		},
		func(r *wire.Reader, _ any) any {
			return updateReq{Oid: object.ID(r.String()), Owner: transport.NodeID(r.Varint())}
		})
	wire.Register(wireIDLookupBatchReq, lookupBatchReq{},
		func(b []byte, v any) ([]byte, error) {
			return appendOids(b, v.(lookupBatchReq).Oids), nil
		},
		func(r *wire.Reader, prev any) any {
			var q lookupBatchReq
			if p, ok := prev.(lookupBatchReq); ok {
				q = p
			}
			q.Oids = readOids(r, q.Oids)
			return q
		})
	wire.Register(wireIDLookupBatchResp, lookupBatchResp{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(lookupBatchResp)
			b = wire.AppendUvarint(b, uint64(len(q.Results)))
			for i := range q.Results {
				b = wire.AppendVarint(b, int64(q.Results[i].Owner))
				b = wire.AppendBool(b, q.Results[i].Known)
			}
			return b, nil
		},
		func(r *wire.Reader, prev any) any {
			var q lookupBatchResp
			if p, ok := prev.(lookupBatchResp); ok {
				q = p
			}
			n := r.SliceLen(2)
			q.Results = growCC(q.Results, n)
			for i := range q.Results {
				q.Results[i].Owner = transport.NodeID(r.Varint())
				q.Results[i].Known = r.Bool()
			}
			return q
		})
	wire.Register(wireIDRegisterBatchReq, registerBatchReq{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(registerBatchReq)
			b = appendOids(b, q.Oids)
			b = wire.AppendVarint(b, int64(q.Owner))
			return wire.AppendUvarint(b, q.Tx), nil
		},
		func(r *wire.Reader, prev any) any {
			var q registerBatchReq
			if p, ok := prev.(registerBatchReq); ok {
				q = p
			}
			q.Oids = readOids(r, q.Oids)
			q.Owner = transport.NodeID(r.Varint())
			q.Tx = r.Uvarint()
			return q
		})
	wire.Register(wireIDUpdateBatchReq, updateBatchReq{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(updateBatchReq)
			b = appendOids(b, q.Oids)
			return wire.AppendVarint(b, int64(q.Owner)), nil
		},
		func(r *wire.Reader, prev any) any {
			var q updateBatchReq
			if p, ok := prev.(updateBatchReq); ok {
				q = p
			}
			q.Oids = readOids(r, q.Oids)
			q.Owner = transport.NodeID(r.Varint())
			return q
		})
	wire.Register(wireIDBatchErrResp, batchErrResp{},
		func(b []byte, v any) ([]byte, error) {
			q := v.(batchErrResp)
			b = wire.AppendUvarint(b, uint64(len(q.Errs)))
			for _, e := range q.Errs {
				b = wire.AppendString(b, e)
			}
			return b, nil
		},
		func(r *wire.Reader, prev any) any {
			var q batchErrResp
			if p, ok := prev.(batchErrResp); ok {
				q = p
			}
			n := r.SliceLen(1)
			q.Errs = growCC(q.Errs, n)
			for i := range q.Errs {
				q.Errs[i] = r.String()
			}
			return q
		})
}
