package cc

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"dstm/internal/object"
	"dstm/internal/transport"
	"dstm/internal/wire"
)

// roundTrip passes a message carrying payload through BOTH wire formats —
// gob (the legacy baseline) and the binary codec — and requires them to
// agree, so every fuzz target in this file doubles as a differential
// oracle. It returns the gob-decoded payload.
func roundTrip(t *testing.T, payload any) any {
	t.Helper()
	in := transport.Message{From: 1, To: 2, Kind: KindLookupBatch, Payload: payload}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	var out transport.Message
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode %T: %v", payload, err)
	}

	enc, err := transport.AppendMessage(nil, &in)
	if err != nil {
		t.Fatalf("binary encode %T: %v", payload, err)
	}
	var bout transport.Message
	if err := transport.DecodeMessage(wire.NewReader(enc), &bout); err != nil {
		t.Fatalf("binary decode %T: %v", payload, err)
	}
	if !reflect.DeepEqual(bout.Payload, out.Payload) {
		t.Fatalf("binary and gob decodes disagree for %T:\n gob:    %+v\n binary: %+v",
			payload, out.Payload, bout.Payload)
	}
	return out.Payload
}

// FuzzDirectoryBatchRoundTrip round-trips every home-directory batch
// payload. The lookup reply's Results and the error reply's Errs must stay
// parallel to the request Oids: a shifted slice would bind an owner (or an
// error) to the wrong object at the requester.
func FuzzDirectoryBatchRoundTrip(f *testing.F) {
	f.Add("obj/a", "obj/b", int32(1), uint64(9), true, "cc: taken")
	f.Add("", "x", int32(-2), uint64(0), false, "")
	f.Fuzz(func(t *testing.T, oidA, oidB string, owner int32, tx uint64, known bool, errStr string) {
		oids := []object.ID{object.ID(oidA), object.ID(oidB)}

		sreq := lookupReq{Oid: object.ID(oidA)}
		if got := roundTrip(t, sreq).(lookupReq); got != sreq {
			t.Fatalf("lookupReq changed: %+v -> %+v", sreq, got)
		}
		sresp := lookupResp{Owner: transport.NodeID(owner), Known: known}
		if got := roundTrip(t, sresp).(lookupResp); got != sresp {
			t.Fatalf("lookupResp changed: %+v -> %+v", sresp, got)
		}
		srreq := registerReq{Oid: object.ID(oidB), Owner: transport.NodeID(owner), Tx: tx}
		if got := roundTrip(t, srreq).(registerReq); got != srreq {
			t.Fatalf("registerReq changed: %+v -> %+v", srreq, got)
		}
		sureq := updateReq{Oid: object.ID(oidA), Owner: transport.NodeID(owner)}
		if got := roundTrip(t, sureq).(updateReq); got != sureq {
			t.Fatalf("updateReq changed: %+v -> %+v", sureq, got)
		}

		lreq := lookupBatchReq{Oids: oids}
		if got := roundTrip(t, lreq).(lookupBatchReq); !reflect.DeepEqual(got, lreq) {
			t.Fatalf("lookupBatchReq changed: %+v -> %+v", lreq, got)
		}
		lresp := lookupBatchResp{Results: []lookupResp{
			{Owner: transport.NodeID(owner), Known: known},
			{Owner: transport.NodeID(-owner), Known: !known},
		}}
		if got := roundTrip(t, lresp).(lookupBatchResp); !reflect.DeepEqual(got, lresp) {
			t.Fatalf("lookupBatchResp changed: %+v -> %+v", lresp, got)
		}

		rreq := registerBatchReq{Oids: oids, Owner: transport.NodeID(owner), Tx: tx}
		if got := roundTrip(t, rreq).(registerBatchReq); !reflect.DeepEqual(got, rreq) {
			t.Fatalf("registerBatchReq changed: %+v -> %+v", rreq, got)
		}

		ureq := updateBatchReq{Oids: oids, Owner: transport.NodeID(owner)}
		if got := roundTrip(t, ureq).(updateBatchReq); !reflect.DeepEqual(got, ureq) {
			t.Fatalf("updateBatchReq changed: %+v -> %+v", ureq, got)
		}

		eresp := batchErrResp{Errs: []string{errStr, ""}}
		got := roundTrip(t, eresp).(batchErrResp)
		if len(got.Errs) != 2 || got.Errs[0] != errStr || got.Errs[1] != "" {
			t.Fatalf("batchErrResp changed: %+v -> %+v", eresp, got)
		}
	})
}
