// Package cc implements the distributed cache-coherence (CC) protocol of
// the dataflow D-STM model: a home-directory object locator.
//
// Every object has a home node, chosen by hashing its ID over the cluster.
// The home tracks the object's single current owner (the node holding the
// one writable copy). The two properties the paper requires of the CC
// protocol hold by construction:
//
//  1. a read/write request reaches a node holding a valid copy in a finite
//     number of hops (requester → home → owner), and
//  2. at any time only one copy of the object is registered as writable.
//
// Ownership moves to the committing transaction's node on every write
// commit; the committer updates the home. Requesters keep a local owner
// hint cache; a stale hint is detected by the owner ("not owner" reply) and
// refreshed from the home.
package cc

import (
	"context"
	"fmt"
	"sync"

	"dstm/internal/cluster"
	"dstm/internal/object"
	"dstm/internal/transport"
)

// Message kinds 1–9 are reserved for the directory protocol.
const (
	KindLookup   transport.Kind = 1
	KindRegister transport.Kind = 2
	KindUpdate   transport.Kind = 3
	// Batch variants: one message carries every object of a commit that is
	// homed at the same directory node (owner-grouped commit pipeline).
	KindLookupBatch   transport.Kind = 4
	KindRegisterBatch transport.Kind = 5
	KindUpdateBatch   transport.Kind = 6
)

// lookupReq asks a home node for the owner of an object.
type lookupReq struct{ Oid object.ID }

// lookupResp carries the owner; Known is false for unregistered objects.
type lookupResp struct {
	Owner transport.NodeID
	Known bool
}

// registerReq registers a newly created object with its home. Tx, when
// non-zero, identifies the creating transaction so a re-register from the
// same transaction (a commit retried after its reply was lost) is
// idempotent while a genuine duplicate create is still rejected.
type registerReq struct {
	Oid   object.ID
	Owner transport.NodeID
	Tx    uint64
}

// updateReq moves ownership to a new node (commit-time migration).
type updateReq struct {
	Oid   object.ID
	Owner transport.NodeID
}

// lookupBatchReq asks a home node for the owners of several objects.
type lookupBatchReq struct{ Oids []object.ID }

// lookupBatchResp carries per-object results, parallel to the request.
type lookupBatchResp struct{ Results []lookupResp }

// registerBatchReq registers several newly created objects, all homed at
// the receiving node and all owned by Owner. Tx tags the creating
// transaction for idempotent re-registration (see registerReq).
type registerBatchReq struct {
	Oids  []object.ID
	Owner transport.NodeID
	Tx    uint64
}

// updateBatchReq moves ownership of several objects homed at the receiver
// to Owner (commit-time migration).
type updateBatchReq struct {
	Oids  []object.ID
	Owner transport.NodeID
}

// batchErrResp carries per-object errors parallel to a batch request; an
// empty string is success. One failed entry must not mask its siblings'
// outcomes, so the handler never fails the whole RPC for an entry error.
type batchErrResp struct{ Errs []string }

func init() {
	transport.RegisterPayload(lookupReq{})
	transport.RegisterPayload(lookupResp{})
	transport.RegisterPayload(registerReq{})
	transport.RegisterPayload(updateReq{})
	transport.RegisterPayload(lookupBatchReq{})
	transport.RegisterPayload(lookupBatchResp{})
	transport.RegisterPayload(registerBatchReq{})
	transport.RegisterPayload(updateBatchReq{})
	transport.RegisterPayload(batchErrResp{})
}

// HomeOf returns the home (directory) node of an object in a cluster of
// size n.
func HomeOf(id object.ID, n int) transport.NodeID {
	if n <= 0 {
		return 0
	}
	return transport.NodeID(id.Hash() % uint64(n))
}

// ErrUnknownObject is reported (as a RemoteError) when the home has no
// record of the object.
var ErrUnknownObject = fmt.Errorf("cc: unknown object")

// Service is one node's directory shard plus its client-side locator with
// owner-hint cache.
type Service struct {
	ep   *cluster.Endpoint
	size int

	mu     sync.Mutex
	owners map[object.ID]transport.NodeID // directory shard: objects homed here
	regTx  map[object.ID]uint64           // transaction that registered each object
	hints  map[object.ID]transport.NodeID // locator cache: last known owners
}

// NewService creates the directory service for this node and registers its
// protocol handlers on ep. size is the total number of nodes.
func NewService(ep *cluster.Endpoint, size int) *Service {
	s := &Service{
		ep:     ep,
		size:   size,
		owners: make(map[object.ID]transport.NodeID),
		regTx:  make(map[object.ID]uint64),
		hints:  make(map[object.ID]transport.NodeID),
	}
	ep.Handle(KindLookup, s.handleLookup)
	ep.Handle(KindRegister, s.handleRegister)
	ep.Handle(KindUpdate, s.handleUpdate)
	ep.Handle(KindLookupBatch, s.handleLookupBatch)
	ep.Handle(KindRegisterBatch, s.handleRegisterBatch)
	ep.Handle(KindUpdateBatch, s.handleUpdateBatch)
	return s
}

func (s *Service) handleLookup(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(lookupReq)
	if !ok {
		return nil, fmt.Errorf("cc: bad lookup payload %T", payload)
	}
	s.mu.Lock()
	owner, known := s.owners[req.Oid]
	s.mu.Unlock()
	return lookupResp{Owner: owner, Known: known}, nil
}

func (s *Service) handleRegister(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(registerReq)
	if !ok {
		return nil, fmt.Errorf("cc: bad register payload %T", payload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, dup := s.owners[req.Oid]; dup {
		if existing == req.Owner && req.Tx != 0 && s.regTx[req.Oid] == req.Tx {
			// The same transaction registering again: its earlier reply was
			// lost and the commit is being retried. Succeed idempotently.
			return lookupResp{Owner: req.Owner, Known: true}, nil
		}
		return nil, fmt.Errorf("cc: object %q already registered to node %d", req.Oid, existing)
	}
	s.owners[req.Oid] = req.Owner
	if req.Tx != 0 {
		s.regTx[req.Oid] = req.Tx
	}
	return lookupResp{Owner: req.Owner, Known: true}, nil
}

func (s *Service) handleUpdate(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(updateReq)
	if !ok {
		return nil, fmt.Errorf("cc: bad update payload %T", payload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, known := s.owners[req.Oid]; !known {
		return nil, fmt.Errorf("cc: update for unregistered object %q", req.Oid)
	}
	s.owners[req.Oid] = req.Owner
	// Ownership migrating means the creating transaction committed long ago;
	// its re-register window is over.
	delete(s.regTx, req.Oid)
	return lookupResp{Owner: req.Owner, Known: true}, nil
}

func (s *Service) handleLookupBatch(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(lookupBatchReq)
	if !ok {
		return nil, fmt.Errorf("cc: bad lookup batch payload %T", payload)
	}
	resp := lookupBatchResp{Results: make([]lookupResp, len(req.Oids))}
	s.mu.Lock()
	for i, oid := range req.Oids {
		owner, known := s.owners[oid]
		resp.Results[i] = lookupResp{Owner: owner, Known: known}
	}
	s.mu.Unlock()
	return resp, nil
}

func (s *Service) handleRegisterBatch(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(registerBatchReq)
	if !ok {
		return nil, fmt.Errorf("cc: bad register batch payload %T", payload)
	}
	resp := batchErrResp{Errs: make([]string, len(req.Oids))}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, oid := range req.Oids {
		if existing, dup := s.owners[oid]; dup {
			if existing == req.Owner && req.Tx != 0 && s.regTx[oid] == req.Tx {
				continue // idempotent re-register by the same transaction
			}
			resp.Errs[i] = fmt.Sprintf("cc: object %q already registered to node %d", oid, existing)
			continue
		}
		s.owners[oid] = req.Owner
		if req.Tx != 0 {
			s.regTx[oid] = req.Tx
		}
	}
	return resp, nil
}

func (s *Service) handleUpdateBatch(_ transport.NodeID, payload any) (any, error) {
	req, ok := payload.(updateBatchReq)
	if !ok {
		return nil, fmt.Errorf("cc: bad update batch payload %T", payload)
	}
	resp := batchErrResp{Errs: make([]string, len(req.Oids))}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, oid := range req.Oids {
		if _, known := s.owners[oid]; !known {
			resp.Errs[i] = fmt.Sprintf("cc: update for unregistered object %q", oid)
			continue
		}
		s.owners[oid] = req.Owner
		delete(s.regTx, oid)
	}
	return resp, nil
}

// Home returns the home node of id in this cluster.
func (s *Service) Home(id object.ID) transport.NodeID { return HomeOf(id, s.size) }

// Locate returns the current owner of id, consulting the local hint cache
// first and falling back to the home directory.
func (s *Service) Locate(ctx context.Context, id object.ID) (transport.NodeID, error) {
	s.mu.Lock()
	if owner, ok := s.hints[id]; ok {
		s.mu.Unlock()
		return owner, nil
	}
	s.mu.Unlock()
	return s.locateFresh(ctx, id)
}

// locateFresh queries the home, bypassing the hint cache, and refreshes the
// hint on success.
func (s *Service) locateFresh(ctx context.Context, id object.ID) (transport.NodeID, error) {
	body, err := s.ep.Call(ctx, s.Home(id), KindLookup, lookupReq{Oid: id})
	if err != nil {
		return 0, err
	}
	resp, ok := body.(lookupResp)
	if !ok {
		return 0, fmt.Errorf("cc: bad lookup reply %T", body)
	}
	if !resp.Known {
		return 0, fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	s.mu.Lock()
	s.hints[id] = resp.Owner
	s.mu.Unlock()
	return resp.Owner, nil
}

// InvalidateHint drops the cached owner for id (after a "not owner" reply).
func (s *Service) InvalidateHint(id object.ID) {
	s.mu.Lock()
	delete(s.hints, id)
	s.mu.Unlock()
}

// Relocate invalidates the hint and performs a fresh home lookup.
func (s *Service) Relocate(ctx context.Context, id object.ID) (transport.NodeID, error) {
	s.InvalidateHint(id)
	return s.locateFresh(ctx, id)
}

// NoteOwner records an authoritative owner hint learned from the protocol
// (e.g. an object push naming its new owner).
func (s *Service) NoteOwner(id object.ID, owner transport.NodeID) {
	s.mu.Lock()
	s.hints[id] = owner
	s.mu.Unlock()
}

// Register announces a newly created object owned by owner to its home.
func (s *Service) Register(ctx context.Context, id object.ID, owner transport.NodeID) error {
	return s.RegisterTx(ctx, id, owner, 0)
}

// RegisterTx registers id like Register, tagging the registration with the
// creating transaction so a retried commit (whose earlier register reply was
// lost) can re-register idempotently. tx 0 means strict one-shot semantics.
func (s *Service) RegisterTx(ctx context.Context, id object.ID, owner transport.NodeID, tx uint64) error {
	_, err := s.ep.Call(ctx, s.Home(id), KindRegister, registerReq{Oid: id, Owner: owner, Tx: tx})
	if err != nil {
		return err
	}
	s.NoteOwner(id, owner)
	return nil
}

// UpdateOwner records commit-time ownership migration at the home.
func (s *Service) UpdateOwner(ctx context.Context, id object.ID, owner transport.NodeID) error {
	_, err := s.ep.Call(ctx, s.Home(id), KindUpdate, updateReq{Oid: id, Owner: owner})
	if err != nil {
		return err
	}
	s.NoteOwner(id, owner)
	return nil
}

// ---------------------------------------------------------------------------
// Batched client methods. Each groups its objects by home node and issues
// one message per home, in parallel, so a commit touching k objects homed
// on m nodes costs m messages instead of k. Each returns the number of
// messages it sent so the commit pipeline can account msgs/commit.

// LocateBatch resolves the owners of every id, consulting the hint cache
// first and batching the misses by home node. It returns the owner map and
// the number of lookup messages sent. Unknown objects surface as an
// ErrUnknownObject-wrapped error; transport failures surface as-is.
func (s *Service) LocateBatch(ctx context.Context, ids []object.ID) (map[object.ID]transport.NodeID, int, error) {
	out := make(map[object.ID]transport.NodeID, len(ids))
	byHome := make(map[transport.NodeID][]object.ID)
	s.mu.Lock()
	for _, id := range ids {
		if owner, ok := s.hints[id]; ok {
			out[id] = owner
			continue
		}
		home := s.Home(id)
		byHome[home] = append(byHome[home], id)
	}
	s.mu.Unlock()
	if len(byHome) == 0 {
		return out, 0, nil
	}
	calls := make([]cluster.Outcall, 0, len(byHome))
	groups := make([][]object.ID, 0, len(byHome))
	for home, oids := range byHome {
		calls = append(calls, cluster.Outcall{To: home, Kind: KindLookupBatch, Payload: lookupBatchReq{Oids: oids}})
		groups = append(groups, oids)
	}
	results := s.ep.Broadcast(ctx, calls)
	var firstErr error
	for gi, res := range results {
		if res.Err != nil {
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		resp, ok := res.Body.(lookupBatchResp)
		if !ok || len(resp.Results) != len(groups[gi]) {
			if firstErr == nil {
				firstErr = fmt.Errorf("cc: bad lookup batch reply %T", res.Body)
			}
			continue
		}
		for i, r := range resp.Results {
			id := groups[gi][i]
			if !r.Known {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: %q", ErrUnknownObject, id)
				}
				continue
			}
			s.NoteOwner(id, r.Owner)
			out[id] = r.Owner
		}
	}
	return out, len(calls), firstErr
}

// RegisterBatchTx registers every id as created by transaction tx and owned
// by owner, one message per home node. It returns the number of messages
// sent and the first per-object or transport error encountered.
func (s *Service) RegisterBatchTx(ctx context.Context, ids []object.ID, owner transport.NodeID, tx uint64) (int, error) {
	msgs, err := s.batchByHome(ctx, ids, KindRegisterBatch, func(oids []object.ID) any {
		return registerBatchReq{Oids: oids, Owner: owner, Tx: tx}
	})
	if err != nil {
		return msgs, err
	}
	for _, id := range ids {
		s.NoteOwner(id, owner)
	}
	return msgs, nil
}

// UpdateOwnerBatch records commit-time ownership migration of every id at
// its home, one message per home node, returning the message count.
func (s *Service) UpdateOwnerBatch(ctx context.Context, ids []object.ID, owner transport.NodeID) (int, error) {
	msgs, err := s.batchByHome(ctx, ids, KindUpdateBatch, func(oids []object.ID) any {
		return updateBatchReq{Oids: oids, Owner: owner}
	})
	if err != nil {
		return msgs, err
	}
	for _, id := range ids {
		s.NoteOwner(id, owner)
	}
	return msgs, nil
}

// batchByHome groups ids by home node, broadcasts one kind-message per
// home built by mkReq, and folds the per-entry error strings of each
// batchErrResp reply into the first error. It returns the message count
// even on error so callers can account partial fan-outs.
func (s *Service) batchByHome(ctx context.Context, ids []object.ID, kind transport.Kind, mkReq func([]object.ID) any) (int, error) {
	if len(ids) == 0 {
		return 0, nil
	}
	byHome := make(map[transport.NodeID][]object.ID)
	for _, id := range ids {
		home := s.Home(id)
		byHome[home] = append(byHome[home], id)
	}
	calls := make([]cluster.Outcall, 0, len(byHome))
	groups := make([][]object.ID, 0, len(byHome))
	for home, oids := range byHome {
		calls = append(calls, cluster.Outcall{To: home, Kind: kind, Payload: mkReq(oids)})
		groups = append(groups, oids)
	}
	results := s.ep.Broadcast(ctx, calls)
	var firstErr error
	for gi, res := range results {
		if res.Err != nil {
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		resp, ok := res.Body.(batchErrResp)
		if !ok || len(resp.Errs) != len(groups[gi]) {
			if firstErr == nil {
				firstErr = fmt.Errorf("cc: bad batch reply %T", res.Body)
			}
			continue
		}
		for i, msg := range resp.Errs {
			if msg != "" && firstErr == nil {
				firstErr = fmt.Errorf("cc: %q: %s", groups[gi][i], msg)
			}
		}
	}
	return len(calls), firstErr
}
