package cc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"dstm/internal/cluster"
	"dstm/internal/object"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

// newCluster builds n directory services over an in-memory network.
func newCluster(t *testing.T, n int) []*Service {
	t.Helper()
	net := transport.NewNetwork(nil)
	t.Cleanup(func() { net.Close() })
	svcs := make([]*Service, n)
	for i := 0; i < n; i++ {
		ep := cluster.NewEndpoint(net.Endpoint(transport.NodeID(i)), &vclock.Clock{})
		svcs[i] = NewService(ep, n)
	}
	return svcs
}

func TestHomeOfInRangeAndStable(t *testing.T) {
	f := func(s string, n uint8) bool {
		size := int(n%16) + 1
		h := HomeOf(object.ID(s), size)
		return h >= 0 && int(h) < size && h == HomeOf(object.ID(s), size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomeOfDegenerateSize(t *testing.T) {
	if h := HomeOf("x", 0); h != 0 {
		t.Fatalf("HomeOf with size 0 = %d", h)
	}
}

func TestRegisterAndLocate(t *testing.T) {
	svcs := newCluster(t, 4)
	ctx := context.Background()

	if err := svcs[1].Register(ctx, "obj/a", 1); err != nil {
		t.Fatal(err)
	}
	// Every node must resolve the same owner.
	for i, s := range svcs {
		owner, err := s.Locate(ctx, "obj/a")
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if owner != 1 {
			t.Fatalf("node %d located owner %d, want 1", i, owner)
		}
	}
}

func TestLocateUnknown(t *testing.T) {
	svcs := newCluster(t, 3)
	_, err := svcs[0].Locate(context.Background(), "missing")
	if !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v, want ErrUnknownObject", err)
	}
}

func TestRegisterConflict(t *testing.T) {
	svcs := newCluster(t, 3)
	ctx := context.Background()
	if err := svcs[0].Register(ctx, "obj/x", 0); err != nil {
		t.Fatal(err)
	}
	// Untagged (tx 0) registration is strict: even the same owner cannot
	// re-register (a duplicate create must fail).
	if err := svcs[0].Register(ctx, "obj/x", 0); err == nil {
		t.Fatal("same-owner re-register succeeded; creates must be strict")
	}
	// Different owner: rejected.
	if err := svcs[1].Register(ctx, "obj/x", 1); err == nil {
		t.Fatal("conflicting register succeeded")
	}
}

func TestRegisterTxIdempotentForSameTransaction(t *testing.T) {
	svcs := newCluster(t, 3)
	ctx := context.Background()
	if err := svcs[0].RegisterTx(ctx, "obj/t", 0, 42); err != nil {
		t.Fatal(err)
	}
	// The same transaction re-registering (commit retried after a lost
	// reply) succeeds.
	if err := svcs[0].RegisterTx(ctx, "obj/t", 0, 42); err != nil {
		t.Fatalf("same-tx re-register failed: %v", err)
	}
	// A different transaction from the same node is a genuine duplicate
	// create and must fail.
	if err := svcs[0].RegisterTx(ctx, "obj/t", 0, 43); err == nil {
		t.Fatal("different-tx duplicate create succeeded")
	}
	// As must an untagged one.
	if err := svcs[0].Register(ctx, "obj/t", 0); err == nil {
		t.Fatal("untagged duplicate create succeeded")
	}
	// And a different owner, regardless of tx.
	if err := svcs[1].RegisterTx(ctx, "obj/t", 1, 42); err == nil {
		t.Fatal("different-owner register succeeded")
	}
}

func TestUpdateOwnerAndHints(t *testing.T) {
	svcs := newCluster(t, 4)
	ctx := context.Background()
	if err := svcs[2].Register(ctx, "obj/m", 2); err != nil {
		t.Fatal(err)
	}
	// Node 0 caches the owner hint.
	if owner, err := svcs[0].Locate(ctx, "obj/m"); err != nil || owner != 2 {
		t.Fatalf("locate: %d, %v", owner, err)
	}
	// Ownership migrates to node 3.
	if err := svcs[3].UpdateOwner(ctx, "obj/m", 3); err != nil {
		t.Fatal(err)
	}
	// Node 0 still has the stale hint...
	if owner, _ := svcs[0].Locate(ctx, "obj/m"); owner != 2 {
		t.Fatalf("expected stale hint 2, got %d", owner)
	}
	// ...until it relocates.
	owner, err := svcs[0].Relocate(ctx, "obj/m")
	if err != nil || owner != 3 {
		t.Fatalf("relocate: %d, %v", owner, err)
	}
	// And the refreshed hint sticks.
	if owner, _ := svcs[0].Locate(ctx, "obj/m"); owner != 3 {
		t.Fatalf("hint not refreshed: %d", owner)
	}
}

func TestUpdateUnregistered(t *testing.T) {
	svcs := newCluster(t, 3)
	if err := svcs[0].UpdateOwner(context.Background(), "ghost", 1); err == nil {
		t.Fatal("UpdateOwner on unregistered object succeeded")
	}
}

func TestNoteOwnerShortCircuitsLookup(t *testing.T) {
	svcs := newCluster(t, 3)
	ctx := context.Background()
	// No registration at all; a pushed hint must be honoured locally.
	svcs[0].NoteOwner("pushed", 2)
	owner, err := svcs[0].Locate(ctx, "pushed")
	if err != nil || owner != 2 {
		t.Fatalf("locate with noted owner: %d, %v", owner, err)
	}
	// Invalidate drops it; the home has no record, so the lookup fails.
	svcs[0].InvalidateHint("pushed")
	if _, err := svcs[0].Locate(ctx, "pushed"); err == nil {
		t.Fatal("locate after invalidate should hit the home and fail")
	}
}

func TestConcurrentRegistersDistinctObjects(t *testing.T) {
	const n = 5
	svcs := newCluster(t, n)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			owner := transport.NodeID(i % n)
			oid := object.ID(fmt.Sprintf("obj/%d", i))
			if err := svcs[owner].Register(ctx, oid, owner); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		oid := object.ID(fmt.Sprintf("obj/%d", i))
		owner, err := svcs[0].Locate(ctx, oid)
		if err != nil {
			t.Fatal(err)
		}
		if owner != transport.NodeID(i%n) {
			t.Fatalf("obj/%d owner = %d, want %d", i, owner, i%n)
		}
	}
}

func TestHomeDistribution(t *testing.T) {
	// Homes should spread across the cluster, not pile on one node.
	const n = 8
	counts := make([]int, n)
	for i := 0; i < 800; i++ {
		counts[HomeOf(object.ID(fmt.Sprintf("k/%d", i)), n)]++
	}
	for node, c := range counts {
		if c == 0 {
			t.Fatalf("node %d got no homes out of 800", node)
		}
	}
}
