// Command rtsbench regenerates the paper's tables and figures on a
// simulated cluster.
//
// Usage:
//
//	rtsbench -experiment table1                 # Table I
//	rtsbench -experiment fig4                   # Fig. 4 (low contention)
//	rtsbench -experiment fig5                   # Fig. 5 (high contention)
//	rtsbench -experiment speedup                # Fig. 6 summary
//	rtsbench -experiment stability              # open-loop queue-stability sweep
//	rtsbench -experiment readscale              # MVCC snapshot reads vs ownership baseline
//	rtsbench -experiment wire                   # binary codec vs gob wire sweep
//	rtsbench -experiment all
//
// Flags tune scale: -nodes, -maxnodes, -duration, -workers, -objects,
// -delayscale, -clthreshold, -adaptive, -bench. Fault injection (lossy
// links, see DESIGN.md "Fault model"): -drop, -duplicate, -reorder,
// -locklease.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dstm/internal/cluster"
	"dstm/internal/harness"
	"dstm/internal/stm"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1 | fig4 | fig5 | speedup | cell | stability | wire | readscale | all")
		nodes      = flag.Int("nodes", 8, "node count for table1/speedup")
		maxNodes   = flag.Int("maxnodes", 16, "largest node count in fig4/fig5 sweeps")
		duration   = flag.Duration("duration", 250*time.Millisecond, "measurement window per cell")
		workers    = flag.Int("workers", 8, "concurrent transactions per node")
		objects    = flag.Int("objects", 8, "shared objects per node (paper: 5-10)")
		delayScale = flag.Float64("delayscale", 0.01, "scale applied to the 1-50ms link band")
		threshold  = flag.Int("clthreshold", 3, "RTS contention-level threshold")
		adaptive   = flag.Bool("adaptive", false, "adapt the CL threshold at runtime")
		flat       = flag.Bool("flat", false, "use flat nesting instead of closed nesting")
		benchList  = flag.String("bench", "", "comma-separated benchmark subset (vacation,bank,ll,rbtree,bst,dht)")
		seed       = flag.Int64("seed", 1, "workload seed")
		drop       = flag.Float64("drop", 0, "message drop probability (fault injection)")
		duplicate  = flag.Float64("duplicate", 0, "message duplication probability (fault injection)")
		reorder    = flag.Float64("reorder", 0, "message reorder probability (fault injection)")
		lockLease  = flag.Duration("locklease", 0, "force-release commit locks held this long (0 = off)")
		traceOn    = flag.Bool("trace", false, "record protocol events and run the trace checker on every cell")
		traceFile  = flag.String("tracefile", "", "write the merged trace as JSONL (implies -trace; multi-cell experiments overwrite per cell)")
		traceCap   = flag.Int("tracecap", 0, "per-node trace ring capacity (0 = default)")
		scheduler  = flag.String("scheduler", "RTS", "scheduler for -experiment cell (RTS | TFA | TFA+Backoff)")
		readRatio  = flag.Float64("readratio", 0.9, "read fraction for -experiment cell")
		benchJSON  = flag.String("benchjson", "", "run the commit-pipeline benchmark and write its JSON report (throughput, msgs/commit, commit-latency p50/p99 per scheduler) to this file, then exit")

		wireJSON = flag.String("wirejson", "results/BENCH_wire.json", "output path for -experiment wire")
		wireGate = flag.Bool("wiregate", false, "exit non-zero unless the binary codec is alloc-free and >= 2x gob pump throughput")

		readJSON       = flag.String("readjson", "results/BENCH_read.json", "output path for -experiment readscale")
		readGate       = flag.Bool("readgate", false, "exit non-zero unless the MVCC snapshot path cuts read msgs/ro-commit vs the ownership baseline at the 90%-read mix")
		readTransports = flag.String("readtransports", "memnet", "comma-separated transports for -experiment readscale (memnet|tcp|tcpgob)")
		readRatios     = flag.String("readratios", "0.5,0.9", "comma-separated read ratios for -experiment readscale")

		stabilityJSON = flag.String("stabilityjson", "results/BENCH_stability.json", "output path for -experiment stability")
		rates         = flag.String("rates", "300,900", "comma-separated offered arrival rates (tx/s) for -experiment stability")
		arrivals      = flag.String("arrivals", "poisson,window", "comma-separated arrival processes for -experiment stability (constant|poisson|burst|window)")
		skews         = flag.String("skews", "uniform,zipf,storm", "comma-separated key distributions for -experiment stability (uniform|zipf|storm)")
		failDiverging = flag.Bool("faildiverging", false, "exit non-zero when any RTS stability cell reports a diverging queue")
	)
	flag.Parse()

	base := harness.Config{
		Nodes:          *nodes,
		WorkersPerNode: *workers,
		Duration:       *duration,
		ObjectsPerNode: *objects,
		DelayScale:     *delayScale,
		CLThreshold:    *threshold,
		AdaptiveCL:     *adaptive,
		FlatNesting:    *flat,
		Seed:           *seed,
		Drop:           *drop,
		Duplicate:      *duplicate,
		Reorder:        *reorder,
		MaxExtraDelay:  time.Millisecond,
		LockLease:      *lockLease,
		Trace:          *traceOn || *traceFile != "",
		TraceCap:       *traceCap,
		TracePath:      *traceFile,
	}
	if base.Drop > 0 || base.Duplicate > 0 || base.Reorder > 0 {
		// Lossy runs need retransmissions paced to the scaled link delays,
		// not the 2s default per-try timeout.
		base.CallRetry = cluster.RetryPolicy{
			PerTryTimeout: 30 * time.Millisecond,
			BaseBackoff:   2 * time.Millisecond,
			MaxBackoff:    20 * time.Millisecond,
		}
	}
	benches := parseBenches(*benchList)
	ctx := context.Background()

	if *benchJSON != "" {
		if err := runBenchJSON(ctx, base, benches, *readRatio, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "rtsbench:", err)
			os.Exit(1)
		}
		return
	}

	var err error
	switch *experiment {
	case "cell":
		err = runCell(ctx, base, benches, harness.Scheduler(*scheduler), *readRatio)
	case "stability":
		err = runStability(ctx, base, benches, *readRatio, *skews, *arrivals, *rates,
			*stabilityJSON, *failDiverging)
	case "readscale":
		var ratios []float64
		if ratios, err = parseRates(*readRatios); err == nil {
			err = runReadScale(ctx, base, *readTransports, ratios, *readJSON, *readGate)
		}
	case "wire":
		err = runWire(ctx, base, *wireJSON, *wireGate)
	case "table1":
		err = runTable1(ctx, base, benches)
	case "fig4":
		err = runFigure(ctx, base, benches, harness.Low, *maxNodes)
	case "fig5":
		err = runFigure(ctx, base, benches, harness.High, *maxNodes)
	case "speedup":
		err = runSpeedup(ctx, base, benches)
	case "all":
		if err = runTable1(ctx, base, benches); err == nil {
			if err = runFigure(ctx, base, benches, harness.Low, *maxNodes); err == nil {
				if err = runFigure(ctx, base, benches, harness.High, *maxNodes); err == nil {
					err = runSpeedup(ctx, base, benches)
				}
			}
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *experiment)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtsbench:", err)
		os.Exit(1)
	}
}

// runCell runs a single experiment cell per benchmark and prints the full
// outcome breakdown (per-cause abort counts with latency histograms, and —
// with -trace — the protocol-checker verdict). The one-cell mode is the
// natural home of -tracefile: the JSONL on disk is exactly that cell's run.
func runCell(ctx context.Context, base harness.Config, benches []harness.BenchmarkKind,
	sched harness.Scheduler, readRatio float64) error {
	for _, b := range benches {
		cfg := base
		cfg.Benchmark = b
		cfg.Scheduler = sched
		cfg.ReadRatio = readRatio
		res, err := harness.Run(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%s / %s (read %.0f%%)\n", harness.BenchmarkLabel(b), sched, 100*readRatio)
		fmt.Println(res.MetricsTable())
		if res.CheckErr != nil {
			return fmt.Errorf("%s invariant: %w", b, res.CheckErr)
		}
		if res.ProtocolErr != nil {
			return fmt.Errorf("%s protocol trace: %w", b, res.ProtocolErr)
		}
	}
	return nil
}

// benchJSONRow is one (scheduler, benchmark) cell of the commit-pipeline
// benchmark report.
type benchJSONRow struct {
	Scheduler       string  `json:"scheduler"`
	Benchmark       string  `json:"benchmark"`
	Commits         uint64  `json:"commits"`
	Aborts          uint64  `json:"aborts"`
	ThroughputTPS   float64 `json:"throughput_tps"`
	CommitMsgs      uint64  `json:"commit_msgs"`
	CommitRounds    uint64  `json:"commit_rounds"`
	MsgsPerCommit   float64 `json:"msgs_per_commit"`
	RoundsPerCommit float64 `json:"rounds_per_commit"`
	CommitP50Ns     int64   `json:"commit_latency_p50_ns"`
	CommitP99Ns     int64   `json:"commit_latency_p99_ns"`
}

// benchJSONDoc is the whole BENCH_commit.json document.
type benchJSONDoc struct {
	Experiment     string         `json:"experiment"`
	Nodes          int            `json:"nodes"`
	WorkersPerNode int            `json:"workers_per_node"`
	ObjectsPerNode int            `json:"objects_per_node"`
	DurationMs     int64          `json:"duration_ms"`
	ReadRatio      float64        `json:"read_ratio"`
	Seed           int64          `json:"seed"`
	Rows           []benchJSONRow `json:"rows"`
}

// runBenchJSON measures the owner-grouped commit pipeline: for every
// scheduler and benchmark it runs one cell and reports throughput, the
// msgs/commit and rounds/commit of the batch pipeline, and the commit
// latency tail, as machine-readable JSON (results/BENCH_commit.json under
// `make bench`).
func runBenchJSON(ctx context.Context, base harness.Config, benches []harness.BenchmarkKind,
	readRatio float64, path string) error {
	doc := benchJSONDoc{Experiment: "commit-pipeline", ReadRatio: readRatio, Seed: base.Seed}
	for _, sc := range harness.Schedulers {
		for _, b := range benches {
			cfg := base
			cfg.Benchmark = b
			cfg.Scheduler = sc
			cfg.ReadRatio = readRatio
			res, err := harness.Run(ctx, cfg)
			if err != nil {
				return err
			}
			if res.CheckErr != nil {
				return fmt.Errorf("%s invariant: %w", b, res.CheckErr)
			}
			m := res.Metrics
			lat := m.Latency[stm.LatencyCommitKey]
			doc.Rows = append(doc.Rows, benchJSONRow{
				Scheduler:       string(sc),
				Benchmark:       string(b),
				Commits:         m.Commits,
				Aborts:          m.TotalAborts(),
				ThroughputTPS:   res.Throughput(),
				CommitMsgs:      m.CommitMsgs,
				CommitRounds:    m.CommitRounds,
				MsgsPerCommit:   m.MsgsPerCommit(),
				RoundsPerCommit: m.RoundsPerCommit(),
				CommitP50Ns:     int64(lat.Quantile(0.50)),
				CommitP99Ns:     int64(lat.Quantile(0.99)),
			})
			// The resolved defaults are identical across cells; record once.
			doc.Nodes = res.Config.Nodes
			doc.WorkersPerNode = res.Config.WorkersPerNode
			doc.ObjectsPerNode = res.Config.ObjectsPerNode
			doc.DurationMs = res.Config.Duration.Milliseconds()
			fmt.Printf("%-12s %-10s %8.1f tx/s   msgs/commit %5.1f   p99 %v\n",
				sc, b, res.Throughput(), m.MsgsPerCommit(), lat.Quantile(0.99))
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("bench json: %w", werr)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func parseBenches(s string) []harness.BenchmarkKind {
	if s == "" {
		return harness.Benchmarks
	}
	var out []harness.BenchmarkKind
	for _, part := range strings.Split(s, ",") {
		out = append(out, harness.BenchmarkKind(strings.TrimSpace(part)))
	}
	return out
}

func runTable1(ctx context.Context, base harness.Config, benches []harness.BenchmarkKind) error {
	tbl, err := harness.RunTable1(ctx, base, benches)
	if err != nil {
		return err
	}
	fmt.Println(tbl.Format())
	return nil
}

func sweepNodeCounts(maxNodes int) []int {
	var out []int
	step := maxNodes / 4
	if step < 1 {
		step = 1
	}
	for n := step; n <= maxNodes; n += step {
		if n >= 2 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{2}
	}
	return out
}

func runFigure(ctx context.Context, base harness.Config, benches []harness.BenchmarkKind,
	cont harness.Contention, maxNodes int) error {
	counts := sweepNodeCounts(maxNodes)
	for _, b := range benches {
		sw, err := harness.RunThroughputSweep(ctx, base, b, cont, counts)
		if err != nil {
			return err
		}
		fmt.Println(sw.Format())
	}
	return nil
}

func runSpeedup(ctx context.Context, base harness.Config, benches []harness.BenchmarkKind) error {
	rows, err := harness.RunSpeedupSummary(ctx, base, benches)
	if err != nil {
		return err
	}
	fmt.Println(harness.FormatSpeedup(rows))
	return nil
}
