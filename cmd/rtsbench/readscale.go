package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"dstm/internal/harness"
)

// readScaleRow is one (arm, scheduler, transport, read-ratio) cell of the
// read-path report. The "mvcc" arm routes read-only transactions onto the
// snapshot path (Config.ROReads) and enables the requester replica cache;
// the "ownership" arm is the pre-MVCC baseline where every read acquires
// the object through the ownership protocol.
type readScaleRow struct {
	Arm       string  `json:"arm"` // "ownership" | "mvcc"
	Scheduler string  `json:"scheduler"`
	Transport string  `json:"transport"`
	ReadRatio float64 `json:"read_ratio"`

	Commits         uint64  `json:"commits"`
	Aborts          uint64  `json:"aborts"`
	ThroughputTPS   float64 `json:"throughput_tps"`
	ReadOnlyCommits uint64  `json:"read_only_commits"`
	ReadMsgs        uint64  `json:"read_msgs"`
	// ReadMsgsPerROCommit is the gate metric: data-path read RPCs per
	// committed read-only transaction, comparable across arms.
	ReadMsgsPerROCommit float64 `json:"read_msgs_per_ro_commit"`
	SnapReads           uint64  `json:"snap_reads"`
	ReplicaHits         uint64  `json:"replica_hits"`
	ROUpgrades          uint64  `json:"ro_upgrades"`
	MsgsPerCommit       float64 `json:"msgs_per_commit"`
}

// readScaleDoc is the whole BENCH_read.json document.
type readScaleDoc struct {
	Experiment     string         `json:"experiment"`
	Benchmark      string         `json:"benchmark"`
	Nodes          int            `json:"nodes"`
	WorkersPerNode int            `json:"workers_per_node"`
	ObjectsPerNode int            `json:"objects_per_node"`
	DurationMs     int64          `json:"duration_ms"`
	Seed           int64          `json:"seed"`
	Rows           []readScaleRow `json:"rows"`
}

// runReadScale sweeps arm (ownership vs MVCC) × scheduler × transport ×
// read ratio on the Bank benchmark (its audit transaction is the suite's
// canonical bulk read) and writes results/BENCH_read.json. With gate, the
// run fails unless at the 90%-read mix the MVCC arm's read-path msgs per
// read-only commit is strictly below the ownership baseline's for every
// (scheduler, transport) pair — the CI regression gate for the snapshot
// read path.
func runReadScale(ctx context.Context, base harness.Config, transports string,
	ratios []float64, path string, gate bool) error {
	doc := readScaleDoc{Experiment: "readscale", Benchmark: string(harness.BenchBank), Seed: base.Seed}
	// baselineAt[key] remembers the ownership arm's gate metric so the mvcc
	// arm can be compared cell-for-cell.
	type key struct {
		sched     harness.Scheduler
		transport string
		ratio     float64
	}
	baselineAt := make(map[key]float64)
	var gateErrs []string

	for _, tr := range strings.Split(transports, ",") {
		tr = strings.TrimSpace(tr)
		for _, sc := range harness.Schedulers {
			for _, ratio := range ratios {
				for _, arm := range []string{"ownership", "mvcc"} {
					cfg := base
					cfg.Benchmark = harness.BenchBank
					cfg.Scheduler = sc
					cfg.Transport = tr
					cfg.ReadRatio = ratio
					if arm == "mvcc" {
						cfg.ROReads = true
						cfg.ReplicaLease = 50 * time.Millisecond
					}
					res, err := harness.Run(ctx, cfg)
					if err != nil {
						return err
					}
					if res.CheckErr != nil {
						return fmt.Errorf("readscale %s/%s/%s invariant: %w", arm, sc, tr, res.CheckErr)
					}
					if res.ProtocolErr != nil {
						return fmt.Errorf("readscale %s/%s/%s protocol trace: %w", arm, sc, tr, res.ProtocolErr)
					}
					m := res.Metrics
					row := readScaleRow{
						Arm:                 arm,
						Scheduler:           string(sc),
						Transport:           tr,
						ReadRatio:           ratio,
						Commits:             m.Commits,
						Aborts:              m.TotalAborts(),
						ThroughputTPS:       res.Throughput(),
						ReadOnlyCommits:     m.ReadOnlyCommits,
						ReadMsgs:            m.ReadMsgs,
						ReadMsgsPerROCommit: m.ReadMsgsPerROCommit(),
						SnapReads:           m.SnapReads,
						ReplicaHits:         m.ReplicaHits,
						ROUpgrades:          m.ROUpgrades,
						MsgsPerCommit:       m.MsgsPerCommit(),
					}
					doc.Rows = append(doc.Rows, row)
					doc.Nodes = res.Config.Nodes
					doc.WorkersPerNode = res.Config.WorkersPerNode
					doc.ObjectsPerNode = res.Config.ObjectsPerNode
					doc.DurationMs = res.Config.Duration.Milliseconds()
					fmt.Printf("%-9s %-12s %-7s read %2.0f%%  %8.1f tx/s  ro-commits %6d  read-msgs/ro %5.2f\n",
						arm, sc, tr, 100*ratio, res.Throughput(), row.ReadOnlyCommits, row.ReadMsgsPerROCommit)

					k := key{sc, tr, ratio}
					if arm == "ownership" {
						baselineAt[k] = row.ReadMsgsPerROCommit
					} else if ratio >= 0.9 {
						if own, ok := baselineAt[k]; ok && row.ReadMsgsPerROCommit >= own {
							gateErrs = append(gateErrs, fmt.Sprintf(
								"%s/%s@%.0f%%: mvcc %.2f >= ownership %.2f read msgs/ro-commit",
								sc, tr, 100*ratio, row.ReadMsgsPerROCommit, own))
						}
					}
				}
			}
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("readscale json: %w", werr)
	}
	fmt.Printf("wrote %s (%d cells)\n", path, len(doc.Rows))
	if gate && len(gateErrs) > 0 {
		return fmt.Errorf("snapshot read path did not beat the ownership baseline: %s",
			strings.Join(gateErrs, "; "))
	}
	return nil
}
