package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dstm/internal/harness"
	"dstm/internal/workload"
)

// stabilityRow is one (scheduler, benchmark, skew, arrival) cell of the
// open-loop stability report.
type stabilityRow struct {
	Scheduler string `json:"scheduler"`
	Benchmark string `json:"benchmark"`
	Skew      string `json:"skew"`
	Arrival   string `json:"arrival"`
	// TargetRateTPS is the arrival process's configured mean rate.
	TargetRateTPS float64 `json:"target_rate_tps"`
	Ops           int     `json:"ops"`

	Offered   uint64 `json:"offered"`
	Shed      uint64 `json:"shed"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Commits   uint64 `json:"commits"`
	Aborts    uint64 `json:"aborts"`

	OfferedRateTPS   float64 `json:"offered_rate_tps"`
	CompletedRateTPS float64 `json:"completed_rate_tps"`
	CompletionRatio  float64 `json:"completion_ratio"`
	MakespanMs       float64 `json:"makespan_ms"`
	Verdict          string  `json:"verdict"`

	SojournP50Ns  int64 `json:"sojourn_p50_ns"`
	SojournP99Ns  int64 `json:"sojourn_p99_ns"`
	SojournP999Ns int64 `json:"sojourn_p999_ns"`

	QueuePeak      int `json:"queue_peak"`
	SchedQueuePeak int `json:"sched_queue_peak"`

	// Queue is the sampled depth time series for the cell.
	Queue []harness.QueueSample `json:"queue"`
}

// stabilityDoc is the whole BENCH_stability.json document.
type stabilityDoc struct {
	Experiment     string         `json:"experiment"`
	Nodes          int            `json:"nodes"`
	WorkersPerNode int            `json:"workers_per_node"`
	ObjectsPerNode int            `json:"objects_per_node"`
	DurationMs     int64          `json:"duration_ms"`
	ReadRatio      float64        `json:"read_ratio"`
	Seed           int64          `json:"seed"`
	Rows           []stabilityRow `json:"rows"`
}

// arrivalSpec is one arrival-process point of the sweep.
type arrivalSpec struct {
	name string
	rate float64
	mk   func() workload.Arrival
}

// parseArrivals expands the -arrivals kinds over the -rates list. The
// rate-driven processes (constant, poisson, burst) get one spec per rate;
// the adversarial conflict-window process sizes its period so the mean
// offered rate matches, with bursts of 8 timed to land together inside
// commit lock windows.
func parseArrivals(kinds string, rates []float64) ([]arrivalSpec, error) {
	var out []arrivalSpec
	for _, k := range strings.Split(kinds, ",") {
		k = strings.TrimSpace(k)
		for _, r := range rates {
			r := r
			switch k {
			case "constant":
				out = append(out, arrivalSpec{"constant", r,
					func() workload.Arrival { return workload.NewConstant(r) }})
			case "poisson":
				out = append(out, arrivalSpec{"poisson", r,
					func() workload.Arrival { return workload.NewPoisson(r) }})
			case "burst":
				// 2× the rate half the time: same mean, on/off duty cycle.
				out = append(out, arrivalSpec{"burst", r, func() workload.Arrival {
					return workload.NewBurst(2*r, 5*time.Millisecond, 5*time.Millisecond)
				}})
			case "window":
				// Bursts of 8 back-to-back arrivals every 8/rate seconds.
				out = append(out, arrivalSpec{"window", r, func() workload.Arrival {
					period := time.Duration(8 / r * float64(time.Second))
					return workload.NewConflictWindow(period, 8)
				}})
			default:
				return nil, fmt.Errorf("unknown arrival kind %q (constant|poisson|burst|window)", k)
			}
		}
	}
	return out, nil
}

// parseSkews maps the -skews list to sampler constructors. A fresh
// sampler is built per cell so storm's rotation counter and zipf's zeta
// cache never leak state across cells.
func parseSkews(s string) ([]struct {
	name string
	mk   func() workload.KeySampler
}, error) {
	var out []struct {
		name string
		mk   func() workload.KeySampler
	}
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		var mk func() workload.KeySampler
		switch k {
		case "uniform":
			mk = func() workload.KeySampler { return workload.NewUniform() }
		case "zipf":
			mk = func() workload.KeySampler { return workload.NewZipf(0.9) }
		case "storm":
			mk = func() workload.KeySampler { return workload.NewHotKeyStorm(2, 0.9, 64) }
		default:
			return nil, fmt.Errorf("unknown skew %q (uniform|zipf|storm)", k)
		}
		out = append(out, struct {
			name string
			mk   func() workload.KeySampler
		}{k, mk})
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, r)
	}
	return out, nil
}

// runStability sweeps scheduler × skew × arrival over the benchmarks in
// fixed-batch open-loop mode (ops = rate × duration, so each cell offers
// the same work regardless of how the scheduler copes) and writes the
// stability report. With failDiverging, a diverging verdict on any RTS
// cell is an error — the CI smoke gate: at a calibrated offered rate RTS
// must absorb the load.
func runStability(ctx context.Context, base harness.Config, benches []harness.BenchmarkKind,
	readRatio float64, skewList, arrivalList, rateList, path string, failDiverging bool) error {
	rates, err := parseRates(rateList)
	if err != nil {
		return err
	}
	skews, err := parseSkews(skewList)
	if err != nil {
		return err
	}
	arrivals, err := parseArrivals(arrivalList, rates)
	if err != nil {
		return err
	}

	doc := stabilityDoc{Experiment: "stability", ReadRatio: readRatio, Seed: base.Seed}
	var rtsDiverged []string
	for _, sc := range harness.Schedulers {
		for _, b := range benches {
			for _, sk := range skews {
				for _, ar := range arrivals {
					cfg := harness.OpenLoopConfig{Config: base, Arrival: ar.mk()}
					cfg.Benchmark = b
					cfg.Scheduler = sc
					cfg.ReadRatio = readRatio
					cfg.KeySampler = sk.mk()
					cfg.Ops = int(ar.rate * base.Duration.Seconds())
					if cfg.Ops < 50 {
						cfg.Ops = 50
					}
					// Bound drain time so a diverging cell is cut off
					// rather than stalling the whole sweep.
					cfg.Timeout = 3 * base.Duration
					if cfg.Timeout < time.Second {
						cfg.Timeout = time.Second
					}
					res, err := harness.RunOpenLoop(ctx, cfg)
					if err != nil {
						return err
					}
					if res.CheckErr != nil {
						return fmt.Errorf("%s/%s/%s invariant: %w", sc, b, sk.name, res.CheckErr)
					}
					if res.ProtocolErr != nil {
						return fmt.Errorf("%s/%s/%s protocol trace: %w", sc, b, sk.name, res.ProtocolErr)
					}
					row := stabilityRow{
						Scheduler:        string(sc),
						Benchmark:        string(b),
						Skew:             sk.name,
						Arrival:          ar.name,
						TargetRateTPS:    ar.rate,
						Ops:              cfg.Ops,
						Offered:          res.Offered,
						Shed:             res.Shed,
						Completed:        res.Completed,
						Failed:           res.Failed,
						Commits:          res.Metrics.Commits,
						Aborts:           res.Metrics.TotalAborts(),
						OfferedRateTPS:   res.OfferedRate(),
						CompletedRateTPS: res.CompletedRate(),
						CompletionRatio:  res.CompletionRatio(),
						MakespanMs:       float64(res.Makespan) / float64(time.Millisecond),
						Verdict:          string(res.Verdict()),
						SojournP50Ns:     int64(res.Sojourn.Quantile(0.50)),
						SojournP99Ns:     int64(res.Sojourn.Quantile(0.99)),
						SojournP999Ns:    int64(res.Sojourn.Quantile(0.999)),
						Queue:            res.Queue,
					}
					for _, q := range res.Queue {
						if q.Depth > row.QueuePeak {
							row.QueuePeak = q.Depth
						}
						if q.SchedDepth > row.SchedQueuePeak {
							row.SchedQueuePeak = q.SchedDepth
						}
					}
					doc.Rows = append(doc.Rows, row)
					doc.Nodes = res.Config.Nodes
					doc.WorkersPerNode = res.Config.WorkersPerNode
					doc.ObjectsPerNode = res.Config.ObjectsPerNode
					doc.DurationMs = res.Config.Duration.Milliseconds()
					fmt.Printf("%-12s %-8s %-8s %-9s @%6.0f/s  done %5d/%-5d  makespan %7.1fms  p99 %-10v %s\n",
						sc, b, sk.name, ar.name, ar.rate, res.Completed, res.Offered,
						row.MakespanMs, res.Sojourn.Quantile(0.99), row.Verdict)
					if sc == harness.SchedRTS && res.Verdict() == harness.VerdictDiverging {
						rtsDiverged = append(rtsDiverged,
							fmt.Sprintf("%s/%s/%s@%.0f", b, sk.name, ar.name, ar.rate))
					}
				}
			}
		}
	}

	if err := writeStabilityJSON(doc, path); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells)\n", path, len(doc.Rows))
	if failDiverging && len(rtsDiverged) > 0 {
		return fmt.Errorf("RTS queue diverged at calibrated rate in %d cell(s): %s",
			len(rtsDiverged), strings.Join(rtsDiverged, ", "))
	}
	return nil
}

func writeStabilityJSON(doc stabilityDoc, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("stability json: %w", werr)
	}
	return nil
}
