package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dstm/internal/harness"
	"dstm/internal/stm"
	"dstm/internal/transport"
)

// pumpRow is one codec's raw transport throughput measurement: one sender
// node pushing the commit pipeline's hottest payload to one receiver over
// loopback TCP as fast as the transport accepts it.
type pumpRow struct {
	Codec       string  `json:"codec"`
	Msgs        uint64  `json:"msgs"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
	BytesPerMsg float64 `json:"bytes_per_msg"`
	Writes      uint64  `json:"writes"`
	MsgsPerWrit float64 `json:"msgs_per_write"`
}

// wireCellRow is one end-to-end bank cell: same workload, different fabric.
type wireCellRow struct {
	Transport     string  `json:"transport"`
	Commits       uint64  `json:"commits"`
	Aborts        uint64  `json:"aborts"`
	ThroughputTPS float64 `json:"throughput_tps"`
	CommitP50Ns   int64   `json:"commit_latency_p50_ns"`
	CommitP99Ns   int64   `json:"commit_latency_p99_ns"`
	WireMsgs      uint64  `json:"wire_msgs"`
	WireBytes     uint64  `json:"wire_bytes"`
	WireWrites    uint64  `json:"wire_writes"`
	BytesPerMsg   float64 `json:"bytes_per_msg"`
	MsgsPerWrite  float64 `json:"msgs_per_write"`
}

// wireDoc is the whole BENCH_wire.json document.
type wireDoc struct {
	Experiment         string              `json:"experiment"`
	DurationMs         int64               `json:"duration_ms"`
	Codec              []stm.CodecBenchRow `json:"codec"`
	Pump               []pumpRow           `json:"pump"`
	PumpSpeedupVsGob   float64             `json:"pump_speedup_vs_gob"`
	Cells              []wireCellRow       `json:"cells"`
	TCPvsMemnetP50Frac float64             `json:"tcp_vs_memnet_p50_frac"`
}

// runPump measures raw message throughput for one codec.
func runPump(codec transport.Codec, dur time.Duration) (pumpRow, error) {
	row := pumpRow{Codec: codec.String()}
	opts := transport.TCPOptions{Codec: codec}
	a, err := transport.NewTCPNodeOpts(0, "127.0.0.1:0", nil, opts)
	if err != nil {
		return row, err
	}
	defer a.Close()
	b, err := transport.NewTCPNodeOpts(1, "127.0.0.1:0", nil, opts)
	if err != nil {
		return row, err
	}
	defer b.Close()
	peers := map[transport.NodeID]string{0: a.Addr(), 1: b.Addr()}
	a.SetPeers(peers)
	b.SetPeers(peers)

	var recv atomic.Uint64
	b.SetHandler(func(m *transport.Message) { recv.Add(1) })

	payload := stm.WirePumpPayload()
	const senders = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := a.Send(&transport.Message{From: 0, To: 1, Kind: stm.KindAcquireBatch,
					Payload: payload}); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	sent := a.Stats().MsgsSent

	// Wait for the receiver to drain what was sent (bounded).
	deadline := time.Now().Add(5 * time.Second)
	for recv.Load() < sent && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	st := a.Stats()
	row.Msgs = recv.Load()
	row.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	row.MsgsPerSec = float64(row.Msgs) / elapsed.Seconds()
	if st.MsgsSent > 0 {
		row.BytesPerMsg = float64(st.BytesSent) / float64(st.MsgsSent)
	}
	row.Writes = st.Writes
	if st.Writes > 0 {
		row.MsgsPerWrit = float64(st.MsgsSent) / float64(st.Writes)
	}
	return row, nil
}

// runWireCell runs one bank cell on the given fabric and extracts the
// commit latency tail plus the wire counters.
func runWireCell(ctx context.Context, base harness.Config, tr string) (wireCellRow, error) {
	cfg := base
	cfg.Benchmark = harness.BenchBank
	cfg.Scheduler = harness.SchedRTS
	cfg.ReadRatio = 0.5
	cfg.Transport = tr
	// Fault injection flags target the stability experiments; wire cells
	// compare fabrics on a lossless cluster.
	cfg.Drop, cfg.Duplicate, cfg.Reorder = 0, 0, 0
	res, ws, err := harness.RunWithWireStats(ctx, cfg)
	if err != nil {
		return wireCellRow{}, err
	}
	if res.CheckErr != nil {
		return wireCellRow{}, fmt.Errorf("%s cell invariant: %w", tr, res.CheckErr)
	}
	lat := res.Metrics.Latency[stm.LatencyCommitKey]
	row := wireCellRow{
		Transport:     tr,
		Commits:       res.Metrics.Commits,
		Aborts:        res.Metrics.TotalAborts(),
		ThroughputTPS: res.Throughput(),
		CommitP50Ns:   int64(lat.Quantile(0.50)),
		CommitP99Ns:   int64(lat.Quantile(0.99)),
		WireMsgs:      ws.MsgsSent,
		WireBytes:     ws.BytesSent,
		WireWrites:    ws.Writes,
	}
	if ws.MsgsSent > 0 {
		row.BytesPerMsg = float64(ws.BytesSent) / float64(ws.MsgsSent)
	}
	if ws.Writes > 0 {
		row.MsgsPerWrite = float64(ws.MsgsSent) / float64(ws.Writes)
	}
	return row, nil
}

// runWire is `-experiment wire`: codec micro-benchmarks (alloc/op,
// bytes/msg), the raw gob-vs-binary message pump, and end-to-end bank
// cells on memnet vs TCP. With gate set, it exits non-zero unless the
// binary codec is allocation-free and at least 2x gob's pump throughput.
func runWire(ctx context.Context, base harness.Config, path string, gate bool) error {
	doc := wireDoc{Experiment: "wire", DurationMs: base.Duration.Milliseconds()}

	fmt.Println("codec micro-benchmarks:")
	doc.Codec = stm.WireCodecBench(0)
	for _, row := range doc.Codec {
		fmt.Printf("  %-20s %4dB (gob %4dB)  enc %7.1fns/%.2f allocs  dec %7.1fns/%.2f allocs  gob rt %8.1fns\n",
			row.Payload, row.BinaryBytes, row.GobBytes,
			row.EncNsPerOp, row.EncAllocsPerOp, row.DecNsPerOp, row.DecAllocsPerOp, row.GobNsPerOp)
	}

	fmt.Println("transport pump (loopback TCP):")
	pumpDur := base.Duration
	if pumpDur < 500*time.Millisecond {
		pumpDur = 500 * time.Millisecond
	}
	for _, codec := range []transport.Codec{transport.CodecGob, transport.CodecBinary} {
		row, err := runPump(codec, pumpDur)
		if err != nil {
			return err
		}
		doc.Pump = append(doc.Pump, row)
		fmt.Printf("  %-7s %9.0f msgs/s  %6.1f B/msg  %5.1f msgs/write\n",
			row.Codec, row.MsgsPerSec, row.BytesPerMsg, row.MsgsPerWrit)
	}
	if doc.Pump[0].MsgsPerSec > 0 {
		doc.PumpSpeedupVsGob = doc.Pump[1].MsgsPerSec / doc.Pump[0].MsgsPerSec
	}
	fmt.Printf("  binary/gob speedup: %.2fx\n", doc.PumpSpeedupVsGob)

	fmt.Println("end-to-end bank cells:")
	for _, tr := range []string{"memnet", "tcpgob", "tcp"} {
		row, err := runWireCell(ctx, base, tr)
		if err != nil {
			return err
		}
		doc.Cells = append(doc.Cells, row)
		fmt.Printf("  %-7s %8.1f tx/s  p50 %8v  p99 %8v  %6.1f B/msg\n",
			tr, row.ThroughputTPS, time.Duration(row.CommitP50Ns), time.Duration(row.CommitP99Ns),
			row.BytesPerMsg)
	}
	if doc.Cells[0].CommitP50Ns > 0 {
		doc.TCPvsMemnetP50Frac = float64(doc.Cells[2].CommitP50Ns) / float64(doc.Cells[0].CommitP50Ns)
	}

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("wire json: %w", werr)
	}
	fmt.Printf("wrote %s\n", path)

	if gate {
		for _, row := range doc.Codec {
			if row.EncAllocsPerOp > 0.01 || row.DecAllocsPerOp > 0.01 {
				return fmt.Errorf("wire gate: %s allocates (enc %.3f, dec %.3f allocs/op)",
					row.Payload, row.EncAllocsPerOp, row.DecAllocsPerOp)
			}
		}
		if doc.PumpSpeedupVsGob < 2 {
			return fmt.Errorf("wire gate: binary pump only %.2fx gob (want >= 2x)", doc.PumpSpeedupVsGob)
		}
	}
	return nil
}
