// Command dstmnode runs one D-STM node as its own OS process over real TCP
// — the same stack the simulation uses, deployed as a true distributed
// system on loopback (or a LAN).
//
// Start a 3-node cluster in three shells:
//
//	dstmnode -id 0 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002" -drive
//	dstmnode -id 1 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002"
//	dstmnode -id 2 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002"
//
// The -drive node seeds a small bank, runs transfer transactions against
// the cluster for -duration, then prints throughput and the conservation
// check. Other nodes serve objects until killed.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"dstm/internal/apps/bank"
	"dstm/internal/cluster"
	"dstm/internal/core"
	"dstm/internal/sched"
	"dstm/internal/stats"
	"dstm/internal/stm"
	"dstm/internal/transport"
	"dstm/internal/vclock"
)

func main() {
	var (
		id        = flag.Int("id", 0, "this node's ID (index into -peers)")
		peersFlag = flag.String("peers", "0=127.0.0.1:7000", "comma-separated id=host:port list for every node")
		policy    = flag.String("scheduler", "rts", "rts | tfa | backoff")
		drive     = flag.Bool("drive", false, "seed a bank and drive transactions from this node")
		duration  = flag.Duration("duration", 3*time.Second, "drive duration")
		accounts  = flag.Int("accounts", 16, "bank accounts to seed (drive node only)")
		threshold = flag.Int("clthreshold", 3, "RTS contention-level threshold")
	)
	flag.Parse()

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		fatal(err)
	}
	listen, ok := peers[transport.NodeID(*id)]
	if !ok {
		fatal(fmt.Errorf("node %d not present in -peers", *id))
	}

	tn, err := transport.NewTCPNode(transport.NodeID(*id), listen, peers)
	if err != nil {
		fatal(err)
	}
	defer tn.Close()

	st := stats.NewTable(time.Millisecond)
	var pol sched.Policy
	switch *policy {
	case "rts":
		pol = core.New(core.Options{CLThreshold: *threshold})
	case "tfa":
		pol = sched.NewTFA()
	case "backoff":
		pol = sched.NewBackoff(st, 50*time.Millisecond)
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *policy))
	}

	ep := cluster.NewEndpoint(tn, &vclock.Clock{})
	rt := stm.NewRuntime(ep, len(peers), pol, st)
	fmt.Printf("dstmnode: node %d listening on %s (%s scheduler, %d peers)\n",
		*id, tn.Addr(), pol.Name(), len(peers))

	if !*drive {
		select {} // serve forever
	}

	if err := driveBank(rt, *accounts, *duration); err != nil {
		fatal(err)
	}
}

func parsePeers(s string) (map[transport.NodeID]string, error) {
	peers := make(map[transport.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		peers[transport.NodeID(id)] = kv[1]
	}
	return peers, nil
}

// driveBank seeds accounts (retrying until all peers are up), runs
// transfers, and audits the total.
func driveBank(rt *stm.Runtime, accounts int, d time.Duration) error {
	ctx := context.Background()

	// Wait for peers: object homes are spread across nodes, so seeding
	// succeeds only once everyone is listening.
	b := bank.New(bank.Options{AccountsPerNode: accounts})
	var setupErr error
	for attempt := 0; attempt < 50; attempt++ {
		setupErr = b.Setup(ctx, []*stm.Runtime{rt})
		if setupErr == nil {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if setupErr != nil {
		return fmt.Errorf("seeding failed (are all peers up?): %w", setupErr)
	}
	fmt.Printf("dstmnode: seeded %d accounts, driving for %v\n", b.Accounts(), d)

	runCtx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	ops := 0
	for runCtx.Err() == nil {
		if err := b.Op(runCtx, rt, rng, rng.Float64() < 0.5); err != nil {
			if runCtx.Err() != nil {
				break
			}
			return err
		}
		ops++
	}

	m := rt.Metrics().Snapshot()
	fmt.Printf("dstmnode: %d ops driven, %d commits, %d aborts, %.1f commits/sec\n",
		ops, m.Commits, m.TotalAborts(), float64(m.Commits)/d.Seconds())
	if err := b.Check(ctx, rt); err != nil {
		return err
	}
	fmt.Println("dstmnode: conservation check passed")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dstmnode:", err)
	os.Exit(1)
}
