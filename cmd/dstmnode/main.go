// Command dstmnode runs one D-STM node as its own OS process over real TCP
// — the same stack the simulation uses, deployed as a true distributed
// system on loopback (or a LAN).
//
// Start a 3-node cluster in three shells:
//
//	dstmnode -id 0 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002" -drive
//	dstmnode -id 1 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002"
//	dstmnode -id 2 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002"
//
// Or let dstmnode do the shell work itself: -spawn N reserves N loopback
// ports, forks N-1 child node processes of this same binary, and drives
// the workload from node 0 in the parent — one command, a real
// multi-process cluster:
//
//	dstmnode -spawn 3 -duration 2s
//	dstmnode -spawn 3 -openloop -rate 300 -arrival poisson -zipf 0.8
//
// The -drive node seeds a small bank, runs transfer transactions against
// the cluster for -duration, then prints throughput and the conservation
// check. -openloop switches the driver from the closed loop (next
// transaction only after the previous finishes) to an open-loop arrival
// process from internal/workload: arrivals are admitted on the clock's
// schedule regardless of completions, overload sheds at -maxpending, and
// the report adds sojourn (arrival→commit) p50/p99. Other nodes serve
// objects until killed or until -exitafter elapses (children always get
// an -exitafter so a crashed parent cannot leak node processes).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dstm/internal/apps/bank"
	"dstm/internal/cluster"
	"dstm/internal/core"
	"dstm/internal/sched"
	"dstm/internal/stats"
	"dstm/internal/stm"
	"dstm/internal/transport"
	"dstm/internal/vclock"
	"dstm/internal/workload"
)

type options struct {
	id         int
	peers      string
	policy     string
	drive      bool
	duration   time.Duration
	accounts   int
	threshold  int
	spawn      int
	exitAfter  time.Duration
	codec      string
	openLoop   bool
	rate       float64
	arrival    string
	zipf       float64
	workers    int
	maxPending int
}

func main() {
	var o options
	flag.IntVar(&o.id, "id", 0, "this node's ID (index into -peers)")
	flag.StringVar(&o.peers, "peers", "0=127.0.0.1:7000", "comma-separated id=host:port list for every node")
	flag.StringVar(&o.policy, "scheduler", "rts", "rts | tfa | backoff")
	flag.BoolVar(&o.drive, "drive", false, "seed a bank and drive transactions from this node")
	flag.DurationVar(&o.duration, "duration", 3*time.Second, "drive duration")
	flag.IntVar(&o.accounts, "accounts", 16, "bank accounts to seed (drive node only)")
	flag.IntVar(&o.threshold, "clthreshold", 3, "RTS contention-level threshold")
	flag.IntVar(&o.spawn, "spawn", 0, "spawn an N-process cluster on loopback and drive from node 0")
	flag.DurationVar(&o.exitAfter, "exitafter", 0, "serve nodes exit after this long (0 = forever)")
	flag.StringVar(&o.codec, "codec", "binary", "wire codec: binary | gob")
	flag.BoolVar(&o.openLoop, "openloop", false, "drive an open-loop arrival process instead of the closed loop")
	flag.Float64Var(&o.rate, "rate", 200, "open-loop offered rate (tx/sec)")
	flag.StringVar(&o.arrival, "arrival", "poisson", "open-loop arrival process: poisson | constant")
	flag.Float64Var(&o.zipf, "zipf", 0, "Zipfian key-skew theta (0 = uniform)")
	flag.IntVar(&o.workers, "workers", 8, "open-loop executor goroutines")
	flag.IntVar(&o.maxPending, "maxpending", 1<<14, "open-loop admission queue cap (arrivals beyond it are shed)")
	flag.Parse()

	if o.spawn > 0 {
		if err := runSpawn(o); err != nil {
			fatal(err)
		}
		return
	}
	if err := runNode(o); err != nil {
		fatal(err)
	}
}

func parseCodec(s string) (transport.Codec, error) {
	switch s {
	case "binary":
		return transport.CodecBinary, nil
	case "gob":
		return transport.CodecGob, nil
	}
	return 0, fmt.Errorf("unknown codec %q (want binary or gob)", s)
}

// runSpawn is the -spawn N coordinator: it reserves N loopback ports,
// forks N-1 serve-mode children of this same executable, and then runs
// node 0 in-process as the driver. Children inherit our stdout/stderr
// and carry an -exitafter fuse so they cannot outlive a crashed parent
// for long; on the normal path the parent kills and reaps them.
func runSpawn(o options) error {
	if o.spawn < 2 {
		return fmt.Errorf("-spawn wants at least 2 nodes, got %d", o.spawn)
	}
	addrs, err := reservePorts(o.spawn)
	if err != nil {
		return err
	}
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = fmt.Sprintf("%d=%s", i, a)
	}
	peers := strings.Join(parts, ",")

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	fuse := o.duration + 30*time.Second
	children := make([]*exec.Cmd, 0, o.spawn-1)
	defer func() {
		for _, c := range children {
			_ = c.Process.Kill()
			_ = c.Wait()
		}
	}()
	for i := 1; i < o.spawn; i++ {
		cmd := exec.Command(exe,
			"-id", strconv.Itoa(i),
			"-peers", peers,
			"-scheduler", o.policy,
			"-clthreshold", strconv.Itoa(o.threshold),
			"-codec", o.codec,
			"-exitafter", fuse.String(),
		)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning node %d: %w", i, err)
		}
		children = append(children, cmd)
	}
	fmt.Printf("dstmnode: spawned %d child node processes\n", len(children))

	o.id, o.peers, o.drive, o.spawn = 0, peers, true, 0
	return runNode(o)
}

// reservePorts grabs n distinct loopback ports by listening on :0 and
// closing again. The tiny bind race after close is acceptable on a CI
// loopback; it buys a one-command cluster with no port configuration.
func reservePorts(n int) ([]string, error) {
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, nil
}

// runNode assembles one node's full stack (TCP transport, scheduler
// policy, STM runtime) and either serves or drives.
func runNode(o options) error {
	peers, err := parsePeers(o.peers)
	if err != nil {
		return err
	}
	listen, ok := peers[transport.NodeID(o.id)]
	if !ok {
		return fmt.Errorf("node %d not present in -peers", o.id)
	}
	codec, err := parseCodec(o.codec)
	if err != nil {
		return err
	}

	tn, err := transport.NewTCPNodeOpts(transport.NodeID(o.id), listen, peers,
		transport.TCPOptions{Codec: codec})
	if err != nil {
		return err
	}
	defer tn.Close()

	st := stats.NewTable(time.Millisecond)
	var pol sched.Policy
	switch o.policy {
	case "rts":
		pol = core.New(core.Options{CLThreshold: o.threshold})
	case "tfa":
		pol = sched.NewTFA()
	case "backoff":
		pol = sched.NewBackoff(st, 50*time.Millisecond)
	default:
		return fmt.Errorf("unknown scheduler %q", o.policy)
	}

	ep := cluster.NewEndpoint(tn, &vclock.Clock{})
	rt := stm.NewRuntime(ep, len(peers), pol, st)
	fmt.Printf("dstmnode: node %d listening on %s (%s scheduler, %s codec, %d peers)\n",
		o.id, tn.Addr(), pol.Name(), codec, len(peers))

	if !o.drive {
		if o.exitAfter > 0 {
			time.Sleep(o.exitAfter)
			return nil
		}
		select {} // serve forever
	}

	if o.openLoop {
		return driveOpenLoop(rt, o)
	}
	return driveBank(rt, o.accounts, o.duration)
}

func parsePeers(s string) (map[transport.NodeID]string, error) {
	peers := make(map[transport.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		peers[transport.NodeID(id)] = kv[1]
	}
	return peers, nil
}

// seedBank creates the bank and retries Setup until every peer answers:
// object homes are spread across nodes, so seeding succeeds only once
// everyone is listening.
func seedBank(ctx context.Context, rt *stm.Runtime, accounts int, zipf float64) (*bank.Bank, error) {
	b := bank.New(bank.Options{AccountsPerNode: accounts})
	if zipf > 0 {
		z := workload.NewZipf(zipf)
		b.SetKeyPicker(func(rng *rand.Rand, n int) int { return z.Sample(rng, n) })
	}
	var setupErr error
	for attempt := 0; attempt < 50; attempt++ {
		setupErr = b.Setup(ctx, []*stm.Runtime{rt})
		if setupErr == nil {
			return b, nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	return nil, fmt.Errorf("seeding failed (are all peers up?): %w", setupErr)
}

// driveBank seeds accounts, runs closed-loop transfers, and audits the
// total.
func driveBank(rt *stm.Runtime, accounts int, d time.Duration) error {
	ctx := context.Background()
	b, err := seedBank(ctx, rt, accounts, 0)
	if err != nil {
		return err
	}
	fmt.Printf("dstmnode: seeded %d accounts, driving for %v\n", b.Accounts(), d)

	runCtx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	ops := 0
	for runCtx.Err() == nil {
		if err := b.Op(runCtx, rt, rng, rng.Float64() < 0.5); err != nil {
			if runCtx.Err() != nil {
				break
			}
			return err
		}
		ops++
	}

	m := rt.Metrics().Snapshot()
	fmt.Printf("dstmnode: %d ops driven, %d commits, %d aborts, %.1f commits/sec\n",
		ops, m.Commits, m.TotalAborts(), float64(m.Commits)/d.Seconds())
	if err := b.Check(ctx, rt); err != nil {
		return err
	}
	fmt.Println("dstmnode: conservation check passed")
	return nil
}

// driveOpenLoop admits bank transactions on an arrival process's
// schedule — completions do not gate admissions, so overload shows up as
// shed arrivals and a fat sojourn tail rather than a sagging offered
// rate. Sojourn is measured arrival→completion, queueing included.
func driveOpenLoop(rt *stm.Runtime, o options) error {
	ctx := context.Background()
	b, err := seedBank(ctx, rt, o.accounts, o.zipf)
	if err != nil {
		return err
	}

	var arr workload.Arrival
	switch o.arrival {
	case "poisson":
		arr = workload.NewPoisson(o.rate)
	case "constant":
		arr = workload.NewConstant(o.rate)
	default:
		return fmt.Errorf("unknown arrival %q (want poisson or constant)", o.arrival)
	}
	fmt.Printf("dstmnode: seeded %d accounts, open loop %s @ %.0f tx/s for %v (%d workers)\n",
		b.Accounts(), arr.Name(), o.rate, o.duration, o.workers)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	pending := make(chan time.Time, o.maxPending)
	var (
		shed      atomic.Uint64
		completed atomic.Uint64
		opErr     atomic.Value
		wg        sync.WaitGroup
	)
	hists := make([]*stats.LatencyHist, o.workers)
	for w := 0; w < o.workers; w++ {
		hists[w] = &stats.LatencyHist{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(time.Now().UnixNano() + int64(w)))
			for arrived := range pending {
				if err := b.Op(runCtx, rt, rng, rng.Float64() < 0.5); err != nil {
					if runCtx.Err() != nil {
						return
					}
					opErr.CompareAndSwap(nil, err)
					cancel()
					return
				}
				hists[w].Observe(time.Since(arrived))
				completed.Add(1)
			}
		}(w)
	}

	driveCtx, driveCancel := context.WithTimeout(runCtx, o.duration)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	offered := workload.Drive(driveCtx, arr, rng, 0, func(int) bool {
		select {
		case pending <- time.Now():
		default:
			shed.Add(1)
		}
		return true
	})
	driveCancel()
	close(pending)
	wg.Wait()
	if err, _ := opErr.Load().(error); err != nil {
		return err
	}

	var soj stats.HistSnapshot
	for _, h := range hists {
		soj.Merge(h.Snapshot())
	}
	m := rt.Metrics().Snapshot()
	fmt.Printf("dstmnode: offered %d, completed %d, shed %d; %d commits, %d aborts, %.1f commits/sec\n",
		offered, completed.Load(), shed.Load(), m.Commits, m.TotalAborts(),
		float64(m.Commits)/o.duration.Seconds())
	fmt.Printf("dstmnode: sojourn p50 %v  p99 %v\n", soj.Quantile(0.50), soj.Quantile(0.99))
	if err := b.Check(ctx, rt); err != nil {
		return err
	}
	fmt.Println("dstmnode: conservation check passed")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dstmnode:", err)
	os.Exit(1)
}
