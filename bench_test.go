package dstm

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus ablations for the design choices DESIGN.md calls out. Each
// benchmark iteration runs a complete (scaled-down) experiment cell and
// reports domain metrics via b.ReportMetric:
//
//	tx/sec       cluster-wide committed top-level transactions per second
//	abort%       top-level aborts / (commits + aborts)
//	nestedPar%   Table I's metric: parent-caused nested aborts / all nested aborts
//	speedup-*    Fig. 6's throughput ratios
//
// Full-scale regeneration (all six benchmarks, larger sweeps) is
// cmd/rtsbench's job; these benches keep each cell small enough for
// `go test -bench=.` to finish in minutes on one machine.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dstm/internal/harness"
	"dstm/internal/workload"
)

// benchCfg is the shared scaled-down experiment cell.
func benchCfg() harness.Config {
	return harness.Config{
		Nodes:          6,
		WorkersPerNode: 8,
		Duration:       120 * time.Millisecond,
		ObjectsPerNode: 6,
		DelayScale:     0.004, // 1–50 ms → 4–200 µs
		CLThreshold:    3,
		Seed:           1,
	}
}

// contentionCfg is benchCfg pointed at one (benchmark, scheduler, read
// ratio) cell — the combination every table, figure, and ablation varies.
func contentionCfg(bench harness.BenchmarkKind, s harness.Scheduler, readRatio float64) harness.Config {
	cfg := benchCfg()
	cfg.Benchmark = bench
	cfg.Scheduler = s
	cfg.ReadRatio = readRatio
	return cfg
}

// highContention is the write-heavy mix (10% reads) the ablations use.
func highContention(bench harness.BenchmarkKind, s harness.Scheduler) harness.Config {
	return contentionCfg(bench, s, harness.High.ReadRatio())
}

func reportCell(b *testing.B, res harness.Result) {
	b.Helper()
	if res.CheckErr != nil {
		b.Fatalf("invariant violated: %v", res.CheckErr)
	}
	b.ReportMetric(res.Throughput(), "tx/sec")
	total := float64(res.Metrics.Commits + res.Metrics.TotalAborts())
	if total > 0 {
		b.ReportMetric(100*float64(res.Metrics.TotalAborts())/total, "abort%")
	}
}

func runCell(b *testing.B, cfg harness.Config) harness.Result {
	b.Helper()
	res, err := harness.Run(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// ---------------------------------------------------------------------------
// Table I — abort rate of nested transactions (RTS vs TFA, low & high).

func BenchmarkTable1(b *testing.B) {
	for _, bench := range harness.Benchmarks {
		for _, cont := range []harness.Contention{harness.Low, harness.High} {
			for _, s := range []harness.Scheduler{harness.SchedRTS, harness.SchedTFA} {
				name := fmt.Sprintf("%s/%s/%s", harness.BenchmarkLabel(bench), cont, s)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res := runCell(b, contentionCfg(bench, s, cont.ReadRatio()))
						reportCell(b, res)
						b.ReportMetric(100*res.NestedAbortRate(), "nestedPar%")
					}
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 4 and 5 — throughput across node counts for the three
// schedulers, at low (Fig. 4) and high (Fig. 5) contention. One benchmark
// function per sub-figure.

func figBench(b *testing.B, bench harness.BenchmarkKind, cont harness.Contention) {
	b.Helper()
	for _, n := range []int{4, 8, 12} {
		for _, s := range harness.Schedulers {
			b.Run(fmt.Sprintf("nodes=%d/%s", n, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := contentionCfg(bench, s, cont.ReadRatio())
					cfg.Nodes = n
					reportCell(b, runCell(b, cfg))
				}
			})
		}
	}
}

func BenchmarkFig4a_Vacation_Low(b *testing.B) { figBench(b, harness.BenchVacation, harness.Low) }
func BenchmarkFig4b_Bank_Low(b *testing.B)     { figBench(b, harness.BenchBank, harness.Low) }
func BenchmarkFig4c_LinkedList_Low(b *testing.B) {
	figBench(b, harness.BenchList, harness.Low)
}
func BenchmarkFig4d_RBTree_Low(b *testing.B) { figBench(b, harness.BenchRBTree, harness.Low) }
func BenchmarkFig4e_BST_Low(b *testing.B)    { figBench(b, harness.BenchBST, harness.Low) }
func BenchmarkFig4f_DHT_Low(b *testing.B)    { figBench(b, harness.BenchDHT, harness.Low) }

func BenchmarkFig5a_Vacation_High(b *testing.B) { figBench(b, harness.BenchVacation, harness.High) }
func BenchmarkFig5b_Bank_High(b *testing.B)     { figBench(b, harness.BenchBank, harness.High) }
func BenchmarkFig5c_LinkedList_High(b *testing.B) {
	figBench(b, harness.BenchList, harness.High)
}
func BenchmarkFig5d_RBTree_High(b *testing.B) { figBench(b, harness.BenchRBTree, harness.High) }
func BenchmarkFig5e_BST_High(b *testing.B)    { figBench(b, harness.BenchBST, harness.High) }
func BenchmarkFig5f_DHT_High(b *testing.B)    { figBench(b, harness.BenchDHT, harness.High) }

// ---------------------------------------------------------------------------
// Figure 6 — summary of throughput speedup (RTS over TFA and TFA+Backoff).

func BenchmarkFig6_Speedup(b *testing.B) {
	for _, bench := range harness.Benchmarks {
		b.Run(harness.BenchmarkLabel(bench), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := harness.RunSpeedupSummary(context.Background(), benchCfg(),
					[]harness.BenchmarkKind{bench})
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(r.TFALow, "speedup-TFA-low")
				b.ReportMetric(r.BackoffLow, "speedup-Backoff-low")
				b.ReportMetric(r.TFAHigh, "speedup-TFA-high")
				b.ReportMetric(r.BackoffHigh, "speedup-Backoff-high")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Key skew — throughput under the workload package's key distributions.

// BenchmarkSkew_KeyDistributions runs the closed-loop high-contention bank
// cell under each key distribution: uniform, Zipfian (theta 0.9) and the
// rotating hot-key storm. The spread between RTS and TFA widens as the
// skew concentrates conflicts onto fewer objects — the regime the
// stability experiment (cmd/rtsbench -experiment stability) probes with
// open-loop arrivals.
func BenchmarkSkew_KeyDistributions(b *testing.B) {
	samplers := []struct {
		name string
		mk   func() workload.KeySampler
	}{
		{"uniform", func() workload.KeySampler { return workload.NewUniform() }},
		{"zipf-0.9", func() workload.KeySampler { return workload.NewZipf(0.9) }},
		{"storm", func() workload.KeySampler { return workload.NewHotKeyStorm(2, 0.9, 64) }},
	}
	for _, sk := range samplers {
		for _, s := range []harness.Scheduler{harness.SchedRTS, harness.SchedTFA} {
			b.Run(fmt.Sprintf("%s/%s", sk.name, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := highContention(harness.BenchBank, s)
					cfg.KeySampler = sk.mk()
					reportCell(b, runCell(b, cfg))
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations.

// BenchmarkAblation_CLThreshold sweeps RTS's contention-level threshold
// (paper §IV-A: "at a certain point of the CL's threshold, we observe a
// peak point of transactional throughput").
func BenchmarkAblation_CLThreshold(b *testing.B) {
	for _, thr := range []int{1, 2, 3, 5, 8, 16} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// High contention exposes the peak.
				cfg := highContention(harness.BenchBank, harness.SchedRTS)
				cfg.CLThreshold = thr
				reportCell(b, runCell(b, cfg))
			}
		})
	}
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := highContention(harness.BenchBank, harness.SchedRTS)
			cfg.AdaptiveCL = true
			reportCell(b, runCell(b, cfg))
		}
	})
}

// BenchmarkAblation_QueuePolicy compares RTS's gated enqueueing against
// the two extremes: abort-everything (TFA) and enqueue-everything (RTS
// with an effectively unbounded CL threshold) — the trade-off §VI argues.
func BenchmarkAblation_QueuePolicy(b *testing.B) {
	run := func(b *testing.B, s harness.Scheduler, thr int) {
		for i := 0; i < b.N; i++ {
			cfg := highContention(harness.BenchBank, s)
			if thr > 0 {
				cfg.CLThreshold = thr
			}
			reportCell(b, runCell(b, cfg))
		}
	}
	b.Run("abort-everything", func(b *testing.B) { run(b, harness.SchedTFA, 0) })
	b.Run("rts-gated", func(b *testing.B) { run(b, harness.SchedRTS, 3) })
	b.Run("enqueue-everything", func(b *testing.B) { run(b, harness.SchedRTS, 1<<20) })
}

// BenchmarkAblation_Nesting compares closed nesting (the paper's model)
// against flat nesting, under RTS and TFA: with flat nesting every inner
// conflict restarts the whole parent, re-fetching all objects — the
// concurrency loss §I motivates closed nesting with.
func BenchmarkAblation_Nesting(b *testing.B) {
	for _, s := range []harness.Scheduler{harness.SchedRTS, harness.SchedTFA} {
		for _, flat := range []bool{false, true} {
			mode := "closed"
			if flat {
				mode = "flat"
			}
			b.Run(fmt.Sprintf("%s/%s", s, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := highContention(harness.BenchBank, s)
					cfg.FlatNesting = flat
					reportCell(b, runCell(b, cfg))
				}
			})
		}
	}
}

// BenchmarkAblation_BackoffSource compares the stats-table-driven backoff
// of TFA+Backoff with client-side stalls disabled (plain TFA), isolating
// what the backoff itself contributes.
func BenchmarkAblation_BackoffSource(b *testing.B) {
	for _, s := range []harness.Scheduler{harness.SchedTFA, harness.SchedBackoff} {
		b.Run(string(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reportCell(b, runCell(b, highContention(harness.BenchVacation, s)))
			}
		})
	}
}
