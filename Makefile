GO ?= go

.PHONY: all build test race bench verify clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: build, plain tests, then the full suite under
# the race detector (chaos/soak tests included).
verify: build test race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
