GO ?= go
FUZZTIME ?= 3s
COV_FLOOR ?= 70

.PHONY: all build vet test cover race fuzz bench bench-stability verify clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# cover measures the core protocol packages (the STM engine and the RTS
# scheduler) and warns when the combined figure slips under the soft floor.
# scripts/ci.sh enforces the same floor (strict with CI_COV_STRICT=1).
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=dstm/internal/stm,dstm/internal/core ./...
	@$(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); \
		printf "coverage (internal/stm + internal/core): %s%% (floor $(COV_FLOOR)%%)\n", $$3; \
		if ($$3+0 < $(COV_FLOOR)) print "WARNING: below the soft floor" > "/dev/stderr"}'

race:
	$(GO) test -race ./...

# fuzz runs every fuzz target for FUZZTIME each (seed corpora are under
# each package's testdata/fuzz and also replay during plain `make test`).
fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzReadJSONL -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -fuzz FuzzEventRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport/ -fuzz FuzzMessageGobRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport/ -fuzz FuzzMessageGobDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stm/ -fuzz FuzzRetrieveRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stm/ -fuzz FuzzCommitPushRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stm/ -fuzz FuzzAcquireCheckBatchRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stm/ -fuzz FuzzCommitObjBatchRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cc/ -fuzz FuzzDirectoryBatchRoundTrip -fuzztime $(FUZZTIME)

# verify is the tier-1 gate: vet, build, plain tests with the coverage
# floor, then the full suite under the race detector (chaos/soak tests
# included), then a short fuzz pass.
verify: vet build cover race fuzz

# bench runs the Go micro-benchmarks, then the commit-pipeline benchmark,
# which writes machine-readable throughput / msgs-per-commit / latency-tail
# rows per scheduler to results/BENCH_commit.json.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	$(GO) run ./cmd/rtsbench -benchjson results/BENCH_commit.json -duration 150ms -nodes 4 -bench bank,dht

# bench-stability runs the open-loop queue-stability sweep — scheduler ×
# skew (uniform/zipf/storm) × arrival (poisson at each rate + adversarial
# conflict-window) over bank/list/DHT — and writes the per-cell offered vs
# completed load, makespan, queue-depth series, sojourn p50/p99/p999 and
# stability verdict to results/BENCH_stability.json.
bench-stability:
	$(GO) run ./cmd/rtsbench -experiment stability -bench bank,ll,dht \
		-nodes 4 -duration 150ms -stabilityjson results/BENCH_stability.json

clean:
	$(GO) clean ./...
	rm -f coverage.out
