GO ?= go
FUZZTIME ?= 3s
COV_FLOOR ?= 70

.PHONY: all build vet test cover race fuzz perf bench bench-stability bench-wire verify clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# cover measures the core protocol packages (the STM engine and the RTS
# scheduler) and warns when the combined figure slips under the soft floor.
# scripts/ci.sh enforces the same floor (strict by default; set
# CI_COV_STRICT=0 there to downgrade a shortfall to a warning).
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=dstm/internal/stm,dstm/internal/core ./...
	@$(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); \
		printf "coverage (internal/stm + internal/core): %s%% (floor $(COV_FLOOR)%%)\n", $$3; \
		if ($$3+0 < $(COV_FLOOR)) print "WARNING: below the soft floor" > "/dev/stderr"}'

race:
	$(GO) test -race ./...

# fuzz runs every fuzz target for FUZZTIME each (seed corpora are under
# each package's testdata/fuzz and also replay during plain `make test`).
# The target list lives in scripts/ci.sh so make and CI stay in sync.
fuzz:
	CI_FUZZTIME=$(FUZZTIME) ./scripts/ci.sh fuzz

# perf runs the perf smokes: the commit-pipeline msgs/commit bound, the
# wire-codec zero-allocation gate, the open-loop stability smoke, the
# gated wire experiment, and a 3-process dstmnode cluster smoke.
perf:
	./scripts/ci.sh perf

# verify is the tier-1 gate; it delegates to the staged CI script so
# `make verify` and CI run exactly the same checks.
verify:
	CI_FUZZTIME=$(FUZZTIME) CI_COV_FLOOR=$(COV_FLOOR) ./scripts/ci.sh all

# bench runs the Go micro-benchmarks, then the commit-pipeline benchmark,
# which writes machine-readable throughput / msgs-per-commit / latency-tail
# rows per scheduler to results/BENCH_commit.json.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	$(GO) run ./cmd/rtsbench -benchjson results/BENCH_commit.json -duration 150ms -nodes 4 -bench bank,dht

# bench-stability runs the open-loop queue-stability sweep — scheduler ×
# skew (uniform/zipf/storm) × arrival (poisson at each rate + adversarial
# conflict-window) over bank/list/DHT — and writes the per-cell offered vs
# completed load, makespan, queue-depth series, sojourn p50/p99/p999 and
# stability verdict to results/BENCH_stability.json.
bench-stability:
	$(GO) run ./cmd/rtsbench -experiment stability -bench bank,ll,dht \
		-nodes 4 -duration 150ms -stabilityjson results/BENCH_stability.json

# bench-wire measures the hand-rolled binary wire codec against gob:
# per-payload alloc/op and bytes, a raw loopback-TCP message pump, and
# end-to-end bank cells on memnet vs TCP with both codecs. Writes
# results/BENCH_wire.json and fails unless the binary codec is
# allocation-free and at least 2x gob's pump throughput.
bench-wire:
	$(GO) run ./cmd/rtsbench -experiment wire -duration 1s \
		-wirejson results/BENCH_wire.json -wiregate

clean:
	$(GO) clean ./...
	rm -f coverage.out
