package dstm

import (
	"context"
	"testing"
	"time"

	"dstm/internal/object"
	"dstm/internal/stm"
)

type counter struct{ N int64 }

func (c *counter) Copy() object.Value { d := *c; return &d }

func TestLocalClusterDefaults(t *testing.T) {
	c := NewLocalCluster(ClusterOptions{})
	defer c.Close()
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
	if got := c.Runtime(0).Policy().Name(); got != "RTS" {
		t.Fatalf("default policy = %q", got)
	}
	if len(c.Runtimes()) != 4 {
		t.Fatalf("runtimes = %d", len(c.Runtimes()))
	}
}

func TestLocalClusterSchedulers(t *testing.T) {
	for kind, want := range map[SchedulerKind]string{
		RTS: "RTS", TFA: "TFA", TFABackoff: "TFA+Backoff",
	} {
		c := NewLocalCluster(ClusterOptions{Nodes: 2, Scheduler: kind})
		if got := c.Runtime(0).Policy().Name(); got != want {
			t.Fatalf("policy for %s = %q", kind, got)
		}
		c.Close()
	}
}

func TestLocalClusterEndToEnd(t *testing.T) {
	c := NewLocalCluster(ClusterOptions{
		Nodes:        3,
		LatencyMin:   time.Millisecond,
		LatencyMax:   5 * time.Millisecond,
		LatencyScale: 0.01,
	})
	defer c.Close()

	ctx := context.Background()
	if err := c.Runtime(0).CreateRoot(ctx, "c", &counter{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Size(); i++ {
		err := c.Runtime(i).Atomic(ctx, "inc", func(tx *stm.Txn) error {
			return tx.Update(ctx, "c", func(v object.Value) object.Value {
				v.(*counter).N++
				return v
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	var got int64
	err := c.Runtime(1).Atomic(ctx, "read", func(tx *stm.Txn) error {
		v, err := tx.Read(ctx, "c")
		if err != nil {
			return err
		}
		got = v.(*counter).N
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}
